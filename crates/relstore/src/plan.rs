//! Logical → physical planning for SELECT statements.
//!
//! [`plan_select`] turns a parsed [`SelectStmt`] into a [`PhysicalPlan`]
//! operator tree using lightweight per-table statistics (live row
//! count, per-indexed-column distinct key count — see
//! [`Table::stats`]). The pipelined executor in [`crate::exec`] runs
//! the tree directly, and `EXPLAIN` renders the *same* tree via
//! [`PhysicalPlan::render`], so the description can never drift from
//! what actually executes.
//!
//! Costing is deliberately simple: an equality sarg on an indexed
//! column is estimated at `rows / distinct_keys`, a range sarg at
//! `rows / 4`, and joins multiply. Those estimates only steer two
//! decisions — which sarg serves the base access path, and whether an
//! inner equi-join probes the inner index per left row (`IxJoin`)
//! instead of building a hash table (`HashJoin`).

use crate::expr::{BinOp, Expr};
use crate::sql::ast::{JoinKind, OrderKey, SelectItem, SelectStmt};
use crate::storage::{IndexKind, Table};
use crate::types::Datum;
use crate::{RelError, RelResult};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::ops::Bound;

/// The table layout of a joined row: which bindings cover which column
/// ranges of the concatenated row. Shared by the planner (column
/// resolution, sarg extraction) and both executors (expression
/// evaluation contexts).
#[derive(Debug, Clone)]
pub struct Layout {
    /// `(binding, column names, start offset)` per FROM item.
    pub(crate) parts: Vec<(String, Vec<String>, usize)>,
    pub(crate) width: usize,
}

impl Layout {
    pub(crate) fn new() -> Layout {
        Layout {
            parts: Vec::new(),
            width: 0,
        }
    }

    pub(crate) fn push(&mut self, binding: String, columns: Vec<String>) {
        let start = self.width;
        self.width += columns.len();
        self.parts.push((binding, columns, start));
    }

    /// Resolve `table.name` or bare `name` to an absolute offset.
    pub(crate) fn resolve(&self, table: Option<&str>, name: &str) -> RelResult<usize> {
        let lname = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let lt = t.to_ascii_lowercase();
                let (_, cols, start) = self
                    .parts
                    .iter()
                    .find(|(b, _, _)| *b == lt)
                    .ok_or_else(|| RelError::NoSuchTable(lt.clone()))?;
                cols.iter()
                    .position(|c| *c == lname)
                    .map(|i| start + i)
                    .ok_or(RelError::NoSuchColumn(format!("{lt}.{lname}")))
            }
            None => {
                let mut found = None;
                for (b, cols, start) in &self.parts {
                    if let Some(i) = cols.iter().position(|c| *c == lname) {
                        if found.is_some() {
                            return Err(RelError::AmbiguousColumn(format!(
                                "{lname} (in {b} and another table)"
                            )));
                        }
                        found = Some(start + i);
                    }
                }
                found.ok_or(RelError::NoSuchColumn(lname))
            }
        }
    }
}

/// Look up a table in the catalog map (names are lowercase).
pub(crate) fn lookup<'a>(tables: &'a HashMap<String, Table>, name: &str) -> RelResult<&'a Table> {
    let lower = name.to_ascii_lowercase();
    tables.get(&lower).ok_or(RelError::NoSuchTable(lower))
}

/// Split a conjunction into its AND-ed parts.
pub(crate) fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut v = conjuncts(left);
            v.extend(conjuncts(right));
            v
        }
        other => vec![other],
    }
}

/// Expand the select list into `(expression, output name)` pairs.
pub(crate) fn expand_items(
    items: &[SelectItem],
    layout: &Layout,
) -> RelResult<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for (binding, cols, _) in &layout.parts {
                    for c in cols {
                        out.push((Expr::qcol(binding.clone(), c.clone()), c.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let lt = t.to_ascii_lowercase();
                let part = layout
                    .parts
                    .iter()
                    .find(|(b, _, _)| *b == lt)
                    .ok_or(RelError::NoSuchTable(lt.clone()))?;
                for c in &part.1 {
                    out.push((Expr::qcol(lt.clone(), c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.to_ascii_lowercase(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_sql().to_ascii_lowercase(),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

/// If `on` is `left_col = right_col` with one side in the existing layout
/// and the other in the newly joined table, return their offsets
/// (`left_offset`, `right_column_index`).
pub(crate) fn equi_join_offsets(
    on: &Expr,
    layout: &Layout,
    right_binding: &str,
    right: &Table,
) -> Option<(usize, usize)> {
    let (a, b) = match on {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => (&**left, &**right),
        _ => return None,
    };
    let classify = |e: &Expr| -> Option<(Option<String>, String)> {
        match e {
            Expr::Column { table, name } => Some((table.clone(), name.clone())),
            _ => None,
        }
    };
    let (at, an) = classify(a)?;
    let (bt, bn) = classify(b)?;
    let right_col = |t: &Option<String>, n: &str| -> Option<usize> {
        match t {
            Some(t) if t == right_binding => right.schema.column_index(n),
            Some(_) => None,
            None => right.schema.column_index(n),
        }
    };
    let left_off =
        |t: &Option<String>, n: &str| -> Option<usize> { layout.resolve(t.as_deref(), n).ok() };
    // a on left, b on right?
    if let (Some(lo), Some(rc)) = (left_off(&at, &an), right_col(&bt, &bn)) {
        // ensure b genuinely refers to the right table when unqualified:
        // prefer the right side interpretation only if the left layout
        // cannot resolve it unambiguously as well.
        if bt.as_deref() == Some(right_binding) || left_off(&bt, &bn).is_none() {
            return Some((lo, rc));
        }
    }
    if let (Some(lo), Some(rc)) = (left_off(&bt, &bn), right_col(&at, &an)) {
        if at.as_deref() == Some(right_binding) || left_off(&at, &an).is_none() {
            return Some((lo, rc));
        }
    }
    None
}

/// A sargable predicate served directly by a B-tree index.
#[derive(Debug, Clone, PartialEq)]
pub enum Sarg {
    /// `column = literal` point lookup.
    Eq(Datum),
    /// A key range (`<`, `<=`, `>`, `>=`, `BETWEEN`).
    Range {
        /// Lower bound on the index key.
        lo: Bound<Datum>,
        /// Upper bound on the index key.
        hi: Bound<Datum>,
    },
}

/// Full-table scan node.
#[derive(Debug, Clone)]
pub struct SeqScanNode {
    pub(crate) table: String,
    pub(crate) rows: usize,
}

/// Index point-lookup / range-scan node.
#[derive(Debug, Clone)]
pub struct IxScanNode {
    pub(crate) table: String,
    pub(crate) column: String,
    pub(crate) col_idx: usize,
    pub(crate) sarg: Sarg,
    pub(crate) via: IndexKind,
    pub(crate) est_rows: usize,
}

/// Nested-loop join node (cross joins, non-equi inner joins, and all
/// left joins).
#[derive(Debug, Clone)]
pub struct NlJoinNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) table: String,
    pub(crate) kind: JoinKind,
    pub(crate) on: Option<Expr>,
    /// Layout of the combined row (left side plus this join's table),
    /// used to evaluate `on`.
    pub(crate) layout: Layout,
    pub(crate) right_width: usize,
    pub(crate) right_rows: usize,
}

/// Hash equi-join node: build on the inner (right) table, probe with
/// each left row.
#[derive(Debug, Clone)]
pub struct HashJoinNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) table: String,
    pub(crate) on_sql: String,
    pub(crate) left_off: usize,
    pub(crate) right_col: usize,
    pub(crate) build_rows: usize,
}

/// Index equi-join node: probe the inner table's index per left row
/// instead of building a hash table. Chosen when the inner join key is
/// indexed and the estimated outer cardinality is no larger than the
/// inner table.
#[derive(Debug, Clone)]
pub struct IxJoinNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) table: String,
    pub(crate) on_sql: String,
    pub(crate) left_off: usize,
    pub(crate) right_col: usize,
    pub(crate) via: IndexKind,
}

/// Residual predicate filter node. The planner always keeps the full
/// WHERE clause here even when a sarg was pushed into an index scan, so
/// three-valued logic, coercions, and evaluation errors behave exactly
/// as in the reference executor.
#[derive(Debug, Clone)]
pub struct FilterNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) pred: Expr,
    pub(crate) layout: Layout,
}

/// Hash-grouping aggregate node; also evaluates HAVING and the final
/// projection for aggregate queries.
#[derive(Debug, Clone)]
pub struct HashAggregateNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) group_by: Vec<Expr>,
    pub(crate) having: Option<Expr>,
    pub(crate) select_exprs: Vec<(Expr, String)>,
    pub(crate) columns: Vec<String>,
    pub(crate) order_by: Vec<OrderKey>,
    pub(crate) layout: Layout,
}

/// Streaming projection node for non-aggregate queries; also computes
/// hidden ORDER BY keys per row.
#[derive(Debug, Clone)]
pub struct ProjectNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) select_exprs: Vec<(Expr, String)>,
    pub(crate) columns: Vec<String>,
    pub(crate) order_by: Vec<OrderKey>,
    pub(crate) layout: Layout,
}

/// Duplicate-elimination node (`SELECT DISTINCT`).
#[derive(Debug, Clone)]
pub struct DistinctNode {
    pub(crate) input: Box<PhysicalPlan>,
}

/// Materializing sort node (`ORDER BY`).
#[derive(Debug, Clone)]
pub struct SortNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) keys: Vec<OrderKey>,
}

/// Row-limit node; the executor stops pulling from its input once the
/// limit is reached.
#[derive(Debug, Clone)]
pub struct LimitNode {
    pub(crate) input: Box<PhysicalPlan>,
    pub(crate) n: u64,
}

/// A physical operator tree. Produced by [`plan_select`], executed by
/// [`crate::exec::execute_plan`], and rendered for `EXPLAIN` by
/// [`PhysicalPlan::render`] — one structure, no separate description
/// path.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Full-table scan.
    SeqScan(SeqScanNode),
    /// Index point lookup or range scan.
    IxScan(IxScanNode),
    /// Nested-loop join.
    NlJoin(Box<NlJoinNode>),
    /// Hash equi-join.
    HashJoin(Box<HashJoinNode>),
    /// Index-probing equi-join.
    IxJoin(Box<IxJoinNode>),
    /// Residual predicate filter.
    Filter(Box<FilterNode>),
    /// Hash grouping + aggregation + HAVING + projection.
    HashAggregate(Box<HashAggregateNode>),
    /// Streaming projection.
    Project(Box<ProjectNode>),
    /// Duplicate elimination.
    Distinct(Box<DistinctNode>),
    /// Materializing sort.
    Sort(Box<SortNode>),
    /// Row limit with pull-stop.
    Limit(Box<LimitNode>),
}

impl PhysicalPlan {
    /// Stable operator name, also recorded in
    /// [`crate::exec::ExecMetrics::operators`] when the operator runs.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::SeqScan(_) => "seq scan",
            PhysicalPlan::IxScan(_) => "index scan",
            PhysicalPlan::NlJoin(_) => "nested-loop join",
            PhysicalPlan::HashJoin(_) => "hash join",
            PhysicalPlan::IxJoin(_) => "index join",
            PhysicalPlan::Filter(_) => "filter",
            PhysicalPlan::HashAggregate(_) => "hash aggregate",
            PhysicalPlan::Project(_) => "project",
            PhysicalPlan::Distinct(_) => "distinct",
            PhysicalPlan::Sort(_) => "sort",
            PhysicalPlan::Limit(_) => "limit",
        }
    }

    /// The node's input, if it has one (scans are leaves).
    pub fn input(&self) -> Option<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan(_) | PhysicalPlan::IxScan(_) => None,
            PhysicalPlan::NlJoin(n) => Some(&n.input),
            PhysicalPlan::HashJoin(n) => Some(&n.input),
            PhysicalPlan::IxJoin(n) => Some(&n.input),
            PhysicalPlan::Filter(n) => Some(&n.input),
            PhysicalPlan::HashAggregate(n) => Some(&n.input),
            PhysicalPlan::Project(n) => Some(&n.input),
            PhysicalPlan::Distinct(n) => Some(&n.input),
            PhysicalPlan::Sort(n) => Some(&n.input),
            PhysicalPlan::Limit(n) => Some(&n.input),
        }
    }

    /// Operator names bottom-up (leaf first), matching the order the
    /// executor records them in `ExecMetrics::operators`.
    pub fn operator_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        fn walk(p: &PhysicalPlan, out: &mut Vec<&'static str>) {
            if let Some(i) = p.input() {
                walk(i, out);
            }
            out.push(p.name());
        }
        walk(self, &mut out);
        out
    }

    /// Output column names of the plan (from its projection node).
    pub fn output_columns(&self) -> &[String] {
        match self {
            PhysicalPlan::Project(n) => &n.columns,
            PhysicalPlan::HashAggregate(n) => &n.columns,
            other => other.input().map(|i| i.output_columns()).unwrap_or(&[]),
        }
    }

    /// Render the plan as indented `EXPLAIN` lines, root operator
    /// first.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::SeqScan(n) => {
                out.push(format!("{pad}seq scan {} ({} rows)", n.table, n.rows));
            }
            PhysicalPlan::IxScan(n) => match &n.sarg {
                Sarg::Eq(v) => out.push(format!(
                    "{pad}index lookup {}.{} = {} via {} (~{} rows)",
                    n.table, n.column, v, n.via, n.est_rows
                )),
                Sarg::Range { lo, hi } => {
                    let mut cond = String::new();
                    match lo {
                        Bound::Included(v) => {
                            let _ = write!(cond, "{} >= {}", n.column, v);
                        }
                        Bound::Excluded(v) => {
                            let _ = write!(cond, "{} > {}", n.column, v);
                        }
                        Bound::Unbounded => {}
                    }
                    match hi {
                        Bound::Included(v) => {
                            if !cond.is_empty() {
                                cond.push_str(" AND ");
                            }
                            let _ = write!(cond, "{} <= {}", n.column, v);
                        }
                        Bound::Excluded(v) => {
                            if !cond.is_empty() {
                                cond.push_str(" AND ");
                            }
                            let _ = write!(cond, "{} < {}", n.column, v);
                        }
                        Bound::Unbounded => {}
                    }
                    out.push(format!(
                        "{pad}index range scan {}.{} via {} (~{} rows)",
                        n.table, cond, n.via, n.est_rows
                    ));
                }
            },
            PhysicalPlan::NlJoin(n) => {
                match (n.kind, &n.on) {
                    (JoinKind::Cross, _) => out.push(format!(
                        "{pad}cross join {} ({} rows)",
                        n.table, n.right_rows
                    )),
                    (JoinKind::Inner, Some(on)) => out.push(format!(
                        "{pad}nested-loop inner join {} on {}",
                        n.table,
                        on.to_sql()
                    )),
                    (JoinKind::Left, Some(on)) => out.push(format!(
                        "{pad}nested-loop left join {} on {}",
                        n.table,
                        on.to_sql()
                    )),
                    (kind, None) => out.push(format!("{pad}nested-loop {kind:?} join {}", n.table)),
                }
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::HashJoin(n) => {
                out.push(format!(
                    "{pad}hash join {} on {} (build {} rows)",
                    n.table, n.on_sql, n.build_rows
                ));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::IxJoin(n) => {
                out.push(format!(
                    "{pad}index join {} on {} via {}",
                    n.table, n.on_sql, n.via
                ));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::Filter(n) => {
                out.push(format!("{pad}filter: {}", n.pred.to_sql()));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::HashAggregate(n) => {
                if n.group_by.is_empty() {
                    out.push(format!("{pad}aggregate over all rows"));
                } else {
                    let keys: Vec<String> = n.group_by.iter().map(Expr::to_sql).collect();
                    out.push(format!("{pad}hash group by: {}", keys.join(", ")));
                }
                if let Some(h) = &n.having {
                    out.push(format!("{pad}having: {}", h.to_sql()));
                }
                out.push(format!("{pad}project: {}", n.columns.join(", ")));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::Project(n) => {
                out.push(format!("{pad}project: {}", n.columns.join(", ")));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::Distinct(n) => {
                out.push(format!("{pad}distinct"));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::Sort(n) => {
                let keys: Vec<String> = n
                    .keys
                    .iter()
                    .map(|k| {
                        let mut s = k.expr.to_sql();
                        if k.desc {
                            s.push_str(" DESC");
                        }
                        s
                    })
                    .collect();
                out.push(format!("{pad}sort: {}", keys.join(", ")));
                n.input.render_into(depth + 1, out);
            }
            PhysicalPlan::Limit(n) => {
                out.push(format!("{pad}limit: {}", n.n));
                n.input.render_into(depth + 1, out);
            }
        }
    }
}

/// One sarg candidate extracted from a WHERE conjunct.
struct SargCandidate {
    col_idx: usize,
    column: String,
    sarg: Sarg,
    via: IndexKind,
    distinct: usize,
}

/// Extract an index-servable predicate from one conjunct, resolved
/// against the base table (offsets below `base_arity` in `layout`).
/// Conjuncts that reference other bindings, fail to resolve, or compare
/// non-literals are simply not sargable — the residual filter still
/// evaluates them.
fn sarg_of(
    conjunct: &Expr,
    layout: &Layout,
    base: &Table,
    base_arity: usize,
) -> Option<SargCandidate> {
    let (table, name, sarg) = match conjunct {
        Expr::Binary { op, left, right } => {
            let (col, lit, flipped) = match (&**left, &**right) {
                (Expr::Column { table, name }, Expr::Literal(d)) => ((table, name), d, false),
                (Expr::Literal(d), Expr::Column { table, name }) => ((table, name), d, true),
                _ => return None,
            };
            let sarg = match op {
                BinOp::Eq => Sarg::Eq(lit.clone()),
                // Range ops never match NULL; skip null literals.
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge if !lit.is_null() => {
                    // Normalize `lit < col` to `col > lit`, etc.
                    let op = if flipped {
                        match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            _ => unreachable!(),
                        }
                    } else {
                        *op
                    };
                    match op {
                        BinOp::Lt => Sarg::Range {
                            lo: Bound::Unbounded,
                            hi: Bound::Excluded(lit.clone()),
                        },
                        BinOp::Le => Sarg::Range {
                            lo: Bound::Unbounded,
                            hi: Bound::Included(lit.clone()),
                        },
                        BinOp::Gt => Sarg::Range {
                            lo: Bound::Excluded(lit.clone()),
                            hi: Bound::Unbounded,
                        },
                        BinOp::Ge => Sarg::Range {
                            lo: Bound::Included(lit.clone()),
                            hi: Bound::Unbounded,
                        },
                        _ => unreachable!(),
                    }
                }
                _ => return None,
            };
            (col.0, col.1, sarg)
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => match (&**expr, &**low, &**high) {
            (Expr::Column { table, name }, Expr::Literal(lo), Expr::Literal(hi))
                if !lo.is_null() && !hi.is_null() =>
            {
                (
                    table,
                    name,
                    Sarg::Range {
                        lo: Bound::Included(lo.clone()),
                        hi: Bound::Included(hi.clone()),
                    },
                )
            }
            _ => return None,
        },
        _ => return None,
    };
    let off = layout.resolve(table.as_deref(), name).ok()?;
    if off >= base_arity {
        return None; // not a base-table column
    }
    let via = base.index_kind(off)?;
    // The B-tree compares with the total sort order, which coincides
    // with SQL comparison only within the column's own type family.
    // Equality sargs are safe for any literal (a key either compares
    // group-equal or is absent); range sargs additionally require a
    // literal the column's type can represent, which the residual
    // filter would otherwise handle via numeric coercion. Keep ranges
    // to literals matching the stored type family.
    if let Sarg::Range { lo, hi } = &sarg {
        let col_type = base.schema.columns[off].data_type;
        for b in [lo, hi] {
            if let Bound::Included(v) | Bound::Excluded(v) = b {
                v.coerce(col_type)?;
            }
        }
    }
    Some(SargCandidate {
        col_idx: off,
        column: base.schema.columns[off].name.clone(),
        sarg,
        via,
        distinct: base
            .index_distinct(off)
            .unwrap_or_else(|| base.len().max(1)),
    })
}

/// The facts of a detected single-table primary-key point lookup,
/// borrowed from the statement and catalog. Produced by
/// [`detect_pk_point`]; consumed by [`plan_pk_point`] (to build the
/// canonical plan tree) and by the executor's direct AST path in
/// [`crate::exec::execute_select_with_metrics`] (to skip plan
/// construction entirely).
pub(crate) struct PkPoint<'a> {
    /// The resolved base table.
    pub(crate) base: &'a Table,
    /// Offset of the primary-key column in the table schema.
    pub(crate) col_idx: usize,
    /// The literal the key column is compared against.
    pub(crate) key: &'a Datum,
    /// The full WHERE expression (still evaluated per fetched row).
    pub(crate) filter: &'a Expr,
}

/// Compare a stored (already lowercase) identifier against a query
/// identifier, mirroring [`Layout::resolve`]'s
/// `stored == query.to_ascii_lowercase()` without allocating.
pub(crate) fn eq_lowered(stored: &str, query: &str) -> bool {
    stored.len() == query.len()
        && stored
            .bytes()
            .zip(query.bytes())
            .all(|(s, q)| s == q.to_ascii_lowercase())
}

/// Recognize `SELECT <no aggregates> FROM one_table WHERE pk = literal`
/// with no joins, grouping, ordering, DISTINCT, or LIMIT. The
/// preconditions here are exactly the ones under which [`plan_select`]
/// commits to the point-lookup tree, so both the planner shortcut and
/// the executor's AST path key off one detector and cannot drift.
pub(crate) fn detect_pk_point<'a>(
    stmt: &'a SelectStmt,
    tables: &'a HashMap<String, Table>,
) -> Option<PkPoint<'a>> {
    if !stmt.joins.is_empty()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.distinct
        || !stmt.order_by.is_empty()
        || stmt.limit.is_some()
    {
        return None;
    }
    let filter = stmt.filter.as_ref()?;
    // Exactly one conjunct of the shape `col = literal` (either order).
    let (col, lit) = match filter {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => match (&**left, &**right) {
            (Expr::Column { table, name }, Expr::Literal(d))
            | (Expr::Literal(d), Expr::Column { table, name }) => ((table, name), d),
            _ => return None,
        },
        _ => return None,
    };
    // Aggregates reshape the tree (HashAggregate root); leave them to
    // the general path.
    let has_aggregate = stmt.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    });
    if has_aggregate {
        return None;
    }
    let base = lookup(tables, &stmt.from.name).ok()?;
    // A qualifier must name the FROM binding (same check resolving
    // through a one-table Layout would perform).
    if let Some(t) = col.0.as_deref() {
        if !t.eq_ignore_ascii_case(stmt.from.binding()) {
            return None;
        }
    }
    let col_idx = base
        .schema
        .columns
        .iter()
        .position(|c| eq_lowered(&c.name, col.1))?;
    if base.schema.single_primary_key() != Some(col_idx) {
        return None;
    }
    Some(PkPoint {
        base,
        col_idx,
        key: lit,
        filter,
    })
}

/// Recognize the canonical point lookup — `SELECT ... FROM t WHERE
/// pk = literal`, single table, nothing else in play — and build its
/// plan directly, skipping the costing pass entirely.
///
/// A primary-key equality can only ever plan one way (index lookup,
/// residual filter, projection), so running the full sarg sweep and
/// statistics pass for it is pure overhead; at one-row result sizes
/// that overhead is what the E10 `pk_point` measurement is made of.
/// The tree built here is node-for-node identical to what the general
/// path would produce (same operators, same `est_rows`, same EXPLAIN
/// rendering) — only the work to decide it is skipped.
fn plan_pk_point(stmt: &SelectStmt, tables: &HashMap<String, Table>) -> Option<PhysicalPlan> {
    let pk = detect_pk_point(stmt, tables)?;
    let (base, col_idx, lit, filter) = (pk.base, pk.col_idx, pk.key, pk.filter);
    let mut layout = Layout::new();
    layout.push(
        stmt.from.binding().to_ascii_lowercase(),
        base.schema.column_names(),
    );
    let select_exprs = expand_items(&stmt.items, &layout).ok()?;
    let columns: Vec<String> = select_exprs.iter().map(|(_, n)| n.clone()).collect();
    let scan = PhysicalPlan::IxScan(IxScanNode {
        table: stmt.from.name.to_ascii_lowercase(),
        column: base.schema.columns[col_idx].name.clone(),
        col_idx,
        sarg: Sarg::Eq(lit.clone()),
        via: IndexKind::PrimaryKey,
        est_rows: 1,
    });
    let filtered = PhysicalPlan::Filter(Box::new(FilterNode {
        input: Box::new(scan),
        pred: filter.clone(),
        layout: layout.clone(),
    }));
    Some(PhysicalPlan::Project(Box::new(ProjectNode {
        input: Box::new(filtered),
        select_exprs,
        columns,
        order_by: Vec::new(),
        layout,
    })))
}

/// Build the physical plan for `stmt` against the current catalog.
///
/// Planning never executes row-level work, so `EXPLAIN` is free; it
/// does resolve tables (errors early, like the executor would) and
/// reads table statistics for its access-path and join decisions.
/// Single-table primary-key point lookups short-circuit past the cost
/// pass (see [`plan_pk_point`]).
pub fn plan_select(stmt: &SelectStmt, tables: &HashMap<String, Table>) -> RelResult<PhysicalPlan> {
    if let Some(plan) = plan_pk_point(stmt, tables) {
        return Ok(plan);
    }
    let base = lookup(tables, &stmt.from.name)?;
    let base_name = stmt.from.name.to_ascii_lowercase();
    let base_arity = base.schema.arity();

    // Build the full layout up front (join table lookups error here,
    // preserving the reference executor's error precedence), keeping a
    // prefix snapshot per join for ON resolution.
    let mut layout = Layout::new();
    layout.push(
        stmt.from.binding().to_ascii_lowercase(),
        base.schema.column_names(),
    );
    let mut prefixes: Vec<Layout> = Vec::with_capacity(stmt.joins.len());
    let mut join_tables: Vec<&Table> = Vec::with_capacity(stmt.joins.len());
    for join in &stmt.joins {
        let right = lookup(tables, &join.table.name)?;
        prefixes.push(layout.clone());
        join_tables.push(right);
        layout.push(
            join.table.binding().to_ascii_lowercase(),
            right.schema.column_names(),
        );
    }

    if let Some(filter) = &stmt.filter {
        if filter.contains_aggregate() {
            return Err(RelError::AggregateMisuse(
                "aggregate in WHERE; use HAVING".into(),
            ));
        }
    }

    // ---- Base access path: best sarg over the base table's indexes.
    let stats = base.stats();
    let mut plan;
    let mut est_rows: f64;
    let best = stmt.filter.as_ref().and_then(|filter| {
        conjuncts(filter)
            .into_iter()
            .filter_map(|c| sarg_of(c, &layout, base, base_arity))
            // Prefer equality over range, then the most selective
            // (highest distinct count) index.
            .max_by_key(|c| (matches!(c.sarg, Sarg::Eq(_)), c.distinct))
    });
    match best {
        Some(cand) => {
            let est = match cand.sarg {
                Sarg::Eq(_) => (stats.rows / cand.distinct.max(1)).max(1),
                Sarg::Range { .. } => (stats.rows / 4).max(1),
            };
            est_rows = est as f64;
            plan = PhysicalPlan::IxScan(IxScanNode {
                table: base_name,
                column: cand.column,
                col_idx: cand.col_idx,
                sarg: cand.sarg,
                via: cand.via,
                est_rows: est,
            });
        }
        None => {
            est_rows = stats.rows as f64;
            plan = PhysicalPlan::SeqScan(SeqScanNode {
                table: base_name,
                rows: stats.rows,
            });
        }
    }

    // ---- Joins.
    for (i, join) in stmt.joins.iter().enumerate() {
        let right = join_tables[i];
        let right_binding = join.table.binding().to_ascii_lowercase();
        let right_name = join.table.name.to_ascii_lowercase();
        let mut after = prefixes[i].clone();
        after.push(right_binding.clone(), right.schema.column_names());

        let equi = match (&join.kind, &join.on) {
            (JoinKind::Inner, Some(on)) => {
                equi_join_offsets(on, &prefixes[i], &right_binding, right)
            }
            _ => None,
        };
        match (join.kind, equi) {
            (JoinKind::Inner, Some((left_off, right_col))) => {
                let on_sql = join.on.as_ref().expect("inner join has ON").to_sql();
                let via = right.index_kind(right_col);
                let part_tables: Vec<&Table> = std::iter::once(base)
                    .chain(join_tables[..i].iter().copied())
                    .collect();
                let compatible =
                    types_joinable(&prefixes[i], &part_tables, left_off, right, right_col);
                let distinct = right.index_distinct(right_col).unwrap_or(1).max(1);
                if let (Some(via), true) = (via, compatible && est_rows <= right.len() as f64) {
                    plan = PhysicalPlan::IxJoin(Box::new(IxJoinNode {
                        input: Box::new(plan),
                        table: right_name,
                        on_sql,
                        left_off,
                        right_col,
                        via,
                    }));
                } else {
                    plan = PhysicalPlan::HashJoin(Box::new(HashJoinNode {
                        input: Box::new(plan),
                        table: right_name,
                        on_sql,
                        left_off,
                        right_col,
                        build_rows: right.len(),
                    }));
                }
                est_rows *= (right.len() as f64 / distinct as f64).max(1.0);
            }
            (kind, _) => {
                if kind == JoinKind::Cross || kind == JoinKind::Inner {
                    est_rows *= right.len().max(1) as f64;
                }
                plan = PhysicalPlan::NlJoin(Box::new(NlJoinNode {
                    input: Box::new(plan),
                    table: right_name,
                    kind,
                    on: join.on.clone(),
                    layout: after,
                    right_width: right.schema.arity(),
                    right_rows: right.len(),
                }));
            }
        }
    }

    // ---- Residual WHERE filter (always the full predicate).
    if let Some(filter) = &stmt.filter {
        plan = PhysicalPlan::Filter(Box::new(FilterNode {
            input: Box::new(plan),
            pred: filter.clone(),
            layout: layout.clone(),
        }));
    }

    // ---- Projection / aggregation.
    let select_exprs = expand_items(&stmt.items, &layout)?;
    let columns: Vec<String> = select_exprs.iter().map(|(_, n)| n.clone()).collect();
    let has_aggregates = select_exprs.iter().any(|(e, _)| e.contains_aggregate())
        || stmt
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false)
        || stmt.order_by.iter().any(|k| k.expr.contains_aggregate());
    if has_aggregates || !stmt.group_by.is_empty() {
        plan = PhysicalPlan::HashAggregate(Box::new(HashAggregateNode {
            input: Box::new(plan),
            group_by: stmt.group_by.clone(),
            having: stmt.having.clone(),
            select_exprs,
            columns,
            order_by: stmt.order_by.clone(),
            layout: layout.clone(),
        }));
    } else {
        plan = PhysicalPlan::Project(Box::new(ProjectNode {
            input: Box::new(plan),
            select_exprs,
            columns,
            order_by: stmt.order_by.clone(),
            layout: layout.clone(),
        }));
    }

    if stmt.distinct {
        plan = PhysicalPlan::Distinct(Box::new(DistinctNode {
            input: Box::new(plan),
        }));
    }
    if !stmt.order_by.is_empty() {
        plan = PhysicalPlan::Sort(Box::new(SortNode {
            input: Box::new(plan),
            keys: stmt.order_by.clone(),
        }));
    }
    if let Some(n) = stmt.limit {
        plan = PhysicalPlan::Limit(Box::new(LimitNode {
            input: Box::new(plan),
            n,
        }));
    }
    Ok(plan)
}

/// True when the left join key's declared type and the right key's type
/// compare identically under both the B-tree order and hash-equality —
/// i.e. the index probe is allowed to replace the hash join.
/// `part_tables[i]` is the table behind `prefix.parts[i]`.
fn types_joinable(
    prefix: &Layout,
    part_tables: &[&Table],
    left_off: usize,
    right: &Table,
    right_col: usize,
) -> bool {
    use crate::types::DataType;
    let lt = prefix
        .parts
        .iter()
        .enumerate()
        .find(|(_, (_, cols, start))| left_off >= *start && left_off < start + cols.len())
        .map(|(pi, (_, _, start))| part_tables[pi].schema.columns[left_off - start].data_type);
    let rt = right.schema.columns[right_col].data_type;
    match lt {
        Some(lt) => {
            let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Double);
            lt == rt || (numeric(lt) && numeric(rt))
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::sql::ast::Statement;
    use crate::sql::parse_statement;
    use crate::types::DataType;

    fn catalog() -> HashMap<String, Table> {
        let mut dept = Table::new(TableSchema::new(
            "dept",
            vec![
                Column::new("dept_id", DataType::Int).primary_key(),
                Column::new("name", DataType::Text),
            ],
        ));
        for (id, name) in [(1, "cardiology"), (2, "oncology")] {
            dept.insert(vec![Datum::Int(id), Datum::Text(name.into())])
                .unwrap();
        }
        let mut emp = Table::new(TableSchema::new(
            "emp",
            vec![
                Column::new("emp_id", DataType::Int).primary_key(),
                Column::new("dept_id", DataType::Int),
                Column::new("salary", DataType::Double),
            ],
        ));
        for (id, d, s) in [(1, 1, 10.0), (2, 1, 20.0), (3, 2, 30.0), (4, 2, 40.0)] {
            emp.insert(vec![Datum::Int(id), Datum::Int(d), Datum::Double(s)])
                .unwrap();
        }
        emp.create_index("emp_dept", 1).unwrap();
        let mut m = HashMap::new();
        m.insert("dept".into(), dept);
        m.insert("emp".into(), emp);
        m
    }

    fn plan(sql: &str) -> PhysicalPlan {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => plan_select(&s, &catalog()).unwrap(),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn equality_sarg_beats_scan_even_with_joins() {
        // The old executor refused to use indexes under joins.
        let p = plan(
            "SELECT e.salary FROM emp e JOIN dept d ON e.dept_id = d.dept_id \
             WHERE e.emp_id = 3",
        );
        let names = p.operator_names();
        assert!(names.contains(&"index scan"), "{names:?}");
        assert!(!names.contains(&"seq scan"), "{names:?}");
    }

    #[test]
    fn range_predicates_become_index_range_scans() {
        let p = plan("SELECT salary FROM emp WHERE emp_id BETWEEN 2 AND 3");
        assert!(p.operator_names().contains(&"index scan"));
        let text = p.render().join("\n");
        assert!(
            text.contains("index range scan emp.emp_id >= 2 AND emp_id <= 3"),
            "{text}"
        );

        let p = plan("SELECT salary FROM emp WHERE 2 < emp_id");
        let text = p.render().join("\n");
        assert!(text.contains("index range scan emp.emp_id > 2"), "{text}");
    }

    #[test]
    fn unindexed_or_non_literal_predicates_scan() {
        let p = plan("SELECT emp_id FROM emp WHERE salary > 15");
        assert!(p.operator_names().contains(&"seq scan"));
        let p = plan("SELECT emp_id FROM emp WHERE emp_id = dept_id");
        assert!(p.operator_names().contains(&"seq scan"));
    }

    #[test]
    fn equality_preferred_over_range() {
        let p = plan("SELECT salary FROM emp WHERE emp_id > 1 AND dept_id = 2");
        let text = p.render().join("\n");
        // dept_id = 2 (equality, secondary) wins over emp_id > 1 (range, pk).
        assert!(
            text.contains("index lookup emp.dept_id = 2 via secondary index"),
            "{text}"
        );
    }

    #[test]
    fn index_join_when_inner_key_indexed_and_outer_small() {
        let p = plan("SELECT d.name, e.salary FROM dept d JOIN emp e ON d.dept_id = e.dept_id");
        let names = p.operator_names();
        assert!(names.contains(&"index join"), "{names:?}");
        let text = p.render().join("\n");
        assert!(text.contains("index join emp"), "{text}");
    }

    #[test]
    fn hash_join_when_inner_key_unindexed_nl_otherwise() {
        // dept.name has no index → equi-join falls back to hash join.
        let p = plan("SELECT 1 FROM emp e JOIN dept d ON e.salary = d.name");
        assert!(p.operator_names().contains(&"hash join"));
        // Non-equi ON → nested loops.
        let p = plan("SELECT 1 FROM emp e JOIN dept d ON e.dept_id < d.dept_id");
        assert!(p.operator_names().contains(&"nested-loop join"));
    }

    #[test]
    fn render_and_operator_names_come_from_one_tree() {
        let p = plan(
            "SELECT dept_id, COUNT(*) n FROM emp GROUP BY dept_id \
             HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3",
        );
        assert_eq!(
            p.operator_names(),
            vec!["seq scan", "hash aggregate", "sort", "limit"]
        );
        let text = p.render().join("\n");
        for needle in [
            "limit: 3",
            "sort: n DESC",
            "hash group by: dept_id",
            "having: (COUNT(*) > 1)",
            "project: dept_id, n",
            "seq scan emp (4 rows)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn pk_point_fast_path_builds_the_canonical_tree() {
        // The shape the general path would build: index lookup,
        // residual filter, projection — with the same rendering.
        let p = plan("SELECT salary FROM emp WHERE emp_id = 3");
        assert_eq!(p.operator_names(), vec!["index scan", "filter", "project"]);
        let text = p.render().join("\n");
        assert!(
            text.contains("index lookup emp.emp_id = 3 via PRIMARY KEY (~1 rows)"),
            "{text}"
        );
        assert!(text.contains("filter: (emp_id = 3)"), "{text}");

        // Qualified and flipped forms take the same path.
        let p = plan("SELECT e.salary FROM emp e WHERE 3 = e.emp_id");
        assert_eq!(p.operator_names(), vec!["index scan", "filter", "project"]);

        // Non-PK equality, extra conjuncts, and wrappers fall through
        // to the general path (same answers, costed plan).
        let p = plan("SELECT salary FROM emp WHERE dept_id = 2");
        assert!(p.render().join("\n").contains("via secondary index"));
        let p = plan("SELECT salary FROM emp WHERE emp_id = 3 AND salary > 0");
        assert!(p.operator_names().contains(&"index scan"));
        let p = plan("SELECT COUNT(*) FROM emp WHERE emp_id = 3");
        assert!(p.operator_names().contains(&"hash aggregate"));
        let p = plan("SELECT salary FROM emp WHERE emp_id = 3 LIMIT 1");
        assert!(p.operator_names().contains(&"limit"));
    }

    #[test]
    fn output_columns_surface_through_wrappers() {
        let p = plan("SELECT DISTINCT salary s FROM emp ORDER BY s LIMIT 2");
        assert_eq!(p.output_columns(), ["s"]);
    }
}
