//! CDR round-trip coverage for *every* `Value` variant, including
//! deeply nested sequences and structs.
//!
//! `prop_roundtrip.rs` drives random shallow trees; this suite instead
//! guarantees variant coverage (an exemplar list checked exhaustively
//! against the enum) and pushes nesting depth far beyond what random
//! generation reaches, so recursion in the encoder/decoder is exercised
//! on purpose rather than by luck.

use webfindit_base::prop::{self, string_of, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_wire::cdr::{ByteOrder, CdrReader, CdrWriter};
use webfindit_wire::ior::Ior;
use webfindit_wire::value::Value;

const IDENT: &str = "abcdefghijklmnopqrstuvwxyz";
const TEXT: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.-";

fn roundtrip(v: &Value, order: ByteOrder) -> Value {
    let mut w = CdrWriter::new(order);
    v.encode(&mut w).expect("encodes");
    let bytes = w.into_bytes();
    let mut r = CdrReader::new(&bytes, order);
    let back = Value::decode(&mut r).expect("decodes");
    assert!(r.is_exhausted(), "decoder left trailing bytes for {v:?}");
    back
}

fn assert_roundtrips(v: &Value) {
    for order in [ByteOrder::BigEndian, ByteOrder::LittleEndian] {
        assert_eq!(&roundtrip(v, order), v, "byte order {order:?}");
    }
}

/// One or more exemplars per `Value` variant, edge values included.
fn exemplars() -> Vec<Value> {
    let ior = Ior::new_iiop(
        "IDL:test/Exemplar:1.0",
        "dba.icis.qut.edu.au",
        9000,
        b"codb/RBH".to_vec(),
    );
    vec![
        Value::Void,
        Value::Null,
        Value::Bool(false),
        Value::Bool(true),
        Value::Octet(0),
        Value::Octet(u8::MAX),
        Value::Short(i16::MIN),
        Value::Short(i16::MAX),
        Value::Long(i32::MIN),
        Value::Long(i32::MAX),
        Value::LongLong(i64::MIN),
        Value::LongLong(i64::MAX),
        Value::ULong(0),
        Value::ULong(u32::MAX),
        Value::Float(0.0),
        Value::Float(-0.0),
        Value::Float(f32::MIN_POSITIVE),
        Value::Float(f32::INFINITY),
        Value::Float(f32::NEG_INFINITY),
        Value::Double(0.0),
        Value::Double(f64::MAX),
        Value::Double(f64::NEG_INFINITY),
        Value::Str(String::new()),
        Value::Str("Royal Brisbane Hospital — PatientHistory".into()),
        Value::Sequence(Vec::new()),
        Value::Sequence(vec![Value::Long(1), Value::Str("two".into()), Value::Null]),
        Value::Struct(Vec::new()),
        Value::Struct(vec![
            ("name".into(), Value::Str("Research".into())),
            ("members".into(), Value::Sequence(vec![Value::Octet(3)])),
        ]),
        Value::ObjectRef(ior),
    ]
}

#[test]
fn every_variant_roundtrips_in_both_byte_orders() {
    let cases = exemplars();
    for v in &cases {
        assert_roundtrips(v);
    }
    // Exhaustiveness guard: adding a `Value` variant breaks this match,
    // pointing here to extend the exemplar list.
    let mut covered = std::collections::BTreeSet::new();
    for v in &cases {
        covered.insert(match v {
            Value::Void => "Void",
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Octet(_) => "Octet",
            Value::Short(_) => "Short",
            Value::Long(_) => "Long",
            Value::LongLong(_) => "LongLong",
            Value::ULong(_) => "ULong",
            Value::Float(_) => "Float",
            Value::Double(_) => "Double",
            Value::Str(_) => "Str",
            Value::Sequence(_) => "Sequence",
            Value::Struct(_) => "Struct",
            Value::ObjectRef(_) => "ObjectRef",
        });
    }
    assert_eq!(covered.len(), 14, "exemplar list must cover all variants");
}

/// A leaf drawn uniformly from the non-recursive variants.
fn arb_leaf(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..12) {
        0 => Value::Void,
        1 => Value::Null,
        2 => Value::Bool(rng.gen_bool(0.5)),
        3 => Value::Octet(rng.next_u64() as u8),
        4 => Value::Short(rng.next_u64() as i16),
        5 => Value::Long(rng.next_u64() as i32),
        6 => Value::LongLong(rng.next_u64() as i64),
        7 => Value::ULong(rng.next_u64() as u32),
        8 => Value::Float(rng.next_u64() as u32 as f32),
        9 => Value::Double(rng.next_u64() as f64),
        10 => Value::Str(string_of(rng, TEXT, 0..24)),
        _ => Value::ObjectRef(Ior::new_iiop(
            string_of(rng, IDENT, 1..16),
            string_of(rng, IDENT, 1..12),
            rng.next_u64() as u16,
            vec_of(rng, 0..8, |r| r.next_u64() as u8),
        )),
    }
}

/// A tree that is *guaranteed* `depth` levels deep: a spine of
/// alternating sequences and structs, each level carrying a few extra
/// random leaves alongside the recursive child.
fn nested(rng: &mut StdRng, depth: usize) -> Value {
    let mut v = arb_leaf(rng);
    for level in 0..depth {
        v = if level % 2 == 0 {
            let mut items = vec![v];
            items.extend((0..rng.gen_range(0..3usize)).map(|_| arb_leaf(rng)));
            Value::Sequence(items)
        } else {
            let mut fields = vec![(string_of(rng, IDENT, 1..8), v)];
            fields.extend(
                (0..rng.gen_range(0..3usize)).map(|_| (string_of(rng, IDENT, 1..8), arb_leaf(rng))),
            );
            Value::Struct(fields)
        };
    }
    v
}

#[test]
fn prop_deeply_nested_trees_roundtrip() {
    prop::cases(64, |rng| {
        let depth = rng.gen_range(8..48usize);
        let v = nested(rng, depth);
        assert_roundtrips(&v);
    });
}

#[test]
fn sixty_four_levels_of_nesting_roundtrip() {
    // A deterministic worst case well past anything discovery marshals.
    let mut rng = StdRng::seed_from_u64(1999);
    let v = nested(&mut rng, 64);
    assert_roundtrips(&v);
}

#[test]
fn prop_wide_and_deep_mixtures_roundtrip() {
    // Wide collections of independently nested children, so sibling
    // decoding state (alignment, element counts) is stressed too.
    prop::cases(32, |rng| {
        let children = vec_of(rng, 1..8, |r| {
            let depth = r.gen_range(0..10usize);
            nested(r, depth)
        });
        assert_roundtrips(&Value::Sequence(children.clone()));
        let fields = children
            .into_iter()
            .enumerate()
            .map(|(i, c)| (format!("f{i}"), c))
            .collect();
        assert_roundtrips(&Value::Struct(fields));
    });
}
