//! A small OQL-flavoured query language over class extents.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query  := SELECT ( '*' | attr (',' attr)* ) FROM Class [WHERE pred]
//! pred   := or
//! or     := and (OR and)*
//! and    := not (AND not)*
//! not    := [NOT] cmp | '(' pred ')'
//! cmp    := attr (= | <> | < | <= | > | >=| LIKE) literal
//!         | attr IS [NOT] NULL
//! ```
//!
//! `FROM Class` ranges over the extent *closure* (instances of the class
//! and all its subclasses), which is what makes coalition queries like
//! "all databases under Research" one-liners in the co-database.

use crate::model::OValue;
use crate::model::Oid;
use crate::store::ObjectStore;
use crate::{OoError, OoResult};
use std::cmp::Ordering;

/// A parsed OQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct OqlQuery {
    /// Projected attribute names, or empty for `*`.
    pub attrs: Vec<String>,
    /// The class whose extent closure is queried.
    pub class: String,
    /// Optional predicate.
    pub filter: Option<Pred>,
    /// Optional `order by (attribute, descending)` key.
    pub order_by: Option<(String, bool)>,
    /// Optional `limit`.
    pub limit: Option<usize>,
}

/// OQL predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Comparison of an attribute to a literal.
    Cmp {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Literal operand.
        value: OValue,
    },
    /// `attr IS [NOT] NULL`.
    IsNull {
        /// Attribute name.
        attr: String,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// `attr IN (lit, lit, …)` — membership in a literal list. The
    /// federated executor ships semi-join key sets this way.
    In {
        /// Attribute name.
        attr: String,
        /// Admitted values (at least one).
        values: Vec<OValue>,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `LIKE` with `%`/`_`
    Like,
}

/// Query result: projected column names plus `(oid, values)` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OqlResult {
    /// Output attribute names.
    pub columns: Vec<String>,
    /// Matching objects with projected values.
    pub rows: Vec<(Oid, Vec<OValue>)>,
}

/// Execution counters for an OQL run, mirroring relstore's
/// `ExecMetrics` vocabulary so Trace/OrbMetrics can observe data-layer
/// work uniformly across both stores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OoExecMetrics {
    /// Objects loaded from the extent closure.
    pub objects_scanned: u64,
    /// Objects surviving the predicate.
    pub objects_matched: u64,
    /// Rows materialized for sorting.
    pub rows_spilled: u64,
    /// Operators that actually ran, leaf first. Guaranteed to equal
    /// [`OqlPlan::operator_names`] of the plan [`OqlQuery::plan`]
    /// returns for the same query.
    pub operators: Vec<&'static str>,
}

/// Physical plan for an OQL query over a class-lattice extent.
///
/// Rendered by `EXPLAIN`-style callers *and* walked conceptually by
/// [`OqlQuery::execute_with_metrics`]; there is no separate description
/// path to drift.
#[derive(Debug, Clone, PartialEq)]
pub enum OqlPlan {
    /// Scan the extent closure (instances of the class and subclasses).
    ExtentScan {
        /// Class whose closure is scanned.
        class: String,
        /// Objects currently in the closure.
        objects: usize,
    },
    /// Keep objects whose predicate is true.
    Filter {
        /// Upstream operator.
        input: Box<OqlPlan>,
        /// Rendered predicate.
        pred: String,
    },
    /// Project the attribute list.
    Project {
        /// Upstream operator.
        input: Box<OqlPlan>,
        /// Output attribute names.
        attrs: Vec<String>,
    },
    /// Sort on one attribute (NULLs first, OID tiebreak).
    Sort {
        /// Upstream operator.
        input: Box<OqlPlan>,
        /// Sort attribute.
        attr: String,
        /// Descending order.
        desc: bool,
    },
    /// Stop after `n` rows; without a sort this stops the scan too.
    Limit {
        /// Upstream operator.
        input: Box<OqlPlan>,
        /// Row cap.
        n: usize,
    },
}

impl OqlPlan {
    /// Operator display name.
    pub fn name(&self) -> &'static str {
        match self {
            OqlPlan::ExtentScan { .. } => "extent scan",
            OqlPlan::Filter { .. } => "filter",
            OqlPlan::Project { .. } => "project",
            OqlPlan::Sort { .. } => "sort",
            OqlPlan::Limit { .. } => "limit",
        }
    }

    /// The upstream operator, if any.
    pub fn input(&self) -> Option<&OqlPlan> {
        match self {
            OqlPlan::ExtentScan { .. } => None,
            OqlPlan::Filter { input, .. }
            | OqlPlan::Project { input, .. }
            | OqlPlan::Sort { input, .. }
            | OqlPlan::Limit { input, .. } => Some(input),
        }
    }

    /// Operator names leaf-first (execution order).
    pub fn operator_names(&self) -> Vec<&'static str> {
        let mut out = match self.input() {
            Some(i) => i.operator_names(),
            None => Vec::new(),
        };
        out.push(self.name());
        out
    }

    /// Render the plan root-first, indented two spaces per level.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        let line = match self {
            OqlPlan::ExtentScan { class, objects } => {
                format!("{pad}extent scan {class} ({objects} objects, closure)")
            }
            OqlPlan::Filter { pred, .. } => format!("{pad}filter: {pred}"),
            OqlPlan::Project { attrs, .. } => format!("{pad}project: {}", attrs.join(", ")),
            OqlPlan::Sort { attr, desc, .. } => {
                format!("{pad}sort: {attr}{}", if *desc { " DESC" } else { "" })
            }
            OqlPlan::Limit { n, .. } => format!("{pad}limit: {n}"),
        };
        out.push(line);
        if let Some(i) = self.input() {
            i.render_into(depth + 1, out);
        }
    }
}

fn value_to_text(v: &OValue) -> String {
    match v {
        OValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

fn pred_to_text(p: &Pred) -> String {
    match p {
        Pred::Cmp { attr, op, value } => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Like => "LIKE",
            };
            format!("{attr} {op} {}", value_to_text(value))
        }
        Pred::IsNull { attr, negated } => {
            format!("{attr} IS {}NULL", if *negated { "NOT " } else { "" })
        }
        Pred::In { attr, values } => {
            let vs: Vec<String> = values.iter().map(value_to_text).collect();
            format!("{attr} IN ({})", vs.join(", "))
        }
        Pred::And(a, b) => format!("({} AND {})", pred_to_text(a), pred_to_text(b)),
        Pred::Or(a, b) => format!("({} OR {})", pred_to_text(a), pred_to_text(b)),
        Pred::Not(a) => format!("NOT {}", pred_to_text(a)),
    }
}

impl OqlQuery {
    /// Parse OQL text.
    pub fn parse(text: &str) -> OoResult<OqlQuery> {
        Parser::new(text).query()
    }

    /// Resolve the output attribute list against the store's lattice.
    fn output_columns(&self, store: &ObjectStore) -> OoResult<Vec<String>> {
        if self.attrs.is_empty() {
            Ok(store
                .all_attributes(&self.class)?
                .into_iter()
                .map(|a| a.name)
                .collect())
        } else {
            Ok(self.attrs.clone())
        }
    }

    /// Build the physical plan this query executes against `store`.
    pub fn plan(&self, store: &ObjectStore) -> OoResult<OqlPlan> {
        let objects = store.instances_of(&self.class, true)?.len();
        let attrs = self.output_columns(store)?;
        let mut plan = OqlPlan::ExtentScan {
            class: self.class.clone(),
            objects,
        };
        if let Some(p) = &self.filter {
            plan = OqlPlan::Filter {
                input: Box::new(plan),
                pred: pred_to_text(p),
            };
        }
        plan = OqlPlan::Project {
            input: Box::new(plan),
            attrs,
        };
        if let Some((attr, desc)) = &self.order_by {
            plan = OqlPlan::Sort {
                input: Box::new(plan),
                attr: attr.clone(),
                desc: *desc,
            };
        }
        if let Some(n) = self.limit {
            plan = OqlPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Describe the plan [`OqlQuery::execute`] would run, without
    /// executing it.
    pub fn explain(&self, store: &ObjectStore) -> OoResult<Vec<String>> {
        Ok(self.plan(store)?.render())
    }

    /// Execute against a store.
    pub fn execute(&self, store: &ObjectStore) -> OoResult<OqlResult> {
        self.execute_with_metrics(store).map(|(r, _)| r)
    }

    /// Execute against a store, returning [`OoExecMetrics`] alongside
    /// the result. `LIMIT` without `ORDER BY` stops the extent scan as
    /// soon as enough objects matched.
    pub fn execute_with_metrics(
        &self,
        store: &ObjectStore,
    ) -> OoResult<(OqlResult, OoExecMetrics)> {
        let plan = self.plan(store)?;
        let mut m = OoExecMetrics {
            operators: plan.operator_names(),
            ..OoExecMetrics::default()
        };
        let oids = store.instances_of(&self.class, true)?;
        let columns = self.output_columns(store)?;
        let mut rows = Vec::new();
        for oid in oids {
            // LIMIT pushdown: without a sort there is no need to keep
            // scanning once the cap is reached.
            if self.order_by.is_none() {
                if let Some(n) = self.limit {
                    if rows.len() >= n {
                        break;
                    }
                }
            }
            let obj = store.object(oid)?;
            m.objects_scanned += 1;
            if let Some(p) = &self.filter {
                if !matches!(eval_pred(p, obj), Some(true)) {
                    continue;
                }
            }
            m.objects_matched += 1;
            let values = columns.iter().map(|c| obj.get(c)).collect();
            rows.push((oid, values));
        }
        if let Some((attr, desc)) = &self.order_by {
            m.rows_spilled += rows.len() as u64;
            let mut keyed: Vec<(OValue, (Oid, Vec<OValue>))> = rows
                .into_iter()
                .map(|(oid, values)| {
                    let key = store
                        .object(oid)
                        .map(|o| o.get(attr))
                        .unwrap_or(OValue::Null);
                    (key, (oid, values))
                })
                .collect();
            keyed.sort_by(|(a, (ao, _)), (b, (bo, _))| {
                // Nulls first, incomparables by OID for a stable total order.
                let ord = match (a.is_null(), b.is_null()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Less,
                    (false, true) => Ordering::Greater,
                    (false, false) => a.compare(b).unwrap_or(Ordering::Equal),
                };
                let ord = if *desc { ord.reverse() } else { ord };
                ord.then(ao.cmp(bo))
            });
            rows = keyed.into_iter().map(|(_, row)| row).collect();
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        Ok((OqlResult { columns, rows }, m))
    }
}

fn eval_pred(p: &Pred, obj: &crate::store::Object) -> Option<bool> {
    match p {
        Pred::Cmp { attr, op, value } => {
            let v = obj.get(attr);
            if *op == CmpOp::Like {
                return match (v.as_text(), value.as_text()) {
                    (Some(t), Some(pat)) => Some(like(t, pat)),
                    _ => None,
                };
            }
            let ord = v.compare(value)?;
            Some(match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Like => unreachable!(),
            })
        }
        Pred::IsNull { attr, negated } => Some(obj.get(attr).is_null() != *negated),
        Pred::In { attr, values } => {
            let v = obj.get(attr);
            let mut unknown = false;
            for candidate in values {
                match v.compare(candidate) {
                    Some(Ordering::Equal) => return Some(true),
                    Some(_) => {}
                    None => unknown = true,
                }
            }
            if unknown {
                None
            } else {
                Some(false)
            }
        }
        Pred::And(a, b) => match (eval_pred(a, obj), eval_pred(b, obj)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Pred::Or(a, b) => match (eval_pred(a, obj), eval_pred(b, obj)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Pred::Not(a) => eval_pred(a, obj).map(|b| !b),
    }
}

/// LIKE matching with `%` and `_`.
fn like(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|i| rec(&t[i..], rest)),
            Some(('_', rest)) => t.split_first().is_some_and(|(_, tr)| rec(tr, rest)),
            Some((c, rest)) => t
                .split_first()
                .is_some_and(|(tc, tr)| tc == c && rec(tr, rest)),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

// ---- parsing ----------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Sym(&'static str),
    Eof,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Parser {
        Parser {
            toks: lex(text),
            pos: 0,
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> OoResult<T> {
        Err(OoError::Parse {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw)) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> OoResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {}", kw.to_uppercase()))
        }
    }

    fn ident(&mut self) -> OoResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn query(&mut self) -> OoResult<OqlQuery> {
        self.expect_kw("select")?;
        let mut attrs = Vec::new();
        if !matches!(self.peek(), Tok::Sym("*")) {
            loop {
                attrs.push(self.ident()?.to_ascii_lowercase());
                if !matches!(self.peek(), Tok::Sym(",")) {
                    break;
                }
                self.bump();
            }
        } else {
            self.bump();
        }
        self.expect_kw("from")?;
        let class = self.ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.pred_or()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let attr = self.ident()?.to_ascii_lowercase();
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some((attr, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                other => return self.err(format!("expected a limit count, found {other:?}")),
            }
        } else {
            None
        };
        if !matches!(self.peek(), Tok::Eof) {
            return self.err("trailing input after query");
        }
        Ok(OqlQuery {
            attrs,
            class,
            filter,
            order_by,
            limit,
        })
    }

    fn pred_or(&mut self) -> OoResult<Pred> {
        let mut left = self.pred_and()?;
        while self.eat_kw("or") {
            let right = self.pred_and()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> OoResult<Pred> {
        let mut left = self.pred_not()?;
        while self.eat_kw("and") {
            let right = self.pred_not()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_not(&mut self) -> OoResult<Pred> {
        if self.eat_kw("not") {
            let inner = self.pred_not()?;
            return Ok(Pred::Not(Box::new(inner)));
        }
        if matches!(self.peek(), Tok::Sym("(")) {
            self.bump();
            let inner = self.pred_or()?;
            if !matches!(self.bump(), Tok::Sym(")")) {
                return self.err("expected ')'");
            }
            return Ok(inner);
        }
        self.cmp()
    }

    fn cmp(&mut self) -> OoResult<Pred> {
        let attr = self.ident()?.to_ascii_lowercase();
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Pred::IsNull { attr, negated });
        }
        if self.eat_kw("like") {
            let value = self.literal()?;
            return Ok(Pred::Cmp {
                attr,
                op: CmpOp::Like,
                value,
            });
        }
        if self.eat_kw("in") {
            if !matches!(self.bump(), Tok::Sym("(")) {
                return self.err("expected '(' after IN");
            }
            let mut values = vec![self.literal()?];
            while matches!(self.peek(), Tok::Sym(",")) {
                self.bump();
                values.push(self.literal()?);
            }
            if !matches!(self.bump(), Tok::Sym(")")) {
                return self.err("expected ')' after the IN list");
            }
            return Ok(Pred::In { attr, values });
        }
        let op = match self.bump() {
            Tok::Sym("=") => CmpOp::Eq,
            Tok::Sym("<>") => CmpOp::Ne,
            Tok::Sym("<=") => CmpOp::Le,
            Tok::Sym(">=") => CmpOp::Ge,
            Tok::Sym("<") => CmpOp::Lt,
            Tok::Sym(">") => CmpOp::Gt,
            other => return self.err(format!("expected comparison operator, found {other:?}")),
        };
        let value = self.literal()?;
        Ok(Pred::Cmp { attr, op, value })
    }

    fn literal(&mut self) -> OoResult<OValue> {
        match self.bump() {
            Tok::Str(s) => Ok(OValue::Text(s)),
            Tok::Int(v) => Ok(OValue::Int(v)),
            Tok::Float(v) => Ok(OValue::Double(v)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(OValue::Bool(true)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(OValue::Bool(false)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(OValue::Null),
            Tok::Sym("-") => match self.bump() {
                Tok::Int(v) => Ok(OValue::Int(-v)),
                Tok::Float(v) => Ok(OValue::Double(-v)),
                other => self.err(format!("expected number after '-', found {other:?}")),
            },
            other => self.err(format!("expected literal, found {other:?}")),
        }
    }
}

fn lex(text: &str) -> Vec<(Tok, usize)> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            while i < b.len() {
                if b[i] == b'\'' {
                    if b.get(i + 1) == Some(&b'\'') {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    let ch = text[i..].chars().next().expect("valid utf8");
                    s.push(ch);
                    i += ch.len_utf8();
                }
            }
            out.push((Tok::Str(s), start));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit()
            {
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                out.push((Tok::Float(text[start..i].parse().unwrap_or(0.0)), start));
            } else {
                out.push((Tok::Int(text[start..i].parse().unwrap_or(0)), start));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((Tok::Ident(text[start..i].to_owned()), start));
            continue;
        }
        let rest = &text[i..];
        let mut matched = false;
        for sym in ["<>", "<=", ">=", "=", "<", ">", "(", ")", ",", "*", "-"] {
            if rest.starts_with(sym) {
                out.push((
                    Tok::Sym(match sym {
                        "<>" => "<>",
                        "<=" => "<=",
                        ">=" => ">=",
                        "=" => "=",
                        "<" => "<",
                        ">" => ">",
                        "(" => "(",
                        ")" => ")",
                        "," => ",",
                        "*" => "*",
                        "-" => "-",
                        _ => unreachable!(),
                    }),
                    i,
                ));
                i += sym.len();
                matched = true;
                break;
            }
        }
        if !matched {
            // Skip unknown characters; the parser will report a sensible
            // error at the next expectation point.
            i += 1;
        }
    }
    out.push((Tok::Eof, text.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClassDef, OType};

    fn store() -> ObjectStore {
        let mut s = ObjectStore::new("codb");
        s.define_class(
            ClassDef::root("Research")
                .attr("name", OType::Text)
                .attr("funding", OType::Double)
                .attr("active", OType::Bool),
        )
        .unwrap();
        s.define_class(ClassDef::root("MedicalResearch").extends("Research"))
            .unwrap();
        s.create(
            "Research",
            [
                ("name".to_string(), OValue::from("QUT Research")),
                ("funding".to_string(), OValue::from(120_000.0)),
                ("active".to_string(), OValue::from(true)),
            ],
        )
        .unwrap();
        s.create(
            "MedicalResearch",
            [
                ("name".to_string(), OValue::from("RMIT Medical Research")),
                ("funding".to_string(), OValue::from(80_000.0)),
                ("active".to_string(), OValue::from(false)),
            ],
        )
        .unwrap();
        s
    }

    #[test]
    fn select_star_covers_subclass_extents() {
        let q = OqlQuery::parse("select * from Research").unwrap();
        let r = q.execute(&store()).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns, vec!["name", "funding", "active"]);
    }

    #[test]
    fn in_list_membership() {
        let q = OqlQuery::parse(
            "select funding from Research where name in ('QUT Research', 'Nowhere')",
        )
        .unwrap();
        let r = q.execute(&store()).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].1[0], OValue::from(120_000.0));
        // The list renders back into the plan's filter line.
        let plan = q.plan(&store()).unwrap();
        let text = plan.render().join("\n");
        assert!(
            text.contains("name IN ('QUT Research', 'Nowhere')"),
            "{text}"
        );
        // An empty IN list is a parse error, not an empty match.
        assert!(OqlQuery::parse("select * from Research where name in ()").is_err());
    }

    #[test]
    fn projection_and_filter() {
        let q = OqlQuery::parse("select name from Research where funding > 100000").unwrap();
        let r = q.execute(&store()).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].1[0].as_text(), Some("QUT Research"));
    }

    #[test]
    fn like_and_boolean_literals() {
        let q = OqlQuery::parse(
            "select name from Research where name like '%Medical%' and active = false",
        )
        .unwrap();
        let r = q.execute(&store()).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].1[0].as_text(), Some("RMIT Medical Research"));
    }

    #[test]
    fn or_not_parens() {
        let q = OqlQuery::parse(
            "select name from Research where (funding < 100000 or name = 'QUT Research') and not active = false",
        )
        .unwrap();
        let r = q.execute(&store()).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn is_null_checks() {
        let mut s = store();
        s.create(
            "Research",
            [("name".to_string(), OValue::from("NoFunding"))],
        )
        .unwrap();
        let q = OqlQuery::parse("select name from Research where funding is null").unwrap();
        let r = q.execute(&s).unwrap();
        assert_eq!(r.rows.len(), 1);
        let q2 = OqlQuery::parse("select name from Research where funding is not null").unwrap();
        assert_eq!(q2.execute(&s).unwrap().rows.len(), 2);
    }

    #[test]
    fn null_comparisons_filter_out() {
        let mut s = store();
        s.create(
            "Research",
            [("name".to_string(), OValue::from("NoFunding"))],
        )
        .unwrap();
        // funding > 0 is unknown for the null row → excluded.
        let q = OqlQuery::parse("select name from Research where funding > 0").unwrap();
        assert_eq!(q.execute(&s).unwrap().rows.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(OqlQuery::parse("select from X").is_err());
        assert!(OqlQuery::parse("select * from").is_err());
        assert!(OqlQuery::parse("select * from X where").is_err());
        assert!(OqlQuery::parse("select * from X where a ~ 3").is_err());
        assert!(OqlQuery::parse("select * from X trailing").is_err());
    }

    #[test]
    fn unknown_class_errors_at_execute() {
        let q = OqlQuery::parse("select * from Ghost").unwrap();
        assert!(matches!(q.execute(&store()), Err(OoError::NoSuchClass(_))));
    }

    #[test]
    fn negative_number_literals() {
        let q = OqlQuery::parse("select name from Research where funding > -1").unwrap();
        assert_eq!(q.execute(&store()).unwrap().rows.len(), 2);
    }
}

#[cfg(test)]
mod order_limit_tests {
    use super::*;
    use crate::model::{ClassDef, OType};

    fn funded() -> ObjectStore {
        let mut s = ObjectStore::new("x");
        s.define_class(
            ClassDef::root("G")
                .attr("name", OType::Text)
                .attr("amount", OType::Double),
        )
        .unwrap();
        for (n, a) in [("a", 30.0), ("b", 10.0), ("c", 20.0)] {
            s.create(
                "G",
                [
                    ("name".to_string(), OValue::from(n)),
                    ("amount".to_string(), OValue::Double(a)),
                ],
            )
            .unwrap();
        }
        // One row with a NULL sort key.
        s.create("G", [("name".to_string(), OValue::from("d"))])
            .unwrap();
        s
    }

    #[test]
    fn order_by_asc_nulls_first() {
        let q = OqlQuery::parse("select name from G order by amount").unwrap();
        let names: Vec<String> = q
            .execute(&funded())
            .unwrap()
            .rows
            .into_iter()
            .map(|(_, v)| v[0].to_string())
            .collect();
        assert_eq!(names, vec!["d", "b", "c", "a"]);
    }

    #[test]
    fn order_by_desc_with_limit() {
        let q = OqlQuery::parse("select name from G order by amount desc limit 2").unwrap();
        let names: Vec<String> = q
            .execute(&funded())
            .unwrap()
            .rows
            .into_iter()
            .map(|(_, v)| v[0].to_string())
            .collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn limit_without_order() {
        let q = OqlQuery::parse("select name from G limit 2").unwrap();
        assert_eq!(q.execute(&funded()).unwrap().rows.len(), 2);
    }

    #[test]
    fn order_by_parse_errors() {
        assert!(OqlQuery::parse("select * from G order amount").is_err());
        assert!(OqlQuery::parse("select * from G limit x").is_err());
    }

    #[test]
    fn explain_renders_the_executed_plan() {
        let s = funded();
        let q = OqlQuery::parse(
            "select name from G where amount > 15 and name like '%' order by amount desc limit 2",
        )
        .unwrap();
        let plan = q.plan(&s).unwrap();
        let text = plan.render().join("\n");
        assert!(text.contains("limit: 2"), "{text}");
        assert!(text.contains("sort: amount DESC"), "{text}");
        assert!(text.contains("project: name"), "{text}");
        assert!(
            text.contains("filter: (amount > 15 AND name LIKE '%')"),
            "{text}"
        );
        assert!(
            text.contains("extent scan G (4 objects, closure)"),
            "{text}"
        );
        assert_eq!(q.explain(&s).unwrap(), plan.render());

        let (_, m) = q.execute_with_metrics(&s).unwrap();
        assert_eq!(m.operators, plan.operator_names());
        assert_eq!(
            m.operators,
            vec!["extent scan", "filter", "project", "sort", "limit"]
        );
        assert_eq!(m.objects_scanned, 4);
        assert_eq!(m.objects_matched, 2);
        assert_eq!(m.rows_spilled, 2);
    }

    #[test]
    fn limit_without_order_stops_the_scan() {
        let s = funded();
        let q = OqlQuery::parse("select name from G limit 2").unwrap();
        let (r, m) = q.execute_with_metrics(&s).unwrap();
        assert_eq!(r.rows.len(), 2);
        // Pushdown: only the two delivered objects were loaded.
        assert_eq!(m.objects_scanned, 2);
    }
}
