//! The driver manager (the `java.sql.DriverManager` analog).

use crate::api::{Connection, Driver};
use crate::{ConnectError, ConnectResult};
use std::sync::Arc;
use webfindit_base::sync::RwLock;

/// Registry of drivers; connections are opened by URL, first driver that
/// accepts wins (JDBC semantics).
#[derive(Default)]
pub struct DriverManager {
    drivers: RwLock<Vec<Arc<dyn Driver>>>,
}

impl DriverManager {
    /// Create an empty manager.
    pub fn new() -> DriverManager {
        DriverManager::default()
    }

    /// Register a driver.
    pub fn register(&self, driver: Arc<dyn Driver>) {
        self.drivers.write().push(driver);
    }

    /// Names of registered drivers, in registration order.
    pub fn driver_names(&self) -> Vec<String> {
        self.drivers
            .read()
            .iter()
            .map(|d| d.name().to_owned())
            .collect()
    }

    /// Open a connection to `url`.
    pub fn get_connection(&self, url: &str) -> ConnectResult<Box<dyn Connection>> {
        for driver in self.drivers.read().iter() {
            if driver.accepts(url) {
                return driver.connect(url);
            }
        }
        Err(ConnectError::NoDriver(url.to_owned()))
    }
}

/// Build a manager with the full vendor complement used by the paper's
/// deployment, all resolving against `registry`.
pub fn standard_manager(registry: Arc<crate::registry::DataSourceRegistry>) -> DriverManager {
    use crate::drivers::{ObjectDriver, RelationalDriver};
    use webfindit_relstore::Dialect;

    let m = DriverManager::new();
    for dialect in [
        Dialect::Oracle,
        Dialect::MSql,
        Dialect::Db2,
        Dialect::Sybase,
    ] {
        m.register(Arc::new(RelationalDriver::new(
            dialect,
            Arc::clone(&registry),
        )));
    }
    m.register(Arc::new(ObjectDriver::ontos(Arc::clone(&registry))));
    m.register(Arc::new(ObjectDriver::objectstore(registry)));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DataSourceRegistry;
    use webfindit_relstore::{Database, Dialect};

    #[test]
    fn url_dispatch() {
        let reg = DataSourceRegistry::new();
        reg.register_relational("db2", "ATO", Database::new("ATO", Dialect::Db2));
        let m = standard_manager(Arc::clone(&reg));
        assert_eq!(m.driver_names().len(), 6);
        assert!(m.get_connection("jdbc:db2://h/ATO").is_ok());
        assert!(matches!(
            m.get_connection("jdbc:postgres://h/ATO"),
            Err(ConnectError::NoDriver(_))
        ));
        assert!(matches!(
            m.get_connection("not a url"),
            Err(ConnectError::NoDriver(_))
        ));
    }
}
