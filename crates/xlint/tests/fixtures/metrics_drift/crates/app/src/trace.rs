//! Fixture: the trace surfaces `hits` only.

pub struct Trace;

impl Trace {
    pub fn event(&self, m: &FooMetrics) {
        let _ = m.hits;
    }
}
