//! Deterministic synthetic federations for the scalability experiments.
//!
//! The generator builds a federation of `databases` sites partitioned
//! into topic-specific coalitions (the paper's premise: "databases are
//! developed with a specific purpose"), with a ring of service links
//! between consecutive coalitions plus optional random chords. Topics
//! are distinct strings (`topic_007`) so information-type matching is
//! exact, and everything is seeded, so experiment runs are reproducible
//! byte for byte.

use crate::federation::{Federation, SiteSpec, SiteVendor};
use crate::WfResult;
use std::sync::Arc;
use webfindit_base::rng::StdRng;
use webfindit_codb::{LinkEnd, ServiceLink};
use webfindit_relstore::{Database, Dialect};
use webfindit_wire::cdr::ByteOrder;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of databases (sites).
    pub databases: usize,
    /// Databases per coalition.
    pub coalition_size: usize,
    /// Number of ORB instances to spread sites across.
    pub orbs: usize,
    /// Extra random coalition-to-coalition links beyond the ring.
    pub extra_links: usize,
    /// Whether to create the ring of consecutive-coalition service
    /// links at all (disabled by the coalition-only ablation, E6).
    pub ring_links: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            databases: 16,
            coalition_size: 4,
            orbs: 3,
            extra_links: 0,
            ring_links: true,
            seed: 42,
        }
    }
}

/// A generated federation plus its ground-truth topology.
pub struct SynthFederation {
    /// The deployed federation.
    pub fed: Arc<Federation>,
    /// Site names, in creation order.
    pub sites: Vec<String>,
    /// `(coalition name, topic, member sites)` in creation order.
    pub coalitions: Vec<(String, String, Vec<String>)>,
    /// The service links created.
    pub links: Vec<ServiceLink>,
}

impl SynthFederation {
    /// The topic advertised by coalition `i`.
    pub fn topic(i: usize) -> String {
        format!("topic_{i:03}")
    }

    /// The coalition name for index `i`.
    pub fn coalition_name(i: usize) -> String {
        format!("Coalition_{i:03}")
    }

    /// A member site of coalition `i` (the first one).
    pub fn member_of(&self, i: usize) -> &str {
        &self.coalitions[i].2[0]
    }

    /// Number of coalitions.
    pub fn coalition_count(&self) -> usize {
        self.coalitions.len()
    }
}

/// Build a synthetic federation.
pub fn build(config: &SynthConfig) -> WfResult<SynthFederation> {
    assert!(config.databases > 0 && config.coalition_size > 0 && config.orbs > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let fed = Federation::new()?;

    // ORBs with alternating vendor flavors.
    let orb_names: Vec<String> = (0..config.orbs).map(|i| format!("ORB-{i}")).collect();
    for (i, name) in orb_names.iter().enumerate() {
        let order = if i % 2 == 0 {
            ByteOrder::BigEndian
        } else {
            ByteOrder::LittleEndian
        };
        fed.add_orb(name, &format!("orb{i}.synth.net"), 9100 + i as u16, order)?;
    }

    // Sites, each with a tiny relational database.
    let vendors = [
        Dialect::Oracle,
        Dialect::MSql,
        Dialect::Db2,
        Dialect::Sybase,
    ];
    let n_coalitions = config.databases.div_ceil(config.coalition_size);
    let mut sites = Vec::with_capacity(config.databases);
    for i in 0..config.databases {
        let name = format!("SynthDB_{i:04}");
        let coalition_idx = i / config.coalition_size;
        let dialect = vendors[i % vendors.len()];
        let mut db = Database::new(&name, dialect);
        db.execute("CREATE TABLE records (id INT PRIMARY KEY, payload TEXT)")
            .map_err(|e| crate::WebfinditError::Protocol(e.to_string()))?;
        for row in 0..4 {
            db.execute(&format!(
                "INSERT INTO records VALUES ({row}, 'payload-{i}-{row}')"
            ))
            .map_err(|e| crate::WebfinditError::Protocol(e.to_string()))?;
        }
        let spec = SiteSpec {
            name: name.clone(),
            orb: orb_names[i % orb_names.len()].clone(),
            vendor: SiteVendor::Relational(dialect),
            host: format!("synth{i}.net"),
            information_type: SynthFederation::topic(coalition_idx),
            documentation_url: format!("http://docs.synth.net/{name}"),
            interface: Vec::new(),
        };
        fed.add_relational_site(spec, db)?;
        sites.push(name);
    }

    // Coalitions: contiguous blocks, one topic each.
    let mut coalitions = Vec::with_capacity(n_coalitions);
    for c in 0..n_coalitions {
        let name = SynthFederation::coalition_name(c);
        let topic = SynthFederation::topic(c);
        let members: Vec<String> = sites
            .iter()
            .skip(c * config.coalition_size)
            .take(config.coalition_size)
            .cloned()
            .collect();
        let member_refs: Vec<&str> = members.iter().map(String::as_str).collect();
        fed.form_coalition(
            &name,
            None,
            &format!("information about {topic}"),
            &member_refs,
        )?;
        coalitions.push((name, topic, members));
    }

    // Service links: a ring plus random chords. Link descriptions name
    // the *target* coalition's topic, which is what makes multi-hop
    // discovery walk the ring.
    let mut links = Vec::new();
    if n_coalitions > 1 && config.ring_links {
        for c in 0..n_coalitions {
            let next = (c + 1) % n_coalitions;
            let link = ServiceLink {
                from: LinkEnd::Coalition(SynthFederation::coalition_name(c)),
                to: LinkEnd::Coalition(SynthFederation::coalition_name(next)),
                description: format!("shared access to {}", SynthFederation::topic(next)),
            };
            fed.add_service_link(&link)?;
            links.push(link);
        }
        for _ in 0..config.extra_links {
            let a = rng.gen_range(0..n_coalitions);
            let mut b = rng.gen_range(0..n_coalitions);
            if a == b {
                b = (b + 1) % n_coalitions;
            }
            let link = ServiceLink {
                from: LinkEnd::Coalition(SynthFederation::coalition_name(a)),
                to: LinkEnd::Coalition(SynthFederation::coalition_name(b)),
                description: format!("shared access to {}", SynthFederation::topic(b)),
            };
            if fed.add_service_link(&link).is_ok() {
                links.push(link);
            }
        }
    }

    Ok(SynthFederation {
        fed,
        sites,
        coalitions,
        links,
    })
}
