//! Query execution: scans, joins, grouping, sorting, projection.
//!
//! The executor is a straightforward pull-everything pipeline (tables are
//! in-memory, so vector-at-a-time materialization is the honest choice):
//!
//! 1. **FROM/JOIN** — base scan plus joins. Inner equi-joins on
//!    `a.x = b.y` use a hash join; everything else uses nested loops.
//!    `LEFT JOIN` pads unmatched left rows with NULLs.
//! 2. **WHERE** — three-valued filter; for single-table queries a
//!    top-level `col = literal` conjunct is served from an index when
//!    one exists.
//! 3. **GROUP BY / aggregates / HAVING** — hash grouping; aggregates are
//!    computed once per group and substituted into SELECT/HAVING/ORDER
//!    expressions.
//! 4. **DISTINCT**, **ORDER BY** (with NULLs-first total order),
//!    **LIMIT**, projection.

use crate::expr::{eval, AggFunc, BinOp, EvalContext, Expr};
use crate::sql::ast::{Join, JoinKind, SelectItem, SelectStmt};
use crate::storage::Table;
use crate::types::{Datum, Row};
use crate::{RelError, RelResult};
use std::collections::HashMap;

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Render as a fixed-width text table (used by examples and the
    /// figure-regeneration binaries; Figure 6 is exactly this view).
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|d| d.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("{} row(s)\n", self.rows.len()));
        out
    }
}

/// The table layout of a joined row: which bindings cover which column
/// ranges.
#[derive(Debug, Clone)]
struct Layout {
    /// `(binding, column names, start offset)` per FROM item.
    parts: Vec<(String, Vec<String>, usize)>,
    width: usize,
}

impl Layout {
    fn new() -> Layout {
        Layout {
            parts: Vec::new(),
            width: 0,
        }
    }

    fn push(&mut self, binding: String, columns: Vec<String>) {
        let start = self.width;
        self.width += columns.len();
        self.parts.push((binding, columns, start));
    }

    /// Resolve `table.name` or bare `name` to an absolute offset.
    fn resolve(&self, table: Option<&str>, name: &str) -> RelResult<usize> {
        let lname = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let lt = t.to_ascii_lowercase();
                let (_, cols, start) = self
                    .parts
                    .iter()
                    .find(|(b, _, _)| *b == lt)
                    .ok_or_else(|| RelError::NoSuchTable(lt.clone()))?;
                cols.iter()
                    .position(|c| *c == lname)
                    .map(|i| start + i)
                    .ok_or(RelError::NoSuchColumn(format!("{lt}.{lname}")))
            }
            None => {
                let mut found = None;
                for (b, cols, start) in &self.parts {
                    if let Some(i) = cols.iter().position(|c| *c == lname) {
                        if found.is_some() {
                            return Err(RelError::AmbiguousColumn(format!(
                                "{lname} (in {b} and another table)"
                            )));
                        }
                        found = Some(start + i);
                    }
                }
                found.ok_or(RelError::NoSuchColumn(lname))
            }
        }
    }
}

struct LayoutRow<'a> {
    layout: &'a Layout,
    row: &'a [Datum],
}

impl EvalContext for LayoutRow<'_> {
    fn resolve_column(&self, table: Option<&str>, name: &str) -> RelResult<Datum> {
        Ok(self.row[self.layout.resolve(table, name)?].clone())
    }
}

/// Group context: resolves columns from a representative row and
/// aggregates from the precomputed per-group table.
struct GroupRow<'a> {
    layout: &'a Layout,
    representative: &'a [Datum],
    aggregates: &'a [(Expr, Datum)],
}

impl EvalContext for GroupRow<'_> {
    fn resolve_column(&self, table: Option<&str>, name: &str) -> RelResult<Datum> {
        Ok(self.representative[self.layout.resolve(table, name)?].clone())
    }

    fn resolve_aggregate(&self, expr: &Expr) -> RelResult<Datum> {
        self.aggregates
            .iter()
            .find(|(e, _)| e == expr)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| RelError::AggregateMisuse("aggregate not precomputed".into()))
    }
}

/// Look up a table in the catalog map (names are lowercase).
fn table<'a>(tables: &'a HashMap<String, Table>, name: &str) -> RelResult<&'a Table> {
    let lower = name.to_ascii_lowercase();
    tables.get(&lower).ok_or(RelError::NoSuchTable(lower))
}

/// Split a conjunction into its AND-ed parts.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut v = conjuncts(left);
            v.extend(conjuncts(right));
            v
        }
        other => vec![other],
    }
}

/// If `expr` is `col = literal` (either side), return them.
fn eq_col_literal(expr: &Expr) -> Option<(&str, &Datum)> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = expr
    {
        match (&**left, &**right) {
            (Expr::Column { name, .. }, Expr::Literal(d)) => return Some((name, d)),
            (Expr::Literal(d), Expr::Column { name, .. }) => return Some((name, d)),
            _ => {}
        }
    }
    None
}

/// Execute a SELECT against the given tables.
pub fn execute_select(stmt: &SelectStmt, tables: &HashMap<String, Table>) -> RelResult<ResultSet> {
    // ---- FROM + JOIN -------------------------------------------------
    let base = table(tables, &stmt.from.name)?;
    let mut layout = Layout::new();
    layout.push(
        stmt.from.binding().to_ascii_lowercase(),
        base.schema.column_names(),
    );

    // Index-assisted base scan: single-table query with an indexable
    // equality conjunct.
    let mut rows: Vec<Row> = if stmt.joins.is_empty() {
        let mut indexed: Option<Vec<Row>> = None;
        if let Some(filter) = &stmt.filter {
            for c in conjuncts(filter) {
                if let Some((col, value)) = eq_col_literal(c) {
                    if let Some(ci) = base.schema.column_index(col) {
                        if let Some(slots) = base.index_lookup(ci, value) {
                            indexed = Some(
                                slots
                                    .into_iter()
                                    .filter_map(|s| base.row(s).cloned())
                                    .collect(),
                            );
                            break;
                        }
                    }
                }
            }
        }
        indexed.unwrap_or_else(|| base.scan().map(|(_, r)| r.clone()).collect())
    } else {
        base.scan().map(|(_, r)| r.clone()).collect()
    };

    for join in &stmt.joins {
        rows = apply_join(rows, &mut layout, join, tables)?;
    }

    // ---- WHERE --------------------------------------------------------
    if let Some(filter) = &stmt.filter {
        if filter.contains_aggregate() {
            return Err(RelError::AggregateMisuse(
                "aggregate in WHERE; use HAVING".into(),
            ));
        }
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = LayoutRow {
                layout: &layout,
                row: &row,
            };
            if matches!(eval(filter, &ctx)?, Datum::Bool(true)) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // ---- Grouping / projection ----------------------------------------
    let select_exprs = expand_items(&stmt.items, &layout)?;
    let has_aggregates = select_exprs.iter().any(|(e, _)| e.contains_aggregate())
        || stmt
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false)
        || stmt.order_by.iter().any(|k| k.expr.contains_aggregate());

    let columns: Vec<String> = select_exprs.iter().map(|(_, n)| n.clone()).collect();

    // Each produced row carries hidden sort keys after the visible columns.
    let mut produced: Vec<(Row, Vec<Datum>)> = Vec::new();

    if has_aggregates || !stmt.group_by.is_empty() {
        let groups = build_groups(&rows, &stmt.group_by, &layout)?;
        for group in groups {
            let aggregates = compute_aggregates(&group, &select_exprs, stmt, &layout)?;
            let representative: &[Datum] = group.first().map(|r| r.as_slice()).unwrap_or(&[]);
            // An empty representative only happens for zero-row ungrouped
            // aggregates; column references would error there, which is
            // the correct SQL behaviour for e.g. `SELECT x, COUNT(*)`.
            let dummy: Row;
            let rep = if representative.is_empty() {
                dummy = vec![Datum::Null; layout.width];
                &dummy[..]
            } else {
                representative
            };
            let ctx = GroupRow {
                layout: &layout,
                representative: rep,
                aggregates: &aggregates,
            };
            if let Some(having) = &stmt.having {
                if !matches!(eval(having, &ctx)?, Datum::Bool(true)) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(select_exprs.len());
            for (e, _) in &select_exprs {
                out.push(eval(e, &ctx)?);
            }
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for k in &stmt.order_by {
                keys.push(order_key_value(&k.expr, &ctx, &columns, &out)?);
            }
            produced.push((out, keys));
        }
    } else {
        for row in &rows {
            let ctx = LayoutRow {
                layout: &layout,
                row,
            };
            let mut out = Vec::with_capacity(select_exprs.len());
            for (e, _) in &select_exprs {
                out.push(eval(e, &ctx)?);
            }
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for k in &stmt.order_by {
                keys.push(order_key_value(&k.expr, &ctx, &columns, &out)?);
            }
            produced.push((out, keys));
        }
    }

    // ---- DISTINCT -------------------------------------------------------
    if stmt.distinct {
        let mut seen = std::collections::HashSet::new();
        produced.retain(|(row, _)| {
            let mut key = String::new();
            for d in row {
                d.group_key(&mut key);
            }
            seen.insert(key)
        });
    }

    // ---- ORDER BY -------------------------------------------------------
    if !stmt.order_by.is_empty() {
        let descs: Vec<bool> = stmt.order_by.iter().map(|k| k.desc).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = ka[i].sort_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // ---- LIMIT ----------------------------------------------------------
    if let Some(n) = stmt.limit {
        produced.truncate(n as usize);
    }

    Ok(ResultSet {
        columns,
        rows: produced.into_iter().map(|(r, _)| r).collect(),
    })
}

/// Describe the plan `execute_select` would run, without executing it.
///
/// The output mirrors the executor's actual decisions — index lookup vs
/// scan for the base table, hash vs nested-loop per join — because it
/// calls the same predicates (`eq_col_literal`, `equi_join_offsets`)
/// the executor uses.
pub fn explain_select(
    stmt: &SelectStmt,
    tables: &HashMap<String, Table>,
) -> RelResult<Vec<String>> {
    let base = table(tables, &stmt.from.name)?;
    let mut layout = Layout::new();
    layout.push(
        stmt.from.binding().to_ascii_lowercase(),
        base.schema.column_names(),
    );
    let mut plan = Vec::new();

    // Base access path.
    let mut base_access = format!(
        "scan {} ({} rows)",
        stmt.from.name.to_ascii_lowercase(),
        base.len()
    );
    if stmt.joins.is_empty() {
        if let Some(filter) = &stmt.filter {
            for c in conjuncts(filter) {
                if let Some((col, value)) = eq_col_literal(c) {
                    if let Some(ci) = base.schema.column_index(col) {
                        let lcol = col.to_ascii_lowercase();
                        if base.pk_columns() == [ci] {
                            base_access = format!(
                                "index lookup {}.{lcol} = {value} via PRIMARY KEY",
                                stmt.from.name.to_ascii_lowercase()
                            );
                            break;
                        }
                        if base.index_lookup(ci, value).is_some() {
                            base_access = format!(
                                "index lookup {}.{lcol} = {value} via secondary index",
                                stmt.from.name.to_ascii_lowercase()
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
    plan.push(base_access);

    for join in &stmt.joins {
        let right = table(tables, &join.table.name)?;
        let right_binding = join.table.binding().to_ascii_lowercase();
        match join.kind {
            JoinKind::Cross => {
                plan.push(format!(
                    "cross join {} ({} rows)",
                    join.table.name.to_ascii_lowercase(),
                    right.len()
                ));
            }
            JoinKind::Inner => {
                let on = join.on.as_ref().expect("inner join has ON");
                if equi_join_offsets(on, &layout, &right_binding, right).is_some() {
                    plan.push(format!(
                        "hash join {} on {} (build {} rows)",
                        join.table.name.to_ascii_lowercase(),
                        on.to_sql(),
                        right.len()
                    ));
                } else {
                    plan.push(format!(
                        "nested-loop inner join {} on {}",
                        join.table.name.to_ascii_lowercase(),
                        on.to_sql()
                    ));
                }
            }
            JoinKind::Left => {
                let on = join.on.as_ref().expect("left join has ON");
                plan.push(format!(
                    "nested-loop left join {} on {}",
                    join.table.name.to_ascii_lowercase(),
                    on.to_sql()
                ));
            }
        }
        layout.push(right_binding, right.schema.column_names());
    }

    if let Some(filter) = &stmt.filter {
        plan.push(format!("filter: {}", filter.to_sql()));
    }
    let select_exprs = expand_items(&stmt.items, &layout)?;
    let has_aggregates = select_exprs.iter().any(|(e, _)| e.contains_aggregate())
        || stmt
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false);
    if !stmt.group_by.is_empty() {
        let keys: Vec<String> = stmt.group_by.iter().map(Expr::to_sql).collect();
        plan.push(format!("hash group by: {}", keys.join(", ")));
    } else if has_aggregates {
        plan.push("aggregate over all rows".to_string());
    }
    if let Some(h) = &stmt.having {
        plan.push(format!("having: {}", h.to_sql()));
    }
    if stmt.distinct {
        plan.push("distinct".to_string());
    }
    if !stmt.order_by.is_empty() {
        let keys: Vec<String> = stmt
            .order_by
            .iter()
            .map(|k| {
                let mut s = k.expr.to_sql();
                if k.desc {
                    s.push_str(" DESC");
                }
                s
            })
            .collect();
        plan.push(format!("sort: {}", keys.join(", ")));
    }
    if let Some(n) = stmt.limit {
        plan.push(format!("limit: {n}"));
    }
    let names: Vec<String> = select_exprs.into_iter().map(|(_, n)| n).collect();
    plan.push(format!("project: {}", names.join(", ")));
    Ok(plan)
}

/// Evaluate an ORDER BY key: a bare column naming an output alias sorts
/// by the output column; otherwise the expression is evaluated in `ctx`.
fn order_key_value(
    expr: &Expr,
    ctx: &dyn EvalContext,
    columns: &[String],
    out_row: &[Datum],
) -> RelResult<Datum> {
    if let Expr::Column { table: None, name } = expr {
        if let Some(i) = columns.iter().position(|c| c == name) {
            return Ok(out_row[i].clone());
        }
    }
    eval(expr, ctx)
}

/// Expand the select list into `(expression, output name)` pairs.
fn expand_items(items: &[SelectItem], layout: &Layout) -> RelResult<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for (binding, cols, _) in &layout.parts {
                    for c in cols {
                        out.push((Expr::qcol(binding.clone(), c.clone()), c.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let lt = t.to_ascii_lowercase();
                let part = layout
                    .parts
                    .iter()
                    .find(|(b, _, _)| *b == lt)
                    .ok_or(RelError::NoSuchTable(lt.clone()))?;
                for c in &part.1 {
                    out.push((Expr::qcol(lt.clone(), c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.to_ascii_lowercase(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_sql().to_ascii_lowercase(),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

/// Attach one join step to the current row set.
fn apply_join(
    left_rows: Vec<Row>,
    layout: &mut Layout,
    join: &Join,
    tables: &HashMap<String, Table>,
) -> RelResult<Vec<Row>> {
    let right = table(tables, &join.table.name)?;
    let right_binding = join.table.binding().to_ascii_lowercase();
    let right_cols = right.schema.column_names();
    let right_width = right_cols.len();

    // Try the hash-join fast path for inner equi-joins.
    let equi = match (&join.kind, &join.on) {
        (JoinKind::Inner, Some(on)) => equi_join_offsets(on, layout, &right_binding, right),
        _ => None,
    };

    let old_layout = layout.clone();
    layout.push(right_binding.clone(), right_cols);

    let right_rows: Vec<&Row> = right.scan().map(|(_, r)| r).collect();

    let mut out = Vec::new();
    match join.kind {
        JoinKind::Cross => {
            for l in &left_rows {
                for r in &right_rows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
        }
        JoinKind::Inner => {
            if let Some((l_off, r_off)) = equi {
                // Hash join: build on the right side.
                let mut ht: HashMap<String, Vec<&Row>> = HashMap::new();
                for r in &right_rows {
                    if r[r_off].is_null() {
                        continue; // NULL never equi-matches
                    }
                    let mut key = String::new();
                    r[r_off].group_key(&mut key);
                    ht.entry(key).or_default().push(r);
                }
                for l in &left_rows {
                    if l[l_off].is_null() {
                        continue;
                    }
                    let mut key = String::new();
                    l[l_off].group_key(&mut key);
                    if let Some(matches) = ht.get(&key) {
                        for r in matches {
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            out.push(row);
                        }
                    }
                }
            } else {
                let on = join.on.as_ref().expect("inner join has ON");
                for l in &left_rows {
                    for r in &right_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        let ctx = LayoutRow { layout, row: &row };
                        if matches!(eval(on, &ctx)?, Datum::Bool(true)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        JoinKind::Left => {
            let on = join.on.as_ref().expect("left join has ON");
            for l in &left_rows {
                let mut matched = false;
                for r in &right_rows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    let ctx = LayoutRow { layout, row: &row };
                    if matches!(eval(on, &ctx)?, Datum::Bool(true)) {
                        matched = true;
                        out.push(row);
                    }
                }
                if !matched {
                    let mut row = l.clone();
                    row.extend(std::iter::repeat_n(Datum::Null, right_width));
                    out.push(row);
                }
            }
        }
    }
    let _ = old_layout; // layout already updated
    Ok(out)
}

/// If `on` is `left_col = right_col` with one side in the existing layout
/// and the other in the newly joined table, return their offsets
/// (`left_offset`, `right_column_index`).
fn equi_join_offsets(
    on: &Expr,
    layout: &Layout,
    right_binding: &str,
    right: &Table,
) -> Option<(usize, usize)> {
    let (a, b) = match on {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => (&**left, &**right),
        _ => return None,
    };
    let classify = |e: &Expr| -> Option<(Option<String>, String)> {
        match e {
            Expr::Column { table, name } => Some((table.clone(), name.clone())),
            _ => None,
        }
    };
    let (at, an) = classify(a)?;
    let (bt, bn) = classify(b)?;
    let right_col = |t: &Option<String>, n: &str| -> Option<usize> {
        match t {
            Some(t) if t == right_binding => right.schema.column_index(n),
            Some(_) => None,
            None => right.schema.column_index(n),
        }
    };
    let left_off =
        |t: &Option<String>, n: &str| -> Option<usize> { layout.resolve(t.as_deref(), n).ok() };
    // a on left, b on right?
    if let (Some(lo), Some(rc)) = (left_off(&at, &an), right_col(&bt, &bn)) {
        // ensure b genuinely refers to the right table when unqualified:
        // prefer the right side interpretation only if the left layout
        // cannot resolve it unambiguously as well.
        if bt.as_deref() == Some(right_binding) || left_off(&bt, &bn).is_none() {
            return Some((lo, rc));
        }
    }
    if let (Some(lo), Some(rc)) = (left_off(&bt, &bn), right_col(&at, &an)) {
        if at.as_deref() == Some(right_binding) || left_off(&at, &an).is_none() {
            return Some((lo, rc));
        }
    }
    None
}

/// Partition rows into groups by the GROUP BY keys (one all-encompassing
/// group when the key list is empty).
fn build_groups(rows: &[Row], group_by: &[Expr], layout: &Layout) -> RelResult<Vec<Vec<Row>>> {
    if group_by.is_empty() {
        return Ok(vec![rows.to_vec()]);
    }
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<Row>> = HashMap::new();
    for row in rows {
        let ctx = LayoutRow { layout, row };
        let mut key = String::new();
        for g in group_by {
            eval(g, &ctx)?.group_key(&mut key);
        }
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row.clone());
    }
    Ok(order
        .into_iter()
        .map(|k| groups.remove(&k).expect("key present"))
        .collect())
}

/// Compute every aggregate appearing in SELECT, HAVING, or ORDER BY for
/// one group.
fn compute_aggregates(
    group: &[Row],
    select_exprs: &[(Expr, String)],
    stmt: &SelectStmt,
    layout: &Layout,
) -> RelResult<Vec<(Expr, Datum)>> {
    let mut agg_exprs: Vec<&Expr> = Vec::new();
    for (e, _) in select_exprs {
        e.collect_aggregates(&mut agg_exprs);
    }
    if let Some(h) = &stmt.having {
        h.collect_aggregates(&mut agg_exprs);
    }
    for k in &stmt.order_by {
        k.expr.collect_aggregates(&mut agg_exprs);
    }

    let mut out = Vec::with_capacity(agg_exprs.len());
    for agg in agg_exprs {
        let (func, arg, distinct) = match agg {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => (*func, arg.as_deref(), *distinct),
            _ => unreachable!("collect_aggregates returns aggregates"),
        };
        let value = run_aggregate(func, arg, distinct, group, layout)?;
        out.push((agg.clone(), value));
    }
    Ok(out)
}

fn run_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    group: &[Row],
    layout: &Layout,
) -> RelResult<Datum> {
    // Gather the non-null argument values (COUNT(*) counts rows directly).
    let mut values: Vec<Datum> = Vec::new();
    match arg {
        None => {
            return Ok(Datum::Int(group.len() as i64));
        }
        Some(a) => {
            if a.contains_aggregate() {
                return Err(RelError::AggregateMisuse("nested aggregate".into()));
            }
            for row in group {
                let ctx = LayoutRow { layout, row };
                let v = eval(a, &ctx)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| {
            let mut k = String::new();
            v.group_key(&mut k);
            seen.insert(k)
        });
    }
    Ok(match func {
        AggFunc::Count => Datum::Int(values.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                Datum::Null
            } else {
                let mut all_int = true;
                let mut sum = 0f64;
                let mut isum = 0i64;
                for v in &values {
                    match v {
                        Datum::Int(i) => {
                            isum = isum.wrapping_add(*i);
                            sum += *i as f64;
                        }
                        Datum::Double(d) => {
                            all_int = false;
                            sum += d;
                        }
                        other => {
                            return Err(RelError::TypeMismatch {
                                expected: "numeric aggregate input".into(),
                                found: format!("{other}"),
                            })
                        }
                    }
                }
                if func == AggFunc::Sum {
                    if all_int {
                        Datum::Int(isum)
                    } else {
                        Datum::Double(sum)
                    }
                } else {
                    Datum::Double(sum / values.len() as f64)
                }
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Datum> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Datum::Null)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::sql::ast::Statement;
    use crate::sql::parse_statement;
    use crate::types::DataType;

    fn catalog() -> HashMap<String, Table> {
        let mut patient = Table::new(TableSchema::new(
            "patient",
            vec![
                Column::new("patient_id", DataType::Int).primary_key(),
                Column::new("name", DataType::Text),
                Column::new("gender", DataType::Text),
            ],
        ));
        for (id, name, g) in [
            (1, "Alice", "F"),
            (2, "Bob", "M"),
            (3, "Carol", "F"),
            (4, "Dan", "M"),
        ] {
            patient
                .insert(vec![
                    Datum::Int(id),
                    Datum::Text(name.into()),
                    Datum::Text(g.into()),
                ])
                .unwrap();
        }

        let mut history = Table::new(TableSchema::new(
            "history",
            vec![
                Column::new("patient_id", DataType::Int),
                Column::new("description", DataType::Text),
                Column::new("cost", DataType::Double),
            ],
        ));
        for (pid, desc, cost) in [
            (1, "flu", 100.0),
            (1, "checkup", 50.0),
            (2, "fracture", 900.0),
            (3, "flu", 120.0),
        ] {
            history
                .insert(vec![
                    Datum::Int(pid),
                    Datum::Text(desc.into()),
                    Datum::Double(cost),
                ])
                .unwrap();
        }

        let mut m = HashMap::new();
        m.insert("patient".to_string(), patient);
        m.insert("history".to_string(), history);
        m
    }

    fn run(sql: &str) -> ResultSet {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => execute_select(&s, &catalog()).unwrap(),
            other => panic!("not a select: {other:?}"),
        }
    }

    fn run_err(sql: &str) -> RelError {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => execute_select(&s, &catalog()).unwrap_err(),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let rs = run("SELECT * FROM patient");
        assert_eq!(rs.columns, vec!["patient_id", "name", "gender"]);
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn where_filter_and_projection() {
        let rs = run("SELECT name FROM patient WHERE gender = 'F' ORDER BY name");
        assert_eq!(
            rs.rows,
            vec![
                vec![Datum::Text("Alice".into())],
                vec![Datum::Text("Carol".into())]
            ]
        );
    }

    #[test]
    fn index_lookup_path_gives_same_answer() {
        // patient_id is the PK; the executor should use the index.
        let rs = run("SELECT name FROM patient WHERE patient_id = 3");
        assert_eq!(rs.rows, vec![vec![Datum::Text("Carol".into())]]);
        // Equality that matches nothing.
        let rs = run("SELECT name FROM patient WHERE patient_id = 99");
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn inner_join_hash_path() {
        let rs = run("SELECT p.name, h.description FROM patient p \
             JOIN history h ON p.patient_id = h.patient_id ORDER BY p.name, h.description");
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.rows[0][0], Datum::Text("Alice".into()));
    }

    #[test]
    fn left_join_pads_nulls() {
        let rs = run("SELECT p.name, h.description FROM patient p \
             LEFT JOIN history h ON p.patient_id = h.patient_id \
             WHERE h.description IS NULL");
        assert_eq!(rs.rows, vec![vec![Datum::Text("Dan".into()), Datum::Null]]);
    }

    #[test]
    fn cross_join_cardinality() {
        let rs = run("SELECT * FROM patient a, patient b");
        assert_eq!(rs.rows.len(), 16);
    }

    #[test]
    fn group_by_with_aggregates_and_having() {
        let rs = run(
            "SELECT p.name, COUNT(*) n, SUM(h.cost) total FROM patient p \
             JOIN history h ON p.patient_id = h.patient_id \
             GROUP BY p.name HAVING COUNT(*) >= 2",
        );
        assert_eq!(rs.columns, vec!["name", "n", "total"]);
        assert_eq!(
            rs.rows,
            vec![vec![
                Datum::Text("Alice".into()),
                Datum::Int(2),
                Datum::Double(150.0)
            ]]
        );
    }

    #[test]
    fn ungrouped_aggregates_over_empty_input() {
        let rs = run("SELECT COUNT(*), SUM(cost), MIN(cost) FROM history WHERE cost > 10000");
        assert_eq!(rs.rows, vec![vec![Datum::Int(0), Datum::Null, Datum::Null]]);
    }

    #[test]
    fn avg_min_max() {
        let rs = run("SELECT AVG(cost), MIN(cost), MAX(cost) FROM history");
        assert_eq!(
            rs.rows,
            vec![vec![
                Datum::Double(292.5),
                Datum::Double(50.0),
                Datum::Double(900.0)
            ]]
        );
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT description) FROM history");
        assert_eq!(rs.rows, vec![vec![Datum::Int(3)]]);
    }

    #[test]
    fn distinct_rows() {
        let rs = run("SELECT DISTINCT gender FROM patient ORDER BY gender");
        assert_eq!(
            rs.rows,
            vec![vec![Datum::Text("F".into())], vec![Datum::Text("M".into())]]
        );
    }

    #[test]
    fn order_by_desc_and_alias_and_limit() {
        let rs = run("SELECT name, patient_id pid FROM patient ORDER BY pid DESC LIMIT 2");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], Datum::Int(4));
        assert_eq!(rs.rows[1][1], Datum::Int(3));
    }

    #[test]
    fn order_by_aggregate() {
        let rs = run(
            "SELECT patient_id, COUNT(*) FROM history GROUP BY patient_id \
             ORDER BY COUNT(*) DESC, patient_id LIMIT 1",
        );
        assert_eq!(rs.rows, vec![vec![Datum::Int(1), Datum::Int(2)]]);
    }

    #[test]
    fn ambiguous_column_detected() {
        assert!(matches!(
            run_err(
                "SELECT patient_id FROM patient p JOIN history h ON p.patient_id = h.patient_id"
            ),
            RelError::AmbiguousColumn(_)
        ));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(matches!(
            run_err("SELECT * FROM history WHERE COUNT(*) > 1"),
            RelError::AggregateMisuse(_)
        ));
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(
            run_err("SELECT * FROM ghosts"),
            RelError::NoSuchTable(_)
        ));
        assert!(matches!(
            run_err("SELECT nope FROM patient"),
            RelError::NoSuchColumn(_)
        ));
    }

    #[test]
    fn expression_projection_names() {
        let rs = run("SELECT cost * 2 FROM history LIMIT 1");
        assert_eq!(rs.columns, vec!["(cost * 2)"]);
    }

    #[test]
    fn text_table_rendering() {
        let rs = run("SELECT name FROM patient WHERE patient_id = 1");
        let text = rs.to_text_table();
        assert!(text.contains("| name"));
        assert!(text.contains("| Alice"));
        assert!(text.contains("1 row(s)"));
    }

    #[test]
    fn qualified_wildcard() {
        let rs =
            run("SELECT h.* FROM patient p JOIN history h ON p.patient_id = h.patient_id LIMIT 1");
        assert_eq!(rs.columns, vec!["patient_id", "description", "cost"]);
    }
}
