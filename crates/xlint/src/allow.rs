//! The `xlint.toml` allowlist: `rule path "snippet" [via "step"] why`.
//!
//! An entry suppresses one finding when the rule matches, the finding's
//! file ends with `path`, and the finding's anchor source line contains
//! `snippet`. The optional `via "step"` clause additionally requires
//! the finding to carry a witness path with a step whose rendered form
//! (`Qualified (file:line)`) contains the step text — so an allowlisted
//! interprocedural finding is pinned to the *path* that justified it,
//! not just the site.
//!
//! Entries that suppress nothing fail the run (exit 2) with a
//! diagnosis: plain stale (nothing at that site), wrong rule (the site
//! has a finding under a different rule), or witness mismatch (rule and
//! site match but the via-step is not on the finding's witness path).

use crate::report::Finding;
use std::cell::Cell;

#[derive(Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub snippet: String,
    pub via: Option<String>,
    pub justification: String,
    pub line: usize,
    pub used: Cell<bool>,
}

impl AllowEntry {
    /// Does this entry suppress `finding` (whose anchor source text is
    /// `source_line`)?
    pub fn matches(&self, finding: &Finding, source_line: &str) -> bool {
        self.site_matches(finding, source_line)
            && self.rule == finding.rule
            && self.via_matches(finding)
    }

    /// Path + snippet match, ignoring rule and witness.
    pub fn site_matches(&self, finding: &Finding, source_line: &str) -> bool {
        finding.file.to_string_lossy().ends_with(&self.path) && source_line.contains(&self.snippet)
    }

    pub fn via_matches(&self, finding: &Finding) -> bool {
        match &self.via {
            None => true,
            Some(step) => finding.witness.iter().any(|s| s.to_string().contains(step)),
        }
    }
}

pub fn parse_allowlist_text(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (rule, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
            format!(
                "xlint.toml:{}: expected `rule path \"snippet\" [via \"step\"] why`",
                idx + 1
            )
        })?;
        let (file, rest) = rest
            .trim_start()
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("xlint.toml:{}: missing snippet", idx + 1))?;
        let rest = rest.trim_start();
        let (snippet, rest) = rest
            .strip_prefix('"')
            .and_then(|r| r.split_once('"'))
            .ok_or_else(|| format!("xlint.toml:{}: snippet must be double-quoted", idx + 1))?;
        let rest = rest.trim_start();
        let (via, rest) = match rest.strip_prefix("via ") {
            Some(after) => {
                let (step, tail) = after
                    .trim_start()
                    .strip_prefix('"')
                    .and_then(|r| r.split_once('"'))
                    .ok_or_else(|| {
                        format!("xlint.toml:{}: via step must be double-quoted", idx + 1)
                    })?;
                (Some(step.to_owned()), tail)
            }
            None => (None, rest),
        };
        let justification = rest.trim();
        if justification.is_empty() {
            return Err(format!(
                "xlint.toml:{}: every allowed site needs a justification",
                idx + 1
            ));
        }
        entries.push(AllowEntry {
            rule: rule.to_owned(),
            path: file.to_owned(),
            snippet: snippet.to_owned(),
            via,
            justification: justification.to_owned(),
            line: idx + 1,
            used: Cell::new(false),
        });
    }
    Ok(entries)
}

/// Why an allowlist entry failed to suppress anything.
#[derive(Debug, PartialEq, Eq)]
pub enum AllowIssue {
    /// Nothing at that site at all.
    Stale { line: usize, detail: String },
    /// The site has a finding, but under a different rule.
    WrongRule {
        line: usize,
        detail: String,
        actual: String,
    },
    /// Rule and site match, but the via-step is not on the witness path.
    WitnessMismatch { line: usize, detail: String },
}

impl AllowIssue {
    pub fn line(&self) -> usize {
        match self {
            AllowIssue::Stale { line, .. }
            | AllowIssue::WrongRule { line, .. }
            | AllowIssue::WitnessMismatch { line, .. } => *line,
        }
    }

    pub fn render(&self) -> String {
        match self {
            AllowIssue::Stale { line, detail } => format!(
                "xlint.toml:{line}: stale allowlist entry ({detail}) matches nothing — remove it"
            ),
            AllowIssue::WrongRule {
                line,
                detail,
                actual,
            } => format!(
                "xlint.toml:{line}: allowlist entry ({detail}) names the wrong rule — \
                 the finding at that site is `{actual}`; fix the rule name"
            ),
            AllowIssue::WitnessMismatch { line, detail } => format!(
                "xlint.toml:{line}: allowlist entry ({detail}) has a witness clause that \
                 matches no step on the finding's witness path — update the `via` step"
            ),
        }
    }
}

/// Classify every unused entry against the full finding set.
pub fn classify_unused(entries: &[AllowEntry], findings: &[(Finding, String)]) -> Vec<AllowIssue> {
    let mut issues = Vec::new();
    for entry in entries {
        if entry.used.get() {
            continue;
        }
        let detail = format!("{} {} \"{}\"", entry.rule, entry.path, entry.snippet);
        let site_hits: Vec<&Finding> = findings
            .iter()
            .filter(|(f, src)| entry.site_matches(f, src))
            .map(|(f, _)| f)
            .collect();
        if site_hits.is_empty() {
            issues.push(AllowIssue::Stale {
                line: entry.line,
                detail,
            });
            continue;
        }
        if let Some(f) = site_hits.iter().find(|f| f.rule == entry.rule) {
            // Rule and site match — the via clause must be what failed.
            debug_assert!(!entry.via_matches(f) || entry.used.get());
            issues.push(AllowIssue::WitnessMismatch {
                line: entry.line,
                detail,
            });
        } else {
            issues.push(AllowIssue::WrongRule {
                line: entry.line,
                detail,
                actual: site_hits[0].rule.to_owned(),
            });
        }
    }
    issues
}
