//! Property tests for the planned, pipelined executor.
//!
//! Two contracts from the query-engine refactor:
//!
//! 1. **Result equivalence** — over generated schemas, data, and
//!    queries, the cost-informed planner + pipelined executor must
//!    produce the same results as the retained naive reference
//!    executor (`Database::query_naive`): exact sequences when the
//!    query orders by a unique key, multisets otherwise, and for
//!    `LIMIT` a correctly-sized subset of the unlimited result.
//! 2. **EXPLAIN consistency** — the rendered `EXPLAIN` output comes
//!    from the same [`PhysicalPlan`] the executor runs, so the
//!    operators named in the plan are exactly the operators
//!    [`ExecMetrics`] says executed.

use webfindit_base::prop::{cases, pick};
use webfindit_base::rng::StdRng;
use webfindit_relstore::sql::{parse_statement, Statement};
use webfindit_relstore::{plan_select, Database, Datum, Dialect};

const WORDS: [&str; 5] = ["ward", "icu", "lab", "er", "hospice"];

/// A fresh two-table database with `n1`/`n2` generated rows.
///
/// `t1(id pk, a indexed, b, c)` and `t2(id pk, t1_id indexed, d)`;
/// every non-key column is nullable and NULLs are generated, so the
/// properties exercise three-valued logic, NULL grouping, and the
/// rule that NULL never equi-joins.
fn gen_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new("prop", Dialect::Canonical);
    db.execute("CREATE TABLE t1 (id INT PRIMARY KEY, a INT, b TEXT, c DOUBLE)")
        .unwrap();
    db.execute("CREATE INDEX t1_a ON t1 (a)").unwrap();
    db.execute("CREATE TABLE t2 (id INT PRIMARY KEY, t1_id INT, d TEXT)")
        .unwrap();
    db.execute("CREATE INDEX t2_t1 ON t2 (t1_id)").unwrap();

    let n1 = rng.gen_range(0..40usize);
    for id in 0..n1 {
        let a = if rng.gen_bool(0.15) {
            "NULL".to_owned()
        } else {
            rng.gen_range(0..10usize).to_string()
        };
        let b = if rng.gen_bool(0.15) {
            "NULL".to_owned()
        } else {
            format!("'{}'", pick(rng, &WORDS))
        };
        let c = if rng.gen_bool(0.15) {
            "NULL".to_owned()
        } else {
            format!(
                "{}.{}",
                rng.gen_range(0..100usize),
                rng.gen_range(0..10usize)
            )
        };
        db.execute(&format!("INSERT INTO t1 VALUES ({id}, {a}, {b}, {c})"))
            .unwrap();
    }
    let n2 = rng.gen_range(0..40usize);
    for id in 0..n2 {
        let fk = if rng.gen_bool(0.15) {
            "NULL".to_owned()
        } else {
            rng.gen_range(0..40usize).to_string()
        };
        let d = format!("'{}'", pick(rng, &WORDS));
        db.execute(&format!("INSERT INTO t2 VALUES ({id}, {fk}, {d})"))
            .unwrap();
    }
    db
}

/// A random predicate over `t1` columns (optionally qualified).
fn gen_pred(rng: &mut StdRng, qualify: bool) -> String {
    let q = if qualify { "t1." } else { "" };
    let k = rng.gen_range(0..10usize);
    let v = rng.gen_range(0..40usize);
    let w = pick(rng, &WORDS);
    let atoms = [
        format!("{q}a = {k}"),
        format!("{q}a > {k}"),
        format!("{q}a <= {k}"),
        format!("{q}id BETWEEN {} AND {}", v.min(20), v.min(20) + 10),
        format!("{q}id >= {v}"),
        format!("{q}b = '{w}'"),
        format!("{q}c >= {k}0.5"),
        format!("{q}b IS NULL"),
    ];
    match rng.gen_range(0..4usize) {
        0 => format!("{} AND {}", pick(rng, &atoms), pick(rng, &atoms)),
        1 => format!("{} OR {}", pick(rng, &atoms), pick(rng, &atoms)),
        _ => pick(rng, &atoms).clone(),
    }
}

/// A generated query: the SQL, whether its output order is fully
/// determined (ORDER BY over a unique key), and the LIMIT if any.
struct GenQuery {
    sql: String,
    ordered: bool,
    limit: Option<usize>,
}

fn gen_query(rng: &mut StdRng) -> GenQuery {
    match rng.gen_range(0..4usize) {
        // Single-table scan/filter, optional DISTINCT / ORDER BY id / LIMIT.
        0 => {
            let distinct = if rng.gen_bool(0.3) { "DISTINCT " } else { "" };
            let cols = if distinct.is_empty() {
                "id, a, b, c"
            } else {
                "a, b"
            };
            let mut sql = format!("SELECT {distinct}{cols} FROM t1");
            if rng.gen_bool(0.8) {
                sql.push_str(&format!(" WHERE {}", gen_pred(rng, false)));
            }
            // A unique order key only exists when id is projected.
            let ordered = distinct.is_empty() && rng.gen_bool(0.5);
            if ordered {
                sql.push_str(" ORDER BY id");
            }
            let limit = rng.gen_bool(0.4).then(|| rng.gen_range(1..8usize));
            if let Some(n) = limit {
                sql.push_str(&format!(" LIMIT {n}"));
            }
            GenQuery {
                sql,
                ordered,
                limit,
            }
        }
        // Aggregation over t1.
        1 => {
            let having = if rng.gen_bool(0.4) {
                " HAVING COUNT(*) > 1"
            } else {
                ""
            };
            let ordered = rng.gen_bool(0.5);
            let order = if ordered { " ORDER BY a" } else { "" };
            let mut sql = format!(
                "SELECT a, COUNT(*) n, SUM(c) s, MIN(id) lo FROM t1{} GROUP BY a{having}{order}",
                if rng.gen_bool(0.5) {
                    format!(" WHERE {}", gen_pred(rng, false))
                } else {
                    String::new()
                }
            );
            let limit = rng.gen_bool(0.3).then(|| rng.gen_range(1..5usize));
            if let Some(n) = limit {
                sql.push_str(&format!(" LIMIT {n}"));
            }
            GenQuery {
                sql,
                ordered,
                limit,
            }
        }
        // Equi-join on the indexed foreign key (inner or left).
        2 => {
            let kind = if rng.gen_bool(0.5) {
                "JOIN"
            } else {
                "LEFT JOIN"
            };
            let mut sql = format!("SELECT t1.id, t1.b, t2.d FROM t1 {kind} t2 ON t1.id = t2.t1_id");
            if rng.gen_bool(0.6) {
                sql.push_str(&format!(" WHERE {}", gen_pred(rng, true)));
            }
            let limit = rng.gen_bool(0.3).then(|| rng.gen_range(1..8usize));
            if let Some(n) = limit {
                sql.push_str(&format!(" LIMIT {n}"));
            }
            GenQuery {
                sql,
                ordered: false,
                limit,
            }
        }
        // Join + aggregate.
        _ => {
            let ordered = rng.gen_bool(0.5);
            let order = if ordered { " ORDER BY t2.d" } else { "" };
            let sql = format!(
                "SELECT t2.d, COUNT(*) n FROM t1 JOIN t2 ON t1.id = t2.t1_id \
                 GROUP BY t2.d{order}"
            );
            // t2.d has duplicates across groups? No — GROUP BY t2.d makes
            // each output row's key unique, so ORDER BY t2.d is total.
            GenQuery {
                sql,
                ordered,
                limit: None,
            }
        }
    }
}

/// Canonical text form of a row, NULL-safe, for multiset comparison.
fn canon(row: &[Datum]) -> String {
    let parts: Vec<String> = row.iter().map(|d| format!("{d:?}")).collect();
    parts.join("|")
}

fn multiset(rows: &[Vec<Datum>]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| canon(r)).collect();
    v.sort();
    v
}

#[test]
fn planned_executor_matches_the_naive_reference() {
    cases(60, |rng| {
        let mut db = gen_db(rng);
        for _ in 0..4 {
            let q = gen_query(rng);
            let planned = db
                .execute(&q.sql)
                .unwrap_or_else(|e| panic!("planned {}: {e}", q.sql))
                .rows()
                .unwrap_or_else(|| panic!("{}: expected rows", q.sql))
                .clone();
            let naive = db
                .query_naive(&q.sql)
                .unwrap_or_else(|e| panic!("naive {}: {e}", q.sql));
            assert_eq!(planned.columns, naive.columns, "columns for {}", q.sql);
            match (q.limit, q.ordered) {
                // LIMIT without a total order: both executors may keep
                // different rows. The planned result must be the right
                // size and a sub-multiset of the unlimited result.
                (Some(_), false) => {
                    assert_eq!(planned.rows.len(), naive.rows.len(), "{}", q.sql);
                    let unlimited = q.sql[..q.sql.rfind(" LIMIT").unwrap()].to_owned();
                    let full = multiset(&db.query_naive(&unlimited).unwrap().rows);
                    for row in &planned.rows {
                        assert!(
                            full.contains(&canon(row)),
                            "{}: row {:?} not in unlimited result",
                            q.sql,
                            row
                        );
                    }
                }
                // A total order: exact sequence equality.
                (_, true) => {
                    assert_eq!(planned.rows, naive.rows, "{}", q.sql);
                }
                // No order: multiset equality.
                (None, false) => {
                    assert_eq!(multiset(&planned.rows), multiset(&naive.rows), "{}", q.sql);
                }
            }
        }
    });
}

/// Build a small fixed database whose queries exercise every physical
/// operator at least once.
fn fixed_db() -> Database {
    let mut db = Database::new("fixed", Dialect::Canonical);
    db.execute("CREATE TABLE t1 (id INT PRIMARY KEY, a INT, b TEXT, c DOUBLE)")
        .unwrap();
    db.execute("CREATE INDEX t1_a ON t1 (a)").unwrap();
    db.execute("CREATE TABLE t2 (id INT PRIMARY KEY, t1_id INT, d TEXT)")
        .unwrap();
    db.execute("CREATE INDEX t2_t1 ON t2 (t1_id)").unwrap();
    db.execute(
        "INSERT INTO t1 VALUES (0, 1, 'ward', 1.5), (1, 1, 'icu', 2.5), \
         (2, 2, 'lab', NULL), (3, NULL, 'er', 4.0), (4, 3, 'ward', 0.5)",
    )
    .unwrap();
    db.execute("INSERT INTO t2 VALUES (0, 1, 'x'), (1, 1, 'y'), (2, 3, 'x'), (3, NULL, 'z')")
        .unwrap();
    db
}

#[test]
fn explain_names_the_operators_that_ran() {
    let mut db = fixed_db();
    // One query per plan shape; together they cover every operator:
    // seq scan, index scan (point and range), filter, nested-loop join,
    // hash join, index join, hash aggregate, project, distinct, sort,
    // limit.
    let queries = [
        "SELECT id, b FROM t1",
        "SELECT id FROM t1 WHERE id = 2",
        "SELECT id FROM t1 WHERE a > 1 AND b = 'ward'",
        "SELECT id, b FROM t1 WHERE id BETWEEN 1 AND 3",
        "SELECT t1.b, t2.d FROM t1 JOIN t2 ON t1.id = t2.t1_id",
        "SELECT t1.b, t2.d FROM t1 LEFT JOIN t2 ON t1.id = t2.t1_id WHERE t1.a = 1",
        "SELECT t1.b, t2.d FROM t1, t2 LIMIT 3",
        "SELECT a, COUNT(*) n FROM t1 GROUP BY a HAVING COUNT(*) > 1 ORDER BY n DESC",
        "SELECT DISTINCT b FROM t1 ORDER BY b LIMIT 2",
    ];
    for sql in queries {
        let stmt = parse_statement(sql).unwrap();
        let Statement::Select(select) = stmt else {
            panic!("{sql}: expected SELECT");
        };
        // Plan once against the live catalog; take the operator list
        // and rendering the planner would hand to EXPLAIN.
        let (expected_ops, rendered) = {
            let plan = plan_select(&select, db.tables()).unwrap();
            (plan.operator_names(), plan.render())
        };

        // Execute: metrics must list exactly the planned operators.
        db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let ran = db.last_exec_metrics().expect("metrics after SELECT");
        assert_eq!(ran.operators, expected_ops, "operators for {sql}");

        // EXPLAIN must render that same plan, line for line.
        let explained = db
            .execute(&format!("EXPLAIN {sql}"))
            .unwrap()
            .rows()
            .expect("EXPLAIN rows")
            .clone();
        let lines: Vec<String> = explained
            .rows
            .iter()
            .map(|r| match &r[0] {
                Datum::Text(t) => t.clone(),
                other => panic!("EXPLAIN row {other:?}"),
            })
            .collect();
        assert_eq!(lines, rendered, "EXPLAIN text for {sql}");
    }
}
