//! The incremental discovery algorithm of §2.
//!
//! "Initially, the user specifies the query in terms of relevant
//! information […] The query is sent to a local metadata repository […]
//! If the local metadata repository fails to resolve the user's query,
//! using the information on clusters' inter-relationships, the local
//! repository sends the query to one or more remote metadata
//! repositories."
//!
//! [`DiscoveryEngine::find`] implements that as a breadth-first search
//! over co-databases:
//!
//! * **Level 0** — the local co-database (a local lookup; the user is a
//!   user of a participating database, so this costs no network).
//! * **Level k ≥ 1** — remote co-databases reached through the previous
//!   level's inter-relationships: coalition peers (other members of the
//!   coalitions known there) and service-link endpoints. Each remote
//!   probe is a naming lookup plus GIOP invocations, all counted in
//!   [`DiscoveryStats`].
//!
//! The search stops at the first level that produces leads (all leads
//! of that level are returned, supporting the paper's "the system
//! prompts the user to select the most interesting leads").

use crate::federation::Federation;
use crate::servants::value_to_link;
use crate::value_map::value_to_strings;
use crate::{WebfinditError, WfResult};
use std::collections::BTreeSet;
use std::sync::Arc;
use webfindit_codb::{LinkEnd, ServiceLink};
use webfindit_wire::{Ior, Value};

/// What a discovery found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lead {
    /// A coalition advertising the requested information.
    Coalition {
        /// Coalition name.
        name: String,
        /// The site whose co-database reported it.
        via_site: String,
        /// BFS distance (0 = local).
        distance: usize,
    },
    /// A service link whose description matches the request.
    Link {
        /// The link.
        link: ServiceLink,
        /// The site whose co-database reported it.
        via_site: String,
        /// BFS distance.
        distance: usize,
    },
}

impl Lead {
    /// Distance at which this lead was found.
    pub fn distance(&self) -> usize {
        match self {
            Lead::Coalition { distance, .. } | Lead::Link { distance, .. } => *distance,
        }
    }

    /// The coalition name, if this is a coalition lead.
    pub fn coalition_name(&self) -> Option<&str> {
        match self {
            Lead::Coalition { name, .. } => Some(name),
            Lead::Link { .. } => None,
        }
    }
}

/// Cost accounting for one discovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// GIOP invocations on remote co-database servants.
    pub codb_queries: u64,
    /// Naming-service resolutions performed.
    pub naming_lookups: u64,
    /// Distinct sites whose co-database was consulted (incl. local).
    pub sites_visited: usize,
    /// BFS level at which the first lead appeared (None = nothing found).
    pub found_at_level: Option<usize>,
}

impl DiscoveryStats {
    /// Total remote round-trips (codb queries + naming lookups).
    pub fn total_round_trips(&self) -> u64 {
        self.codb_queries + self.naming_lookups
    }
}

/// A site whose co-database could not be consulted during discovery.
///
/// Sites are autonomous: they crash and leave without telling anyone.
/// Discovery degrades gracefully — it keeps the answer it can compute
/// from the reachable subtree and reports what it had to skip, so the
/// user knows the answer may be partial and which repository to blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteFailure {
    /// The unreachable site.
    pub site: String,
    /// BFS distance at which the probe failed.
    pub distance: usize,
    /// Rendered cause (naming failure, connect refusal, deadline, …).
    pub reason: String,
}

/// The outcome of one discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryOutcome {
    /// All leads found at the first productive level.
    pub leads: Vec<Lead>,
    /// Sites the traversal could not reach; non-empty means `leads`
    /// covers only the surviving subtree of the federation.
    pub degraded: Vec<SiteFailure>,
    /// Cost accounting.
    pub stats: DiscoveryStats,
}

impl DiscoveryOutcome {
    /// True if anything was found.
    pub fn found(&self) -> bool {
        !self.leads.is_empty()
    }

    /// True if every consulted site answered (the result is complete).
    pub fn complete(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Names of the sites that could not be consulted.
    pub fn degraded_sites(&self) -> Vec<&str> {
        self.degraded.iter().map(|f| f.site.as_str()).collect()
    }
}

/// The §2 resolution engine.
pub struct DiscoveryEngine {
    fed: Arc<Federation>,
    /// Maximum BFS depth (levels of remote expansion).
    pub max_depth: usize,
}

impl DiscoveryEngine {
    /// Create an engine over a federation with the default depth bound.
    pub fn new(fed: Arc<Federation>) -> DiscoveryEngine {
        DiscoveryEngine { fed, max_depth: 8 }
    }

    fn resolve_codb(&self, site: &str, stats: &mut DiscoveryStats) -> WfResult<Ior> {
        stats.naming_lookups += 1;
        self.fed
            .naming_client()
            .resolve(&format!("codb/{site}"))
            .map_err(WebfinditError::from)
    }

    fn remote_strings(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Value],
        stats: &mut DiscoveryStats,
    ) -> WfResult<Vec<String>> {
        stats.codb_queries += 1;
        let v = self.fed.invoke(ior, op, args)?;
        value_to_strings(&v)
    }

    fn remote_links(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Value],
        stats: &mut DiscoveryStats,
    ) -> WfResult<Vec<ServiceLink>> {
        stats.codb_queries += 1;
        let v = self.fed.invoke(ior, op, args)?;
        v.as_sequence()
            .ok_or_else(|| WebfinditError::Protocol("expected link sequence".into()))?
            .iter()
            .map(|l| value_to_link(l).map_err(|e| WebfinditError::Protocol(e.to_string())))
            .collect()
    }

    /// Sites reachable from a set of links: database endpoints directly;
    /// coalition endpoints via the reporting co-database's member list.
    fn expand_links(
        &self,
        links: &[ServiceLink],
        via_ior: &Ior,
        stats: &mut DiscoveryStats,
        frontier: &mut BTreeSet<String>,
    ) {
        for link in links {
            for end in [&link.from, &link.to] {
                match end {
                    LinkEnd::Database(name) => {
                        frontier.insert(name.clone());
                    }
                    LinkEnd::Coalition(coalition) => {
                        if let Ok(members) = self.remote_strings(
                            via_ior,
                            "members",
                            &[Value::string(coalition.clone())],
                            stats,
                        ) {
                            frontier.extend(members);
                        }
                    }
                }
            }
        }
    }

    /// Run discovery for `topic`, starting at `start_site`.
    ///
    /// A dead or unreachable site never aborts the traversal: it is
    /// recorded in [`DiscoveryOutcome::degraded`] and the search keeps
    /// walking the surviving subtree of coalitions and service links.
    pub fn find(&self, start_site: &str, topic: &str) -> WfResult<DiscoveryOutcome> {
        let mut stats = DiscoveryStats::default();
        let mut degraded: Vec<SiteFailure> = Vec::new();
        let start = self.fed.site(start_site)?;
        let mut visited: BTreeSet<String> = BTreeSet::new();
        visited.insert(start.name.to_ascii_lowercase());
        stats.sites_visited = 1;

        // ---- level 0: the local co-database, no network ----
        let mut leads: Vec<Lead> = Vec::new();
        let mut frontier: BTreeSet<String> = BTreeSet::new();
        {
            let codb = start.codb.read();
            for c in codb.find_coalitions(topic) {
                leads.push(Lead::Coalition {
                    name: c,
                    via_site: start.name.clone(),
                    distance: 0,
                });
            }
            for l in codb.find_links(topic) {
                leads.push(Lead::Link {
                    link: l.clone(),
                    via_site: start.name.clone(),
                    distance: 0,
                });
            }
            if leads.is_empty() {
                // Expand through local inter-relationships.
                for coalition in codb.coalitions() {
                    if let Ok(members) = codb.members(&coalition) {
                        frontier.extend(members);
                    }
                }
                let links: Vec<ServiceLink> = codb.service_links().to_vec();
                for link in &links {
                    for end in [&link.from, &link.to] {
                        match end {
                            LinkEnd::Database(name) => {
                                frontier.insert(name.clone());
                            }
                            LinkEnd::Coalition(c) => {
                                if let Ok(members) = codb.members(c) {
                                    frontier.extend(members);
                                }
                            }
                        }
                    }
                }
            }
        }
        if !leads.is_empty() {
            stats.found_at_level = Some(0);
            return Ok(DiscoveryOutcome {
                leads,
                degraded,
                stats,
            });
        }

        // ---- levels 1..max_depth: remote co-databases ----
        for depth in 1..=self.max_depth {
            let wave: Vec<String> = frontier
                .iter()
                .filter(|s| !visited.contains(&s.to_ascii_lowercase()))
                .cloned()
                .collect();
            frontier.clear();
            if wave.is_empty() {
                break;
            }
            let mut next: BTreeSet<String> = BTreeSet::new();
            for site in wave {
                visited.insert(site.to_ascii_lowercase());
                stats.sites_visited += 1;
                let ior = match self.resolve_codb(&site, &mut stats) {
                    Ok(ior) => ior,
                    Err(e) => {
                        // Site unknown to naming — degrade gracefully.
                        degraded.push(SiteFailure {
                            site: site.clone(),
                            distance: depth,
                            reason: e.to_string(),
                        });
                        continue;
                    }
                };
                // Probe for both coalition and link leads — the paper's
                // browser shows the user every kind of lead a repository
                // can offer before they pick one.
                let mut found_here = false;
                match self.remote_strings(
                    &ior,
                    "find_coalitions",
                    &[Value::string(topic)],
                    &mut stats,
                ) {
                    Ok(coalitions) => {
                        for c in coalitions {
                            found_here = true;
                            leads.push(Lead::Coalition {
                                name: c,
                                via_site: site.clone(),
                                distance: depth,
                            });
                        }
                    }
                    Err(e) => {
                        // The co-database is down or unreachable: record
                        // it and keep walking the reachable subtree.
                        degraded.push(SiteFailure {
                            site: site.clone(),
                            distance: depth,
                            reason: e.to_string(),
                        });
                        continue;
                    }
                }
                match self.remote_links(&ior, "find_links", &[Value::string(topic)], &mut stats) {
                    Ok(links) => {
                        for l in links {
                            found_here = true;
                            leads.push(Lead::Link {
                                link: l,
                                via_site: site.clone(),
                                distance: depth,
                            });
                        }
                    }
                    Err(e) => {
                        degraded.push(SiteFailure {
                            site: site.clone(),
                            distance: depth,
                            reason: e.to_string(),
                        });
                        continue;
                    }
                }
                if found_here {
                    continue;
                }
                // No leads here: expand its inter-relationships.
                if let Ok(coalitions) = self.remote_strings(&ior, "coalitions", &[], &mut stats) {
                    for c in coalitions {
                        if let Ok(members) =
                            self.remote_strings(&ior, "members", &[Value::string(c)], &mut stats)
                        {
                            next.extend(members);
                        }
                    }
                }
                if let Ok(links) = self.remote_links(&ior, "service_links", &[], &mut stats) {
                    self.expand_links(&links, &ior, &mut stats, &mut next);
                }
            }
            if !leads.is_empty() {
                stats.found_at_level = Some(depth);
                return Ok(DiscoveryOutcome {
                    leads,
                    degraded,
                    stats,
                });
            }
            frontier = next;
        }
        Ok(DiscoveryOutcome {
            leads,
            degraded,
            stats,
        })
    }
}
