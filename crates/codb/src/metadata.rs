//! The co-database proper: coalition lattice, memberships, service links.

use crate::descriptor::InformationSource;
use crate::{CodbError, CodbResult};
use std::collections::BTreeMap;
use webfindit_oostore::model::{ClassDef, OType, OValue};
use webfindit_oostore::{ObjectStore, Oid};

/// Root class name for the coalition lattice.
pub const INFORMATION_TYPE_ROOT: &str = "InformationType";

/// One endpoint of a service link.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkEnd {
    /// A coalition, by name.
    Coalition(String),
    /// A database (information source), by name.
    Database(String),
}

impl LinkEnd {
    /// The endpoint's display name.
    pub fn name(&self) -> &str {
        match self {
            LinkEnd::Coalition(n) | LinkEnd::Database(n) => n,
        }
    }
}

impl std::fmt::Display for LinkEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkEnd::Coalition(n) => write!(f, "coalition {n}"),
            LinkEnd::Database(n) => write!(f, "database {n}"),
        }
    }
}

/// A service link: a low-overhead sharing agreement (§2.1 — the three
/// kinds are coalition↔coalition, database↔database, coalition↔database).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceLink {
    /// The offering end.
    pub from: LinkEnd,
    /// The consuming end.
    pub to: LinkEnd,
    /// The minimal description of the shared information type.
    pub description: String,
}

impl ServiceLink {
    /// The paper's naming convention, e.g. `SGF_to_Medical`.
    pub fn link_name(&self) -> String {
        format!(
            "{}_to_{}",
            self.from.name().replace(' ', ""),
            self.to.name().replace(' ', "")
        )
    }
}

/// A co-database: the metadata layer attached to one participating
/// database ("the proposed approach is enabled by the introduction of a
/// layer of meta-data that surrounds each local DBMS").
pub struct CoDatabase {
    /// The database this co-database belongs to.
    owner: String,
    /// The coalition lattice + source descriptors, stored as a real
    /// object database (the ObjectStore/Ontos role).
    store: ObjectStore,
    /// Full descriptors by lowercase source name (the oostore instance
    /// holds the flat advertisement; structured interfaces live here).
    descriptors: BTreeMap<String, InformationSource>,
    /// OID of each source's instance object per coalition.
    instances: BTreeMap<(String, String), Oid>,
    /// Known service links.
    links: Vec<ServiceLink>,
    /// Metadata version stamp: bumped by every successful mutation
    /// (coalition creation/dissolution, advertisement, withdrawal,
    /// link changes). Remote readers key cached answers on this stamp,
    /// so any registration or evolution invalidates their caches.
    version: u64,
}

impl CoDatabase {
    /// Create an empty co-database for `owner`.
    pub fn new(owner: impl Into<String>) -> CoDatabase {
        let owner = owner.into();
        let mut store = ObjectStore::new(format!("codb-{owner}"));
        store
            .define_class(
                ClassDef::root(INFORMATION_TYPE_ROOT)
                    .attr("name", OType::Text)
                    .attr("information_type", OType::Text)
                    .attr("documentation", OType::Text)
                    .attr("location", OType::Text)
                    .attr("wrapper", OType::Text)
                    .attr("interface", OType::List)
                    .doc("root of the information-type lattice"),
            )
            .expect("fresh store accepts the root class");
        CoDatabase {
            owner,
            store,
            descriptors: BTreeMap::new(),
            instances: BTreeMap::new(),
            links: Vec::new(),
            version: 0,
        }
    }

    /// The owning database's name.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// The current metadata version stamp. Strictly increases with
    /// every successful mutation; equal stamps guarantee identical
    /// metadata, so cached answers keyed on a stamp are never stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record one successful mutation.
    fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Read access to the underlying object store (for OQL etc.).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    // ---- coalitions -----------------------------------------------------

    /// Create a coalition class. `parent` of `None` attaches it under the
    /// information-type root; otherwise under the named coalition (the
    /// lattice can be arbitrarily deep: Research → MedicalResearch …).
    pub fn create_coalition(
        &mut self,
        name: &str,
        parent: Option<&str>,
        documentation: &str,
    ) -> CodbResult<()> {
        let parent_class = match parent {
            Some(p) => {
                self.coalition_exists(p)?;
                p.to_owned()
            }
            None => INFORMATION_TYPE_ROOT.to_owned(),
        };
        let def = ClassDef::root(name)
            .extends(parent_class)
            .doc(documentation);
        self.store.define_class(def).map_err(|e| match e {
            webfindit_oostore::OoError::ClassExists(c) => CodbError::CoalitionExists(c),
            other => CodbError::Oo(other),
        })?;
        self.bump_version();
        Ok(())
    }

    fn coalition_exists(&self, name: &str) -> CodbResult<()> {
        match self.store.class(name) {
            Ok(_) => Ok(()),
            Err(_) => Err(CodbError::NoSuchCoalition(name.to_owned())),
        }
    }

    /// All coalition names (everything in the lattice except the root).
    pub fn coalitions(&self) -> Vec<String> {
        self.store
            .class_names()
            .into_iter()
            .filter(|c| c != INFORMATION_TYPE_ROOT)
            .collect()
    }

    /// Direct subclasses of a coalition (or of the root).
    pub fn subclasses(&self, name: &str) -> CodbResult<Vec<String>> {
        self.store
            .subclasses(name)
            .map_err(|_| CodbError::NoSuchCoalition(name.to_owned()))
    }

    /// The documentation string of a coalition.
    pub fn coalition_documentation(&self, name: &str) -> CodbResult<String> {
        self.store
            .class(name)
            .map(|c| c.documentation.clone())
            .map_err(|_| CodbError::NoSuchCoalition(name.to_owned()))
    }

    // ---- sources ----------------------------------------------------------

    /// Advertise a source as a member of `coalition` (§2.2: "if the
    /// database administrator decides to make public some of these
    /// relations, they should be advertised through the co-database").
    pub fn advertise(&mut self, coalition: &str, source: InformationSource) -> CodbResult<()> {
        self.coalition_exists(coalition)?;
        let key = (
            coalition.to_ascii_lowercase(),
            source.name.to_ascii_lowercase(),
        );
        if self.instances.contains_key(&key) {
            return Err(CodbError::AlreadyMember {
                source: source.name,
                coalition: coalition.to_owned(),
            });
        }
        let iface: Vec<OValue> = source
            .interface_names()
            .into_iter()
            .map(OValue::Text)
            .collect();
        let oid = self.store.create(
            coalition,
            [
                ("name".to_string(), OValue::Text(source.name.clone())),
                (
                    "information_type".to_string(),
                    OValue::Text(source.information_type.clone()),
                ),
                (
                    "documentation".to_string(),
                    OValue::Text(source.documentation_url.clone()),
                ),
                (
                    "location".to_string(),
                    OValue::Text(source.location.clone()),
                ),
                ("wrapper".to_string(), OValue::Text(source.wrapper.clone())),
                ("interface".to_string(), OValue::List(iface)),
            ],
        )?;
        self.instances.insert(key, oid);
        self.descriptors
            .insert(source.name.to_ascii_lowercase(), source);
        self.bump_version();
        Ok(())
    }

    /// Withdraw a source from one coalition. The descriptor stays known
    /// while the source is a member of any other coalition.
    pub fn withdraw(&mut self, coalition: &str, source: &str) -> CodbResult<()> {
        let key = (coalition.to_ascii_lowercase(), source.to_ascii_lowercase());
        let oid = self
            .instances
            .remove(&key)
            .ok_or_else(|| CodbError::NoSuchSource(source.to_owned()))?;
        self.store.delete(oid)?;
        let still_member = self
            .instances
            .keys()
            .any(|(_, s)| s == &source.to_ascii_lowercase());
        if !still_member {
            self.descriptors.remove(&source.to_ascii_lowercase());
        }
        self.bump_version();
        Ok(())
    }

    /// Member source names of a coalition, including members of its
    /// sub-coalitions (instance closure).
    pub fn members(&self, coalition: &str) -> CodbResult<Vec<String>> {
        self.coalition_exists(coalition)?;
        let oids = self.store.instances_of(coalition, true)?;
        let mut names: Vec<String> = oids
            .into_iter()
            .filter_map(|o| {
                self.store
                    .object(o)
                    .ok()
                    .and_then(|obj| obj.get("name").as_text().map(str::to_owned))
            })
            .collect();
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// The coalitions a source belongs to (direct memberships).
    pub fn memberships(&self, source: &str) -> Vec<String> {
        let s = source.to_ascii_lowercase();
        let mut out: Vec<String> = self
            .instances
            .keys()
            .filter(|(_, src)| *src == s)
            .map(|(c, _)| {
                // Canonical case from the class definition.
                self.store
                    .class(c)
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|_| c.clone())
            })
            .collect();
        out.sort();
        out
    }

    /// Full descriptor of a source (the `Display Access Information`
    /// payload).
    pub fn descriptor(&self, source: &str) -> CodbResult<&InformationSource> {
        self.descriptors
            .get(&source.to_ascii_lowercase())
            .ok_or_else(|| CodbError::NoSuchSource(source.to_owned()))
    }

    /// All advertised source names.
    pub fn sources(&self) -> Vec<String> {
        self.descriptors.values().map(|d| d.name.clone()).collect()
    }

    /// Direct member names of one coalition (no subclass closure) —
    /// used by dissolution, which walks the doomed subtree itself.
    pub fn members_direct(&self, coalition: &str) -> Vec<String> {
        let c = coalition.to_ascii_lowercase();
        let mut out: Vec<String> = self
            .instances
            .iter()
            .filter(|((co, _), _)| *co == c)
            .filter_map(|((_, _), oid)| {
                self.store
                    .object(*oid)
                    .ok()
                    .and_then(|obj| obj.get("name").as_text().map(str::to_owned))
            })
            .collect();
        out.sort();
        out
    }

    /// Drop the coalition's class subtree from the lattice. Membership
    /// bookkeeping must already be clean (dissolution withdraws first);
    /// any stragglers are cleaned defensively.
    pub(crate) fn drop_coalition_classes(&mut self, name: &str) -> CodbResult<Vec<String>> {
        let removed = self
            .store
            .drop_class(name)
            .map_err(|_| CodbError::NoSuchCoalition(name.to_owned()))?;
        let removed_keys: std::collections::BTreeSet<String> =
            removed.iter().map(|c| c.to_ascii_lowercase()).collect();
        self.instances.retain(|(c, _), _| !removed_keys.contains(c));
        self.bump_version();
        Ok(removed)
    }

    // ---- service links ------------------------------------------------------

    /// Record a service link.
    pub fn add_service_link(&mut self, link: ServiceLink) -> CodbResult<()> {
        if self
            .links
            .iter()
            .any(|l| l.from == link.from && l.to == link.to)
        {
            return Err(CodbError::DuplicateLink);
        }
        self.links.push(link);
        self.bump_version();
        Ok(())
    }

    /// Remove a service link by endpoints. Returns true if found.
    pub fn remove_service_link(&mut self, from: &LinkEnd, to: &LinkEnd) -> bool {
        let before = self.links.len();
        self.links.retain(|l| !(&l.from == from && &l.to == to));
        if self.links.len() != before {
            self.bump_version();
            return true;
        }
        false
    }

    /// All known service links.
    pub fn service_links(&self) -> &[ServiceLink] {
        &self.links
    }

    /// Service links whose offering or consuming end is `name`
    /// (coalition or database).
    pub fn links_involving(&self, name: &str) -> Vec<&ServiceLink> {
        self.links
            .iter()
            .filter(|l| {
                l.from.name().eq_ignore_ascii_case(name) || l.to.name().eq_ignore_ascii_case(name)
            })
            .collect()
    }

    // ---- information-type matching -----------------------------------------

    /// Coalitions in this co-database that advertise `information_type`:
    /// matched against coalition names, their documentation, and their
    /// members' advertised information types (case-insensitive word
    /// containment both ways).
    pub fn find_coalitions(&self, information_type: &str) -> Vec<String> {
        let needle = information_type.to_ascii_lowercase();
        let mut out = Vec::new();
        for class in self.coalitions() {
            let doc = self
                .coalition_documentation(&class)
                .unwrap_or_default()
                .to_ascii_lowercase();
            let class_l = class.to_ascii_lowercase();
            let mut hit = topic_matches(&class_l, &needle) || topic_matches(&doc, &needle);
            if !hit {
                if let Ok(oids) = self.store.instances_of(&class, false) {
                    hit = oids.iter().any(|o| {
                        self.store
                            .object(*o)
                            .ok()
                            .and_then(|obj| {
                                obj.get("information_type")
                                    .as_text()
                                    .map(|t| topic_matches(&t.to_ascii_lowercase(), &needle))
                            })
                            .unwrap_or(false)
                    });
                }
            }
            if hit {
                out.push(class);
            }
        }
        out
    }

    /// Service links whose description matches `information_type`.
    pub fn find_links(&self, information_type: &str) -> Vec<&ServiceLink> {
        let needle = information_type.to_ascii_lowercase();
        self.links
            .iter()
            .filter(|l| topic_matches(&l.description.to_ascii_lowercase(), &needle))
            .collect()
    }
}

/// Loose topic matching: every word of the query must appear in the
/// candidate, or the candidate (as a phrase) must appear in the query.
/// "Medical Research" thus matches the coalition "Research" documented
/// as "medical research conducted in hospitals", and also a coalition
/// literally named "MedicalResearch".
pub fn topic_matches(candidate: &str, query: &str) -> bool {
    if candidate.is_empty() || query.is_empty() {
        return false;
    }
    let compact_candidate: String = candidate
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    let words: Vec<&str> = query
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty())
        .collect();
    if words
        .iter()
        .all(|w| candidate.contains(w) || compact_candidate.contains(w))
    {
        return true;
    }
    // Or: candidate phrase inside query ("medical" inside "medical insurance").
    query.contains(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rbh_source() -> InformationSource {
        InformationSource {
            name: "Royal Brisbane Hospital".into(),
            information_type: "Research and Medical".into(),
            documentation_url: "http://www.medicine.uq.edu.au/RBH".into(),
            location: "dba.icis.qut.edu.au".into(),
            wrapper: "dba.icis.qut.edu.au/WebTassiliOracle".into(),
            interface: Vec::new(),
        }
    }

    fn codb() -> CoDatabase {
        let mut c = CoDatabase::new("Royal Brisbane Hospital");
        c.create_coalition("Research", None, "medical research conducted in hospitals")
            .unwrap();
        c.create_coalition("Medical", None, "hospitals and medical providers")
            .unwrap();
        c.create_coalition("CancerResearch", Some("Research"), "cancer research")
            .unwrap();
        c.advertise("Research", rbh_source()).unwrap();
        c.advertise("Medical", rbh_source()).unwrap();
        c
    }

    #[test]
    fn coalition_lattice() {
        let mut c = codb();
        assert_eq!(
            c.coalitions(),
            vec!["CancerResearch", "Medical", "Research"]
        );
        assert_eq!(c.subclasses("Research").unwrap(), vec!["CancerResearch"]);
        assert!(matches!(
            c.subclasses("Ghost"),
            Err(CodbError::NoSuchCoalition(_))
        ));
        assert!(matches!(
            c.create_coalition("Research", None, ""),
            Err(CodbError::CoalitionExists(_))
        ));
    }

    #[test]
    fn membership_and_descriptor() {
        let c = codb();
        assert_eq!(
            c.members("Research").unwrap(),
            vec!["Royal Brisbane Hospital"]
        );
        assert_eq!(
            c.memberships("royal brisbane hospital"),
            vec!["Medical", "Research"]
        );
        let d = c.descriptor("Royal Brisbane Hospital").unwrap();
        assert_eq!(d.location, "dba.icis.qut.edu.au");
        assert!(matches!(
            c.descriptor("Ghost"),
            Err(CodbError::NoSuchSource(_))
        ));
    }

    #[test]
    fn duplicate_membership_rejected() {
        let mut c = codb();
        assert!(matches!(
            c.advertise("Research", rbh_source()),
            Err(CodbError::AlreadyMember { .. })
        ));
    }

    #[test]
    fn withdraw_keeps_descriptor_until_last_membership() {
        let mut c = codb();
        c.withdraw("Research", "Royal Brisbane Hospital").unwrap();
        assert!(c.descriptor("Royal Brisbane Hospital").is_ok());
        assert_eq!(c.memberships("Royal Brisbane Hospital"), vec!["Medical"]);
        c.withdraw("Medical", "Royal Brisbane Hospital").unwrap();
        assert!(c.descriptor("Royal Brisbane Hospital").is_err());
        assert!(c.withdraw("Medical", "Royal Brisbane Hospital").is_err());
    }

    #[test]
    fn member_closure_includes_subcoalitions() {
        let mut c = codb();
        let mut qcf = rbh_source();
        qcf.name = "Queensland Cancer Fund".into();
        qcf.information_type = "cancer research".into();
        c.advertise("CancerResearch", qcf).unwrap();
        let members = c.members("Research").unwrap();
        assert_eq!(
            members,
            vec!["Queensland Cancer Fund", "Royal Brisbane Hospital"]
        );
    }

    #[test]
    fn service_links() {
        let mut c = codb();
        let link = ServiceLink {
            from: LinkEnd::Coalition("Medical".into()),
            to: LinkEnd::Coalition("Medical Insurance".into()),
            description: "medical insurance information".into(),
        };
        c.add_service_link(link.clone()).unwrap();
        assert!(matches!(
            c.add_service_link(link.clone()),
            Err(CodbError::DuplicateLink)
        ));
        assert_eq!(link.link_name(), "Medical_to_MedicalInsurance");
        assert_eq!(c.links_involving("medical").len(), 1);
        assert_eq!(c.links_involving("nothing").len(), 0);
        assert_eq!(c.find_links("medical insurance").len(), 1);
        assert!(c.remove_service_link(&link.from, &link.to));
        assert!(!c.remove_service_link(&link.from, &link.to));
    }

    #[test]
    fn find_coalitions_by_name_doc_and_member_types() {
        let c = codb();
        // By documentation: the paper's Medical Research query.
        let hits = c.find_coalitions("Medical Research");
        assert!(hits.contains(&"Research".to_string()), "{hits:?}");
        // By class name.
        assert!(c
            .find_coalitions("cancerresearch")
            .contains(&"CancerResearch".to_string()));
        // By member's information type ("Research and Medical").
        assert!(c
            .find_coalitions("Medical")
            .contains(&"Medical".to_string()));
        // Miss.
        assert!(c.find_coalitions("astrophysics").is_empty());
    }

    #[test]
    fn version_stamp_tracks_every_mutation() {
        let mut c = CoDatabase::new("RBH");
        assert_eq!(c.version(), 0);
        c.create_coalition("Research", None, "research").unwrap();
        let v1 = c.version();
        assert!(v1 > 0);
        // Failed mutations leave the stamp unchanged.
        assert!(c.create_coalition("Research", None, "").is_err());
        assert_eq!(c.version(), v1);
        c.advertise("Research", rbh_source()).unwrap();
        let v2 = c.version();
        assert!(v2 > v1);
        // Reads never move the stamp.
        let _ = c.members("Research").unwrap();
        let _ = c.find_coalitions("research");
        assert_eq!(c.version(), v2);
        let link = ServiceLink {
            from: LinkEnd::Coalition("Research".into()),
            to: LinkEnd::Database("ATO".into()),
            description: "grants".into(),
        };
        c.add_service_link(link.clone()).unwrap();
        let v3 = c.version();
        assert!(v3 > v2);
        assert!(c.remove_service_link(&link.from, &link.to));
        let v4 = c.version();
        assert!(v4 > v3);
        // A no-op removal does not bump.
        assert!(!c.remove_service_link(&link.from, &link.to));
        assert_eq!(c.version(), v4);
        c.withdraw("Research", "Royal Brisbane Hospital").unwrap();
        assert!(c.version() > v4);
    }

    #[test]
    fn topic_matching_rules() {
        assert!(topic_matches("research", "medical research")); // phrase containment
        assert!(topic_matches(
            "medical research conducted",
            "medical research"
        ));
        assert!(topic_matches("medicalresearch", "medical research")); // compact form
        assert!(!topic_matches("insurance", "medical research"));
        assert!(!topic_matches("", "x"));
        assert!(!topic_matches("x", ""));
    }
}
