//! Coalition evolution: the dynamics of §2.1.
//!
//! "As database node 'interests' change over time, new coalitions may
//! form, old coalitions may be dissolved, and components of existing
//! coalitions change." Formation and membership changes live on
//! [`CoDatabase`] (`create_coalition`, `advertise`, `withdraw`); this
//! module adds dissolution and a churn summary used by experiment E4.

use crate::metadata::{CoDatabase, LinkEnd};
use crate::{CodbError, CodbResult};

/// The effects of dissolving a coalition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DissolutionReport {
    /// The dissolved coalition and any sub-coalitions removed with it.
    pub removed_coalitions: Vec<String>,
    /// Sources whose membership in those coalitions ended.
    pub displaced_sources: Vec<String>,
    /// Service links severed because an endpoint disappeared.
    pub severed_links: usize,
}

impl CoDatabase {
    /// Dissolve a coalition: its class subtree is dropped, member
    /// advertisements in it are withdrawn, and service links touching
    /// the removed coalitions are severed.
    pub fn dissolve_coalition(&mut self, name: &str) -> CodbResult<DissolutionReport> {
        // Collect the doomed coalition set first.
        let mut removed = self
            .store()
            .subclasses_transitive(name)
            .map_err(|_| CodbError::NoSuchCoalition(name.to_owned()))?;
        let canonical = self
            .store()
            .class(name)
            .map(|c| c.name.clone())
            .map_err(|_| CodbError::NoSuchCoalition(name.to_owned()))?;
        removed.push(canonical);

        // Withdraw memberships coalition by coalition (keeps descriptor
        // bookkeeping consistent), remembering who was displaced.
        let mut displaced = Vec::new();
        for coalition in &removed {
            for member in self.members_direct(coalition) {
                let _ = self.withdraw(coalition, &member);
                displaced.push(member);
            }
        }
        displaced.sort();
        displaced.dedup();

        // Drop the classes.
        self.drop_coalition_classes(name)?;

        // Sever links with a removed endpoint.
        let mut severed = 0;
        for coalition in &removed {
            let end = LinkEnd::Coalition(coalition.clone());
            let involving: Vec<(LinkEnd, LinkEnd)> = self
                .service_links()
                .iter()
                .filter(|l| l.from == end || l.to == end)
                .map(|l| (l.from.clone(), l.to.clone()))
                .collect();
            for (from, to) in involving {
                if self.remove_service_link(&from, &to) {
                    severed += 1;
                }
            }
        }

        removed.sort();
        Ok(DissolutionReport {
            removed_coalitions: removed,
            displaced_sources: displaced,
            severed_links: severed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::InformationSource;
    use crate::metadata::ServiceLink;

    fn src(name: &str, itype: &str) -> InformationSource {
        InformationSource {
            name: name.into(),
            information_type: itype.into(),
            documentation_url: format!("http://docs/{name}"),
            location: "host".into(),
            wrapper: "host/wrapper".into(),
            interface: Vec::new(),
        }
    }

    #[test]
    fn dissolution_removes_subtree_members_and_links() {
        let mut c = CoDatabase::new("RBH");
        c.create_coalition("Research", None, "research").unwrap();
        c.create_coalition("MedicalResearch", Some("Research"), "medical research")
            .unwrap();
        c.create_coalition("Medical", None, "medical").unwrap();
        c.advertise("Research", src("QUT Research", "research"))
            .unwrap();
        c.advertise(
            "MedicalResearch",
            src("RMIT Medical Research", "medical research"),
        )
        .unwrap();
        c.advertise("Medical", src("Medibank", "insurance"))
            .unwrap();
        c.add_service_link(ServiceLink {
            from: LinkEnd::Coalition("MedicalResearch".into()),
            to: LinkEnd::Coalition("Medical".into()),
            description: "research results".into(),
        })
        .unwrap();
        c.add_service_link(ServiceLink {
            from: LinkEnd::Coalition("Medical".into()),
            to: LinkEnd::Database("Ambulance".into()),
            description: "dispatch".into(),
        })
        .unwrap();

        let report = c.dissolve_coalition("Research").unwrap();
        assert_eq!(
            report.removed_coalitions,
            vec!["MedicalResearch", "Research"]
        );
        assert_eq!(
            report.displaced_sources,
            vec!["QUT Research", "RMIT Medical Research"]
        );
        assert_eq!(report.severed_links, 1);

        // The unrelated coalition and link survive.
        assert_eq!(c.coalitions(), vec!["Medical"]);
        assert_eq!(c.service_links().len(), 1);
        assert_eq!(c.members("Medical").unwrap(), vec!["Medibank"]);
        // Displaced descriptors are gone (no remaining memberships).
        assert!(c.descriptor("QUT Research").is_err());
    }

    #[test]
    fn dissolution_bumps_the_version_stamp() {
        let mut c = CoDatabase::new("RBH");
        c.create_coalition("Research", None, "research").unwrap();
        c.advertise("Research", src("QUT Research", "research"))
            .unwrap();
        let before = c.version();
        c.dissolve_coalition("Research").unwrap();
        assert!(
            c.version() > before,
            "dissolution must invalidate cached answers"
        );
    }

    #[test]
    fn dissolving_missing_coalition_errors() {
        let mut c = CoDatabase::new("x");
        assert!(matches!(
            c.dissolve_coalition("Ghost"),
            Err(CodbError::NoSuchCoalition(_))
        ));
    }
}
