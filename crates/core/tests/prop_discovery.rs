//! Property-based tests on the discovery algorithm over randomized
//! synthetic federations (DESIGN.md §8):
//!
//! * **Completeness** — every advertised topic is findable from every
//!   start site (the ring topology keeps the federation connected).
//! * **Soundness** — a topic nobody advertises is never "found", from
//!   any start site.
//! * **Locality** — a site's own coalition topic always resolves at
//!   level 0 with zero network round-trips.
//!
//! Federations carry real ORBs and TCP listeners, so the generator keeps
//! sizes small and case counts low.

use webfindit::discovery::{DiscoveryEngine, DiscoveryOutcome};
use webfindit::orb::chaos::{ChaosAction, ChaosPlan};
use webfindit::synth::{build, SynthConfig, SynthFederation};
use webfindit_base::prop;

#[test]
fn discovery_is_complete_sound_and_local() {
    prop::cases(8, |rng| {
        let databases = rng.gen_range(4usize..14);
        let coalition_size = rng.gen_range(1usize..4);
        let extra_links = rng.gen_range(0usize..3);
        let seed = rng.gen_range(0u64..1000);
        let synth = build(&SynthConfig {
            databases,
            coalition_size,
            orbs: 2,
            extra_links,
            ring_links: true,
            seed,
        })
        .unwrap();
        let mut engine = DiscoveryEngine::new(synth.fed.clone());
        engine.max_depth = 32;

        // Locality: own topic at level 0, free.
        for c in 0..synth.coalition_count() {
            let outcome = engine
                .find(synth.member_of(c), &SynthFederation::topic(c))
                .unwrap();
            assert!(outcome.found());
            assert_eq!(outcome.stats.found_at_level, Some(0));
            assert_eq!(outcome.stats.total_round_trips(), 0);
        }

        // Completeness: every topic from every coalition's first member.
        for start in 0..synth.coalition_count() {
            for target in 0..synth.coalition_count() {
                let outcome = engine
                    .find(synth.member_of(start), &SynthFederation::topic(target))
                    .unwrap();
                assert!(
                    outcome.found(),
                    "topic {target} unreachable from coalition {start}: {:?}",
                    outcome.stats
                );
            }
        }

        // Soundness: unadvertised topics are found nowhere.
        for start in 0..synth.coalition_count() {
            let outcome = engine
                .find(synth.member_of(start), "subject nobody advertises")
                .unwrap();
            assert!(!outcome.found(), "phantom lead: {:?}", outcome.leads);
        }

        synth.fed.shutdown();
    });
}

/// The determinism contract of the parallel engine: leads, degraded
/// sites, and visit counts must match a `max_workers = 1` run exactly.
/// (Round-trip counters are *not* compared — caching legitimately
/// changes them between cold and warm runs.)
fn assert_same_outcome(context: &str, serial: &DiscoveryOutcome, parallel: &DiscoveryOutcome) {
    assert_eq!(
        serial.leads, parallel.leads,
        "{context}: leads diverged\nserial:   {serial:?}\nparallel: {parallel:?}"
    );
    assert_eq!(
        serial.degraded, parallel.degraded,
        "{context}: degraded diverged\nserial:   {serial:?}\nparallel: {parallel:?}"
    );
    assert_eq!(
        serial.stats.sites_visited, parallel.stats.sites_visited,
        "{context}: visit counts diverged"
    );
    assert_eq!(
        serial.stats.found_at_level, parallel.stats.found_at_level,
        "{context}: found level diverged"
    );
}

#[test]
fn parallel_find_is_identical_to_serial_cold_and_warm() {
    prop::cases(5, |rng| {
        let synth = build(&SynthConfig {
            databases: rng.gen_range(6usize..14),
            coalition_size: rng.gen_range(2usize..4),
            orbs: 3,
            extra_links: rng.gen_range(0usize..3),
            ring_links: true,
            seed: rng.gen_range(0u64..1000),
        })
        .unwrap();
        let mut serial = DiscoveryEngine::new(synth.fed.clone());
        serial.max_depth = 32;
        serial.max_workers = 1;
        let mut parallel = DiscoveryEngine::new(synth.fed.clone());
        parallel.max_depth = 32;
        parallel.max_workers = 8;

        for target in 0..synth.coalition_count() {
            let topic = SynthFederation::topic(target);
            let s = serial.find(synth.member_of(0), &topic).unwrap();
            let cold = parallel.find(synth.member_of(0), &topic).unwrap();
            let warm = parallel.find(synth.member_of(0), &topic).unwrap();
            assert_same_outcome(&format!("{topic} cold"), &s, &cold);
            assert_same_outcome(&format!("{topic} warm"), &s, &warm);
        }
        synth.fed.shutdown();
    });
}

#[test]
fn parallel_find_matches_serial_while_a_chaos_plan_kills_an_orb() {
    prop::cases(4, |rng| {
        let synth = build(&SynthConfig {
            databases: rng.gen_range(8usize..14),
            coalition_size: 2,
            orbs: 3,
            extra_links: rng.gen_range(0usize..3),
            ring_links: true,
            seed: rng.gen_range(0u64..1000),
        })
        .unwrap();
        // Kill a site (taking its whole hosting ORB down) that is not
        // the start site, then compare serial and parallel traversals
        // of the degraded federation — both mid-plan and after the
        // restart heals it.
        let victim = synth.sites[rng.gen_range(1usize..synth.sites.len())].clone();
        let target = rng.gen_range(0usize..synth.coalition_count());
        let topic = SynthFederation::topic(target);
        let mut plan = ChaosPlan::new(rng.gen_range(0u64..1000));
        plan.push(1, ChaosAction::KillSite(victim.clone()))
            .push(2, ChaosAction::RestartSite(victim.clone()));

        let mut serial = DiscoveryEngine::new(synth.fed.clone());
        serial.max_depth = 32;
        serial.max_workers = 1;
        let mut parallel = DiscoveryEngine::new(synth.fed.clone());
        parallel.max_depth = 32;
        parallel.max_workers = 8;

        plan.run(&*synth.fed, |step| {
            if step == 2 {
                // Give the client breaker its cooldown so the half-open
                // probe can reach the restarted ORB and close it.
                std::thread::sleep(std::time::Duration::from_millis(60));
            }
            let s = serial.find(synth.member_of(0), &topic).unwrap();
            let p = parallel.find(synth.member_of(0), &topic).unwrap();
            assert_same_outcome(&format!("step {step} ({victim} chaos)"), &s, &p);
            if step == 2 {
                assert!(
                    p.complete(),
                    "restart must heal the traversal: {:?}",
                    p.degraded
                );
            }
        });
        synth.fed.shutdown();
    });
}

/// Killing an ORB *while* a parallel find is in flight is racy by
/// nature — the outcome depends on which probes beat the kill — but it
/// must never panic, never error, and never invent leads or degraded
/// entries for sites outside the federation.
#[test]
fn mid_flight_orb_kill_keeps_parallel_discovery_sound() {
    let synth = build(&SynthConfig {
        databases: 12,
        coalition_size: 2,
        orbs: 3,
        extra_links: 1,
        ring_links: true,
        seed: 41,
    })
    .unwrap();
    let mut engine = DiscoveryEngine::new(synth.fed.clone());
    engine.max_depth = 32;
    engine.max_workers = 8;
    let topic = SynthFederation::topic(synth.coalition_count() - 1);

    let fed = synth.fed.clone();
    let orb_name = fed
        .orb_names()
        .last()
        .cloned()
        .expect("synth federation has ORBs");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _ = fed.kill_orb(&orb_name);
    });
    let outcome = engine
        .find(synth.member_of(0), &topic)
        .expect("mid-flight kill must degrade, not error");
    killer.join().unwrap();

    let known: Vec<String> = synth.sites.iter().map(|s| s.to_ascii_lowercase()).collect();
    for failure in &outcome.degraded {
        assert!(
            known.contains(&failure.site.to_ascii_lowercase()),
            "degraded unknown site {:?}",
            failure.site
        );
    }
    if let Some(level) = outcome.stats.found_at_level {
        assert!(outcome.leads.iter().all(|l| l.distance() == level));
    }
    synth.fed.shutdown();
}
