//! SQL lexer.
//!
//! Produces a token stream with byte offsets (for error messages).
//! Identifiers and keywords are case-insensitive; string literals use
//! single quotes with `''` escaping, as every 1990s SQL dialect did.

use crate::{RelError, RelResult};

/// Token categories.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (stored lowercase).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// A punctuation or operator symbol.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Byte offset in the original SQL text.
    pub offset: usize,
}

/// The lexer: call [`Lexer::tokenize`] to get all tokens up front.
pub struct Lexer;

const SYMBOLS: &[&str] = &[
    "<>", "!=", "<=", ">=", "||", "(", ")", ",", ".", "*", "+", "-", "/", "%", "=", "<", ">", ";",
];

impl Lexer {
    /// Tokenize `input` fully.
    pub fn tokenize(input: &str) -> RelResult<Vec<Token>> {
        let bytes = input.as_bytes();
        let mut tokens = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            // Whitespace
            if c.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            // Line comments: -- to end of line
            if c == '-' && bytes.get(i + 1) == Some(&b'-') {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            // String literal
            if c == '\'' {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(RelError::Parse {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance by one UTF-8 code point.
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("in-bounds char");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
                continue;
            }
            // Number
            if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| RelError::Parse {
                        message: format!("bad float literal {text}"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| RelError::Parse {
                        message: format!("integer literal out of range: {text}"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                continue;
            }
            // Identifier / keyword
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_ascii_lowercase()),
                    offset: start,
                });
                continue;
            }
            // Quoted identifier "name" (vendor style) — normalized lowercase.
            if c == '"' {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(RelError::Parse {
                                message: "unterminated quoted identifier".into(),
                                offset: start,
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s.to_ascii_lowercase()),
                    offset: start,
                });
                continue;
            }
            // Symbols (longest first)
            let rest = &input[i..];
            let mut matched = false;
            for sym in SYMBOLS {
                if rest.starts_with(sym) {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(sym),
                        offset: i,
                    });
                    i += sym.len();
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Err(RelError::Parse {
                    message: format!("unexpected character {c:?}"),
                    offset: i,
                });
            }
        }
        tokens.push(Token {
            kind: TokenKind::Eof,
            offset: input.len(),
        });
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("SELECT a.Funding FROM ResearchProjects a WHERE a.Title = 'AIDS'");
        assert_eq!(ks[0], TokenKind::Ident("select".into()));
        assert!(ks.contains(&TokenKind::Symbol(".")));
        assert!(ks.contains(&TokenKind::Str("AIDS".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 3e2 17"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(300.0),
                TokenKind::Int(17),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'O''Brien'"),
            vec![TokenKind::Str("O'Brien".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors_with_offset() {
        match Lexer::tokenize("SELECT 'oops") {
            Err(RelError::Parse { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT 1 -- trailing comment\n, 2"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Int(1),
                TokenKind::Symbol(","),
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn multi_char_symbols_win() {
        assert_eq!(
            kinds("a <> b <= c || d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Symbol("<>"),
                TokenKind::Ident("b".into()),
                TokenKind::Symbol("<="),
                TokenKind::Ident("c".into()),
                TokenKind::Symbol("||"),
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers_lowercased() {
        assert_eq!(
            kinds("\"MixedCase\""),
            vec![TokenKind::Ident("mixedcase".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn bad_character_reports_offset() {
        match Lexer::tokenize("SELECT @") {
            Err(RelError::Parse { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'café ☕'"),
            vec![TokenKind::Str("café ☕".into()), TokenKind::Eof]
        );
    }
}
