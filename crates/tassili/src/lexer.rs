//! WebTassili lexer.
//!
//! Names in WebTassili are multi-word and case-significant for display
//! ("Royal Brisbane Hospital", "Medical Research"), so the lexer keeps
//! identifier case; the parser matches keywords case-insensitively.

use crate::{TassiliError, TassiliResult};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A word (identifier or keyword, original case kept).
    Word(String),
    /// A single-quoted string ('' escapes a quote).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation.
    Sym(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its byte offset.
pub type Spanned = (Tok, usize);

const SYMBOLS: &[&str] = &["<>", "<=", ">=", "(", ")", ",", ".", ";", "=", "<", ">"];

/// Tokenize WebTassili text.
pub fn tokenize(input: &str) -> TassiliResult<Vec<Spanned>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                match b.get(i) {
                    None => {
                        return Err(TassiliError::Parse {
                            message: "unterminated string".into(),
                            offset: start,
                        })
                    }
                    Some(b'\'') => {
                        if b.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(_) => {
                        let ch = input[i..].chars().next().expect("in-bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push((Tok::Str(s), start));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i + 1 < b.len() && b[i] == b'.' && (b[i + 1] as char).is_ascii_digit() {
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let v = input[start..i].parse().map_err(|_| TassiliError::Parse {
                    message: "bad float".into(),
                    offset: start,
                })?;
                out.push((Tok::Float(v), start));
            } else {
                let v = input[start..i].parse().map_err(|_| TassiliError::Parse {
                    message: "integer out of range".into(),
                    offset: start,
                })?;
                out.push((Tok::Int(v), start));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((Tok::Word(input[start..i].to_owned()), start));
            continue;
        }
        let rest = &input[i..];
        let mut matched = false;
        for sym in SYMBOLS {
            if rest.starts_with(sym) {
                out.push((Tok::Sym(sym), i));
                i += sym.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(TassiliError::Parse {
                message: format!("unexpected character {c:?}"),
                offset: i,
            });
        }
    }
    out.push((Tok::Eof, input.len()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_keep_case() {
        let toks = tokenize("Find Coalitions With Information Medical Research;").unwrap();
        assert_eq!(toks[0].0, Tok::Word("Find".into()));
        assert_eq!(toks[4].0, Tok::Word("Medical".into()));
        assert_eq!(toks[6].0, Tok::Sym(";"));
    }

    #[test]
    fn strings_and_numbers() {
        let toks = tokenize("'O''Brien' 42 2.5").unwrap();
        assert_eq!(toks[0].0, Tok::Str("O'Brien".into()));
        assert_eq!(toks[1].0, Tok::Int(42));
        assert_eq!(toks[2].0, Tok::Float(2.5));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a @ b").is_err());
    }
}
