//! Per-database schemas and seeded data generators.
//!
//! The Royal Brisbane Hospital schema is the paper's §2.2 relation list
//! verbatim (Patient, Beds, Occupancy, History, Doctors,
//! ResearchProjects, MedicalStudent(s), ResearchProjectAttendants),
//! including the `AIDS and drugs` research project whose budget the
//! paper's `Funding()` example retrieves. Every generator is seeded, so
//! the deployment is identical on every run.

use webfindit_base::rng::StdRng;
use webfindit_codb::{ExportedFunction, ExportedType};
use webfindit_oostore::method::MethodTable;
use webfindit_oostore::model::{ClassDef, OType, OValue};
use webfindit_oostore::ObjectStore;
use webfindit_relstore::{Database, Dialect};

use crate::topology::{DatabaseInfo, Dbms};

/// A built data source: the engine instance plus its exported interface.
pub enum BuiltSource {
    /// A relational database (boxed: the engine carries its durable
    /// tier inline, dwarfing the object variant).
    Relational(Box<Database>, Vec<ExportedType>),
    /// An object database with its access routines.
    Object(ObjectStore, MethodTable, Vec<ExportedType>),
}

const FIRST_NAMES: &[&str] = &[
    "Alice", "Bob", "Carol", "Dan", "Erin", "Farid", "Grace", "Hiro", "Ines", "Jack", "Kim",
    "Lena", "Mei", "Noah", "Oma", "Priya", "Quinn", "Rosa", "Sam", "Tara",
];
const LAST_NAMES: &[&str] = &[
    "Chen", "Patel", "Nguyen", "Smith", "Brown", "Garcia", "Kim", "Okafor", "Rossi", "Silva",
    "Tanaka", "Novak", "Jones", "Khan", "Larsen",
];
const SUBURBS: &[&str] = &[
    "Herston",
    "Kelvin Grove",
    "Chermside",
    "Toowong",
    "Woolloongabba",
    "Spring Hill",
    "Fortitude Valley",
    "Indooroopilly",
];

fn person_name(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

fn date(rng: &mut StdRng, year_lo: i32, year_hi: i32) -> String {
    format!(
        "{:04}-{:02}-{:02}",
        rng.gen_range(year_lo..=year_hi),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28)
    )
}

fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

/// Build the data source for one database of the deployment.
pub fn build_database(info: &DatabaseInfo, seed: u64) -> BuiltSource {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(info.name));
    match info.dbms {
        Dbms::Oracle => BuiltSource::Relational(
            Box::new(build_oracle(info, &mut rng)),
            relational_interface(info),
        ),
        Dbms::MSql => BuiltSource::Relational(
            Box::new(build_msql(info, &mut rng)),
            relational_interface(info),
        ),
        Dbms::Db2 => BuiltSource::Relational(
            Box::new(build_db2(info, &mut rng)),
            relational_interface(info),
        ),
        Dbms::ObjectStore | Dbms::Ontos => {
            let (store, methods) = build_object(info, &mut rng);
            BuiltSource::Object(store, methods, object_interface(info))
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
}

// ---- Oracle sites --------------------------------------------------------

fn build_oracle(info: &DatabaseInfo, rng: &mut StdRng) -> Database {
    let mut db = Database::new(info.name, Dialect::Oracle);
    match info.name {
        "Royal Brisbane Hospital" => build_rbh(&mut db, rng),
        "QUT Research" => {
            exec(&mut db, "CREATE TABLE researchprojects (project_id INT PRIMARY KEY, title TEXT NOT NULL, keywords TEXT, funding DOUBLE, begin_date DATE)");
            let topics = [
                "public health surveys",
                "telemedicine trials",
                "hospital logistics",
                "aged care outcomes",
                "childhood nutrition",
            ];
            for i in 0..24 {
                let t = topics[rng.gen_range(0..topics.len())];
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO researchprojects VALUES ({i}, '{} study {i}', '{}', {}, '{}')",
                        t,
                        t.split(' ').next().unwrap_or("health"),
                        rng.gen_range(20_000..400_000),
                        date(rng, 1995, 1998),
                    ),
                );
            }
        }
        "Medicare" => {
            exec(&mut db, "CREATE TABLE claims (claim_id INT PRIMARY KEY, patient_name TEXT, item INT, amount DOUBLE, claim_date DATE)");
            exec(
                &mut db,
                "CREATE TABLE providers (provider_id INT PRIMARY KEY, name TEXT, specialty TEXT)",
            );
            for i in 0..40 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO claims VALUES ({i}, '{}', {}, {:.2}, '{}')",
                        person_name(rng),
                        rng.gen_range(1..900),
                        rng.gen_range(20.0..600.0),
                        date(rng, 1997, 1998),
                    ),
                );
            }
            let specialties = ["GP", "cardiology", "oncology", "radiology"];
            for i in 0..12 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO providers VALUES ({i}, 'Dr {}', '{}')",
                        person_name(rng),
                        specialties[rng.gen_range(0..specialties.len())],
                    ),
                );
            }
        }
        "Medibank" => {
            exec(&mut db, "CREATE TABLE members (member_id INT PRIMARY KEY, name TEXT, plan TEXT, premium DOUBLE)");
            let plans = ["basic", "family", "premium"];
            for i in 0..30 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO members VALUES ({i}, '{}', '{}', {:.2})",
                        person_name(rng),
                        plans[rng.gen_range(0..plans.len())],
                        rng.gen_range(40.0..220.0),
                    ),
                );
            }
        }
        other => panic!("unknown Oracle site {other}"),
    }
    db
}

/// The paper's §2.2 Royal Brisbane Hospital schema, data included.
fn build_rbh(db: &mut Database, rng: &mut StdRng) {
    exec(db, "CREATE TABLE patient (patient_id INT PRIMARY KEY, name TEXT NOT NULL, date_of_birth DATE, gender TEXT, address TEXT)");
    exec(db, "CREATE TABLE beds (bed_id INT PRIMARY KEY, location TEXT NOT NULL, default_patient_type TEXT)");
    exec(db, "CREATE TABLE occupancy (bed_id INT, patient_id INT, date_from DATE, date_to DATE, PRIMARY KEY (bed_id, patient_id))");
    exec(db, "CREATE TABLE history (patient_id INT, date_recorded DATE, description TEXT, description_notes TEXT, doctor_id INT)");
    exec(
        db,
        "CREATE TABLE doctors (employee_id INT PRIMARY KEY, qualification TEXT, position TEXT)",
    );
    exec(db, "CREATE TABLE researchprojects (project_id INT PRIMARY KEY, title TEXT NOT NULL, keywords TEXT, supervising_doctor INT, begin_date DATE, completed_date DATE, funding DOUBLE)");
    exec(db, "CREATE TABLE medical_students (student_id INT PRIMARY KEY, name TEXT NOT NULL, course TEXT, year INT)");
    exec(db, "CREATE TABLE researchprojectattendants (project_id INT, student_id INT, task TEXT, date_started DATE, date_completed DATE, results TEXT, PRIMARY KEY (project_id, student_id))");
    exec(db, "CREATE INDEX history_patient ON history (patient_id)");
    exec(
        db,
        "CREATE INDEX projects_title ON researchprojects (title)",
    );

    let n_patients = 60;
    for i in 0..n_patients {
        let gender = if rng.gen_bool(0.5) { "F" } else { "M" };
        exec(
            db,
            &format!(
                "INSERT INTO patient VALUES ({i}, '{}', '{}', '{gender}', '{} St, {}')",
                person_name(rng),
                date(rng, 1930, 1990),
                rng.gen_range(1..200),
                SUBURBS[rng.gen_range(0..SUBURBS.len())],
            ),
        );
    }
    let wards = ["ward A", "ward B", "ICU", "maternity", "oncology"];
    for i in 0..30 {
        exec(
            db,
            &format!(
                "INSERT INTO beds VALUES ({i}, '{}', '{}')",
                wards[rng.gen_range(0..wards.len())],
                if rng.gen_bool(0.3) {
                    "acute"
                } else {
                    "general"
                },
            ),
        );
    }
    for bed in 0..30 {
        let patient = rng.gen_range(0..n_patients);
        exec(
            db,
            &format!(
                "INSERT INTO occupancy VALUES ({bed}, {patient}, '{}', '{}')",
                date(rng, 1997, 1997),
                date(rng, 1998, 1998),
            ),
        );
    }
    for i in 0..12 {
        let positions = ["registrar", "consultant", "resident", "intern"];
        exec(
            db,
            &format!(
                "INSERT INTO doctors VALUES ({i}, 'MBBS', '{}')",
                positions[rng.gen_range(0..positions.len())],
            ),
        );
    }
    let ailments = [
        "influenza",
        "fracture",
        "hypertension",
        "appendicitis",
        "asthma",
        "migraine",
    ];
    for i in 0..120 {
        exec(
            db,
            &format!(
                "INSERT INTO history VALUES ({}, '{}', '{}', 'episode {i}', {})",
                rng.gen_range(0..n_patients),
                date(rng, 1996, 1998),
                ailments[rng.gen_range(0..ailments.len())],
                rng.gen_range(0..12),
            ),
        );
    }
    // The paper's example project, with a fixed budget the Funding()
    // translation test can assert on.
    exec(
        db,
        "INSERT INTO researchprojects VALUES (0, 'AIDS and drugs', 'aids, drugs, treatment', 3, '1996-02-01', NULL, 250000.0)",
    );
    let titles = [
        "burn recovery outcomes",
        "cardiac imaging",
        "antibiotic resistance",
        "palliative care",
        "trauma triage",
    ];
    for i in 1..16 {
        exec(
            db,
            &format!(
                "INSERT INTO researchprojects VALUES ({i}, '{}', '{}', {}, '{}', NULL, {})",
                titles[(i - 1) % titles.len()],
                titles[(i - 1) % titles.len()]
                    .split(' ')
                    .next()
                    .unwrap_or("x"),
                rng.gen_range(0..12),
                date(rng, 1994, 1998),
                rng.gen_range(30_000..500_000),
            ),
        );
    }
    let courses = ["MBBS", "Nursing", "Pharmacy"];
    for i in 0..20 {
        exec(
            db,
            &format!(
                "INSERT INTO medical_students VALUES ({i}, '{}', '{}', {})",
                person_name(rng),
                courses[rng.gen_range(0..courses.len())],
                rng.gen_range(1..=6),
            ),
        );
    }
    for student in 0..12 {
        let project = rng.gen_range(0..16);
        exec(
            db,
            &format!(
                "INSERT INTO researchprojectattendants VALUES ({project}, {student}, 'data collection', '{}', NULL, NULL)",
                date(rng, 1997, 1998),
            ),
        );
    }
}

// ---- mSQL sites ----------------------------------------------------------

fn build_msql(info: &DatabaseInfo, rng: &mut StdRng) -> Database {
    let mut db = Database::new(info.name, Dialect::MSql);
    match info.name {
        "Centre Link" => {
            exec(&mut db, "CREATE TABLE payments (client_id INT, name TEXT, benefit_type TEXT, amount DOUBLE)");
            let benefits = ["sickness allowance", "disability support", "carer payment"];
            for i in 0..30 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO payments VALUES ({i}, '{}', '{}', {:.2})",
                        person_name(rng),
                        benefits[rng.gen_range(0..benefits.len())],
                        rng.gen_range(150.0..900.0),
                    ),
                );
            }
        }
        "State Government Funding" => {
            exec(&mut db, "CREATE TABLE grants (grant_id INT PRIMARY KEY, recipient TEXT, program TEXT, amount DOUBLE, year INT)");
            let programs = ["hospital upgrade", "rural health", "medicare supplement"];
            let recipients = [
                "Royal Brisbane Hospital",
                "Prince Charles Hospital",
                "Medicare",
                "Ambulance",
            ];
            for i in 0..20 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO grants VALUES ({i}, '{}', '{}', {}, {})",
                        recipients[rng.gen_range(0..recipients.len())],
                        programs[rng.gen_range(0..programs.len())],
                        rng.gen_range(100_000..5_000_000),
                        rng.gen_range(1995..=1998),
                    ),
                );
            }
        }
        "RBH Workers Union" => {
            exec(&mut db, "CREATE TABLE members (member_id INT PRIMARY KEY, name TEXT, role TEXT, joined DATE)");
            let roles = ["nurse", "orderly", "technician", "administrator"];
            for i in 0..25 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO members VALUES ({i}, '{}', '{}', '{}')",
                        person_name(rng),
                        roles[rng.gen_range(0..roles.len())],
                        date(rng, 1988, 1998),
                    ),
                );
            }
        }
        other => panic!("unknown mSQL site {other}"),
    }
    db
}

// ---- DB2 sites -----------------------------------------------------------

fn build_db2(info: &DatabaseInfo, rng: &mut StdRng) -> Database {
    let mut db = Database::new(info.name, Dialect::Db2);
    match info.name {
        "Australian Taxation Office" => {
            exec(
                &mut db,
                "CREATE TABLE taxpayers (tfn INT PRIMARY KEY, name TEXT, bracket TEXT)",
            );
            exec(&mut db, "CREATE TABLE levies (tfn INT, year INT, medicare_levy DOUBLE, PRIMARY KEY (tfn, year))");
            for i in 0..30 {
                let brackets = ["low", "middle", "high"];
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO taxpayers VALUES ({i}, '{}', '{}')",
                        person_name(rng),
                        brackets[rng.gen_range(0..brackets.len())],
                    ),
                );
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO levies VALUES ({i}, 1997, {:.2})",
                        rng.gen_range(200.0..2500.0),
                    ),
                );
            }
        }
        "MBF" => {
            exec(&mut db, "CREATE TABLE policies (policy_id INT PRIMARY KEY, holder TEXT, cover TEXT, premium DOUBLE)");
            let covers = ["hospital", "extras", "combined"];
            for i in 0..25 {
                exec(
                    &mut db,
                    &format!(
                        "INSERT INTO policies VALUES ({i}, '{}', '{}', {:.2})",
                        person_name(rng),
                        covers[rng.gen_range(0..covers.len())],
                        rng.gen_range(50.0..300.0),
                    ),
                );
            }
        }
        other => panic!("unknown DB2 site {other}"),
    }
    db
}

// ---- object sites --------------------------------------------------------

fn build_object(info: &DatabaseInfo, rng: &mut StdRng) -> (ObjectStore, MethodTable) {
    let mut store = ObjectStore::new(info.name);
    let mut methods = MethodTable::new();
    match info.name {
        "RMIT Medical Research" => {
            store
                .define_class(
                    ClassDef::root("ResearchProject")
                        .attr("title", OType::Text)
                        .attr("keywords", OType::Text)
                        .attr("funding", OType::Double),
                )
                .expect("fresh class");
            store
                .define_class(
                    ClassDef::root("ClinicalTrial")
                        .extends("ResearchProject")
                        .attr("phase", OType::Int),
                )
                .expect("fresh class");
            let topics = ["gene therapy", "oncology screening", "vaccine response"];
            for i in 0..15 {
                let t = topics[rng.gen_range(0..topics.len())];
                let class = if i % 3 == 0 {
                    "ClinicalTrial"
                } else {
                    "ResearchProject"
                };
                let mut attrs = vec![
                    ("title".to_string(), OValue::Text(format!("{t} {i}"))),
                    ("keywords".to_string(), OValue::Text(t.into())),
                    (
                        "funding".to_string(),
                        OValue::Double(rng.gen_range(50_000.0..800_000.0)),
                    ),
                ];
                if class == "ClinicalTrial" {
                    attrs.push(("phase".to_string(), OValue::Int(rng.gen_range(1i64..4))));
                }
                store.create(class, attrs).expect("valid object");
            }
            methods.register("ResearchProject", "total_funding", |s, _r, _a| {
                let mut total = 0.0;
                for oid in s.instances_of("ResearchProject", true).unwrap_or_default() {
                    if let Ok(o) = s.object(oid) {
                        total += o.get("funding").as_double().unwrap_or(0.0);
                    }
                }
                Ok(OValue::Double(total))
            });
        }
        "Queensland Cancer Fund" => {
            store
                .define_class(
                    ClassDef::root("Grant")
                        .attr("recipient", OType::Text)
                        .attr("amount", OType::Double)
                        .attr("year", OType::Int),
                )
                .expect("fresh class");
            for _ in 0..12 {
                store
                    .create(
                        "Grant",
                        [
                            ("recipient".to_string(), OValue::Text(person_name(rng))),
                            (
                                "amount".to_string(),
                                OValue::Double(rng.gen_range(10_000.0..200_000.0)),
                            ),
                            (
                                "year".to_string(),
                                OValue::Int(rng.gen_range(1994i64..1999)),
                            ),
                        ],
                    )
                    .expect("valid object");
            }
        }
        "Ambulance" => {
            store
                .define_class(
                    ClassDef::root("Callout")
                        .attr("suburb", OType::Text)
                        .attr("priority", OType::Int)
                        .attr("minutes", OType::Int),
                )
                .expect("fresh class");
            for _ in 0..20 {
                store
                    .create(
                        "Callout",
                        [
                            (
                                "suburb".to_string(),
                                OValue::Text(SUBURBS[rng.gen_range(0..SUBURBS.len())].into()),
                            ),
                            ("priority".to_string(), OValue::Int(rng.gen_range(1i64..4))),
                            ("minutes".to_string(), OValue::Int(rng.gen_range(4i64..45))),
                        ],
                    )
                    .expect("valid object");
            }
        }
        "AMP" => {
            store
                .define_class(
                    ClassDef::root("Account")
                        .attr("holder", OType::Text)
                        .attr("balance", OType::Double),
                )
                .expect("fresh class");
            for _ in 0..18 {
                store
                    .create(
                        "Account",
                        [
                            ("holder".to_string(), OValue::Text(person_name(rng))),
                            (
                                "balance".to_string(),
                                OValue::Double(rng.gen_range(1_000.0..400_000.0)),
                            ),
                        ],
                    )
                    .expect("valid object");
            }
        }
        "Prince Charles Hospital" => {
            store
                .define_class(
                    ClassDef::root("Treatment")
                        .attr("name", OType::Text)
                        .attr("cost", OType::Double),
                )
                .expect("fresh class");
            store
                .define_class(
                    ClassDef::root("Ward")
                        .attr("name", OType::Text)
                        .attr("beds", OType::Int),
                )
                .expect("fresh class");
            let treatments = [
                ("dialysis", 850.0),
                ("bypass surgery", 24_000.0),
                ("chemotherapy", 3_200.0),
                ("physiotherapy", 120.0),
            ];
            for (name, cost) in treatments {
                store
                    .create(
                        "Treatment",
                        [
                            ("name".to_string(), OValue::Text(name.into())),
                            ("cost".to_string(), OValue::Double(cost)),
                        ],
                    )
                    .expect("valid object");
            }
            for (name, beds) in [("cardiac", 24i64), ("renal", 16), ("general", 40)] {
                store
                    .create(
                        "Ward",
                        [
                            ("name".to_string(), OValue::Text(name.into())),
                            ("beds".to_string(), OValue::Int(beds)),
                        ],
                    )
                    .expect("valid object");
            }
            methods.register("Treatment", "average_cost", |s, _r, _a| {
                let oids = s.instances_of("Treatment", true).unwrap_or_default();
                if oids.is_empty() {
                    return Ok(OValue::Null);
                }
                let sum: f64 = oids
                    .iter()
                    .filter_map(|o| s.object(*o).ok())
                    .filter_map(|o| o.get("cost").as_double())
                    .sum();
                Ok(OValue::Double(sum / oids.len() as f64))
            });
        }
        other => panic!("unknown object site {other}"),
    }
    (store, methods)
}

// ---- exported interfaces ----------------------------------------------

/// The exported interface of a relational site. RBH's matches the paper
/// (ResearchProjects + PatientHistory with the `Funding` and
/// `Description` functions); the rest export their primary table.
fn relational_interface(info: &DatabaseInfo) -> Vec<ExportedType> {
    match info.name {
        "Royal Brisbane Hospital" => vec![
            ExportedType {
                name: "ResearchProjects".into(),
                attributes: vec![
                    ("String".into(), "ResearchProjects.Title".into()),
                    ("string".into(), "ResearchProjects.keywords".into()),
                    ("Date".into(), "ResearchProjects.BeginDate".into()),
                ],
                functions: vec![ExportedFunction {
                    name: "Funding".into(),
                    params: vec!["ResearchProjects.Title x".into(), "Predicate(x)".into()],
                    returns: "real".into(),
                    description: "returns the budget of a given research project".into(),
                }],
                description: "research projects at the hospital".into(),
            },
            ExportedType {
                name: "PatientHistory".into(),
                attributes: vec![
                    ("string".into(), "Patient.Name".into()),
                    ("int".into(), "History.DateRecorded".into()),
                ],
                functions: vec![ExportedFunction {
                    name: "Description".into(),
                    params: vec![
                        "string Patient.Name".into(),
                        "int Date History.DateRecorded".into(),
                    ],
                    returns: "string".into(),
                    description: "the description of a patient sickness at a given date".into(),
                }],
                description: "patient medical histories".into(),
            },
        ],
        _ => {
            let table = match info.name {
                "QUT Research" => "ResearchProjects",
                "Medicare" => "Claims",
                "Medibank" => "Members",
                "Centre Link" => "Payments",
                "State Government Funding" => "Grants",
                "RBH Workers Union" => "Members",
                "Australian Taxation Office" => "Taxpayers",
                "MBF" => "Policies",
                _ => "Records",
            };
            vec![ExportedType {
                name: table.into(),
                attributes: Vec::new(),
                functions: Vec::new(),
                description: format!("{} of {}", table, info.name),
            }]
        }
    }
}

fn object_interface(info: &DatabaseInfo) -> Vec<ExportedType> {
    let class = match info.name {
        "RMIT Medical Research" => "ResearchProject",
        "Queensland Cancer Fund" => "Grant",
        "Ambulance" => "Callout",
        "AMP" => "Account",
        "Prince Charles Hospital" => "Treatment",
        _ => "Object",
    };
    vec![ExportedType {
        name: class.into(),
        attributes: Vec::new(),
        functions: Vec::new(),
        description: format!("{} extent of {}", class, info.name),
    }]
}

fn exec(db: &mut Database, sql: &str) {
    if let Err(e) = db.execute(sql) {
        panic!("seeding {}: {e}\n  sql: {sql}", db.name());
    }
}

/// Escape helper re-exported for deployment code building ad-hoc SQL.
pub fn escape(s: &str) -> String {
    sql_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::databases;

    #[test]
    fn every_database_builds() {
        for info in databases() {
            match build_database(&info, 1999) {
                BuiltSource::Relational(db, iface) => {
                    assert!(!db.table_names().is_empty(), "{} has tables", info.name);
                    assert!(!iface.is_empty());
                }
                BuiltSource::Object(store, _, iface) => {
                    assert!(store.class_count() > 0, "{} has classes", info.name);
                    assert!(store.object_count() > 0, "{} has objects", info.name);
                    assert!(!iface.is_empty());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let info = databases()
            .into_iter()
            .find(|d| d.name == "Royal Brisbane Hospital")
            .unwrap();
        let count = |seed| match build_database(&info, seed) {
            BuiltSource::Relational(mut db, _) => {
                let rs = db
                    .execute("SELECT name FROM patient ORDER BY patient_id LIMIT 5")
                    .unwrap();
                format!("{:?}", rs.rows().unwrap().rows)
            }
            _ => unreachable!(),
        };
        assert_eq!(count(1999), count(1999));
        assert_ne!(count(1999), count(2000));
    }

    #[test]
    fn rbh_has_the_papers_schema_and_example_project() {
        let info = databases()
            .into_iter()
            .find(|d| d.name == "Royal Brisbane Hospital")
            .unwrap();
        let BuiltSource::Relational(mut db, iface) = build_database(&info, 1999) else {
            panic!("RBH is relational");
        };
        assert_eq!(
            db.table_names(),
            vec![
                "beds",
                "doctors",
                "history",
                "medical_students",
                "occupancy",
                "patient",
                "researchprojectattendants",
                "researchprojects",
            ]
        );
        // The paper's Funding() example must return the seeded budget.
        let rs = db
            .execute("SELECT a.funding FROM researchprojects a WHERE a.title = 'AIDS and drugs'")
            .unwrap();
        assert_eq!(
            rs.rows().unwrap().rows,
            vec![vec![webfindit_relstore::Datum::Double(250000.0)]]
        );
        // Exported interface matches §2.2.
        assert_eq!(iface.len(), 2);
        assert_eq!(iface[0].name, "ResearchProjects");
        assert_eq!(iface[1].name, "PatientHistory");
    }

    #[test]
    fn msql_sites_reject_aggregates_natively() {
        let info = databases()
            .into_iter()
            .find(|d| d.name == "Centre Link")
            .unwrap();
        let BuiltSource::Relational(mut db, _) = build_database(&info, 1999) else {
            panic!("Centre Link is relational");
        };
        assert!(db.execute("SELECT COUNT(*) FROM payments").is_err());
        assert!(db
            .execute("SELECT amount FROM payments WHERE client_id = 1")
            .is_ok());
    }

    #[test]
    fn prince_charles_average_cost_routine() {
        let info = databases()
            .into_iter()
            .find(|d| d.name == "Prince Charles Hospital")
            .unwrap();
        let BuiltSource::Object(store, methods, _) = build_database(&info, 1999) else {
            panic!("PCH is an object site");
        };
        let avg = methods
            .invoke_on_class(&store, "Treatment", None, "average_cost", &[])
            .unwrap();
        let v = avg.as_double().unwrap();
        assert!((7042.5 - v).abs() < 1e-9, "avg cost {v}");
    }
}
