//! Query execution: pipelined pull-based operators over a physical plan.
//!
//! [`execute_select`] plans the statement with
//! [`crate::plan::plan_select`] and runs the resulting
//! [`PhysicalPlan`] tree with a pull-based (iterator-style) executor:
//! each operator produces one row per `next` call, so `LIMIT` stops
//! pulling — and therefore stops scanning — as soon as it is
//! satisfied. An [`ExecMetrics`] struct threads through the operator
//! tree counting rows/bytes scanned, index hits, and rows spilled to
//! sorts/aggregation, and records the name of every operator that ran.
//!
//! The previous vector-at-a-time interpreter is retained verbatim as
//! [`execute_select_naive`]: it is the semantic reference for the
//! differential property tests and the baseline for the E10 benchmark.

use crate::expr::{eval, AggFunc, BinOp, EvalContext, Expr};
use crate::plan::{
    conjuncts, detect_pk_point, eq_lowered, equi_join_offsets, expand_items, lookup, plan_select,
    Layout, PhysicalPlan, PkPoint, Sarg,
};
use crate::schema::TableSchema;
use crate::sql::ast::{Join, JoinKind, OrderKey, SelectItem, SelectStmt};
use crate::storage::Table;
use crate::types::{Datum, Row};
use crate::{RelError, RelResult};
use std::collections::{HashMap, HashSet, VecDeque};

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Render as a fixed-width text table (used by examples and the
    /// figure-regeneration binaries; Figure 6 is exactly this view).
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|d| d.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("{} row(s)\n", self.rows.len()));
        out
    }
}

/// Execution counters threaded through the pipelined operator tree.
///
/// Rows/bytes are counted where storage is actually touched (scans,
/// hash-build sides, index probes); `rows_spilled` counts rows
/// materialized by blocking operators (sort, hash aggregation);
/// `operators` lists every plan operator that ran, bottom-up, and is
/// guaranteed to match [`PhysicalPlan::operator_names`] of the plan
/// that produced it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Rows read from table heaps (scans, join build/probe reads).
    pub rows_scanned: u64,
    /// Approximate bytes of those rows.
    pub bytes_scanned: u64,
    /// Index entries returned by point lookups / range scans / probes.
    pub index_hits: u64,
    /// Rows materialized by blocking operators (sort, aggregation).
    pub rows_spilled: u64,
    /// Rows delivered to the client.
    pub rows_output: u64,
    /// Operators that actually ran, leaf first.
    pub operators: Vec<&'static str>,
}

struct LayoutRow<'a> {
    layout: &'a Layout,
    row: &'a [Datum],
}

impl EvalContext for LayoutRow<'_> {
    fn resolve_column(&self, table: Option<&str>, name: &str) -> RelResult<Datum> {
        Ok(self.row[self.layout.resolve(table, name)?].clone())
    }
}

/// Group context: resolves columns from a representative row and
/// aggregates from the precomputed per-group table.
struct GroupRow<'a> {
    layout: &'a Layout,
    representative: &'a [Datum],
    aggregates: &'a [(Expr, Datum)],
}

impl EvalContext for GroupRow<'_> {
    fn resolve_column(&self, table: Option<&str>, name: &str) -> RelResult<Datum> {
        Ok(self.representative[self.layout.resolve(table, name)?].clone())
    }

    fn resolve_aggregate(&self, expr: &Expr) -> RelResult<Datum> {
        self.aggregates
            .iter()
            .find(|(e, _)| e == expr)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| RelError::AggregateMisuse("aggregate not precomputed".into()))
    }
}

/// If `expr` is `col = literal` (either side), return them. Used only
/// by the naive reference executor; the planner's sarg extraction in
/// `plan.rs` is qualifier-aware.
fn eq_col_literal(expr: &Expr) -> Option<(&str, &Datum)> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = expr
    {
        match (&**left, &**right) {
            (Expr::Column { name, .. }, Expr::Literal(d)) => return Some((name, d)),
            (Expr::Literal(d), Expr::Column { name, .. }) => return Some((name, d)),
            _ => {}
        }
    }
    None
}

fn datum_bytes(d: &Datum) -> u64 {
    match d {
        Datum::Null | Datum::Bool(_) => 1,
        Datum::Text(s) => 8 + s.len() as u64,
        _ => 8,
    }
}

fn row_bytes(row: &[Datum]) -> u64 {
    row.iter().map(datum_bytes).sum()
}

// ---------------------------------------------------------------------
// Pipelined executor: lower half produces joined rows, upper half
// produces (visible row, hidden sort keys) pairs.
// ---------------------------------------------------------------------

trait RowOp {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>>;
}

trait KeyedOp {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<(Row, Vec<Datum>)>>;
}

struct SeqScanExec<'a> {
    iter: Box<dyn Iterator<Item = &'a Row> + 'a>,
}

impl RowOp for SeqScanExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>> {
        match self.iter.next() {
            Some(r) => {
                m.rows_scanned += 1;
                m.bytes_scanned += row_bytes(r);
                Ok(Some(r.clone()))
            }
            None => Ok(None),
        }
    }
}

struct IxScanExec<'a> {
    table: &'a Table,
    slots: std::vec::IntoIter<usize>,
}

impl RowOp for IxScanExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>> {
        for slot in self.slots.by_ref() {
            if let Some(r) = self.table.row(slot) {
                m.rows_scanned += 1;
                m.bytes_scanned += row_bytes(r);
                return Ok(Some(r.clone()));
            }
        }
        Ok(None)
    }
}

struct FilterExec<'a> {
    input: Box<dyn RowOp + 'a>,
    pred: &'a Expr,
    layout: &'a Layout,
}

impl RowOp for FilterExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>> {
        while let Some(row) = self.input.next(m)? {
            let ctx = LayoutRow {
                layout: self.layout,
                row: &row,
            };
            if matches!(eval(self.pred, &ctx)?, Datum::Bool(true)) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct NlJoinExec<'a> {
    input: Box<dyn RowOp + 'a>,
    right_rows: Vec<&'a Row>,
    right_width: usize,
    kind: JoinKind,
    on: Option<&'a Expr>,
    layout: &'a Layout,
    cur_left: Option<Row>,
    idx: usize,
    matched: bool,
}

impl RowOp for NlJoinExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>> {
        loop {
            if self.cur_left.is_none() {
                match self.input.next(m)? {
                    Some(l) => {
                        self.cur_left = Some(l);
                        self.idx = 0;
                        self.matched = false;
                    }
                    None => return Ok(None),
                }
            }
            let l = self.cur_left.as_ref().expect("left row set above");
            while self.idx < self.right_rows.len() {
                let r = self.right_rows[self.idx];
                self.idx += 1;
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                match (self.kind, self.on) {
                    (JoinKind::Cross, _) => return Ok(Some(row)),
                    (_, Some(on)) => {
                        let ctx = LayoutRow {
                            layout: self.layout,
                            row: &row,
                        };
                        if matches!(eval(on, &ctx)?, Datum::Bool(true)) {
                            self.matched = true;
                            return Ok(Some(row));
                        }
                    }
                    (_, None) => return Ok(Some(row)),
                }
            }
            // Right side exhausted for this left row.
            let l = self.cur_left.take().expect("left row present");
            if self.kind == JoinKind::Left && !self.matched {
                let mut row = l;
                row.extend(std::iter::repeat_n(Datum::Null, self.right_width));
                return Ok(Some(row));
            }
        }
    }
}

struct HashJoinExec<'a> {
    input: Box<dyn RowOp + 'a>,
    ht: HashMap<String, Vec<&'a Row>>,
    left_off: usize,
    pending: VecDeque<Row>,
}

impl RowOp for HashJoinExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            match self.input.next(m)? {
                None => return Ok(None),
                Some(l) => {
                    if l[self.left_off].is_null() {
                        continue; // NULL never equi-matches
                    }
                    let mut key = String::new();
                    l[self.left_off].group_key(&mut key);
                    if let Some(matches) = self.ht.get(&key) {
                        for r in matches {
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            self.pending.push_back(row);
                        }
                    }
                }
            }
        }
    }
}

struct IxJoinExec<'a> {
    input: Box<dyn RowOp + 'a>,
    right: &'a Table,
    left_off: usize,
    right_col: usize,
    pending: VecDeque<Row>,
}

impl RowOp for IxJoinExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            match self.input.next(m)? {
                None => return Ok(None),
                Some(l) => {
                    if l[self.left_off].is_null() {
                        continue;
                    }
                    let slots = self
                        .right
                        .index_lookup(self.right_col, &l[self.left_off])
                        .unwrap_or_default();
                    m.index_hits += slots.len() as u64;
                    for s in slots {
                        if let Some(r) = self.right.row(s) {
                            m.rows_scanned += 1;
                            m.bytes_scanned += row_bytes(r);
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            self.pending.push_back(row);
                        }
                    }
                }
            }
        }
    }
}

struct ProjectExec<'a> {
    input: Box<dyn RowOp + 'a>,
    select_exprs: &'a [(Expr, String)],
    columns: &'a [String],
    order_by: &'a [OrderKey],
    layout: &'a Layout,
}

impl KeyedOp for ProjectExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<(Row, Vec<Datum>)>> {
        match self.input.next(m)? {
            None => Ok(None),
            Some(row) => {
                let ctx = LayoutRow {
                    layout: self.layout,
                    row: &row,
                };
                let mut out = Vec::with_capacity(self.select_exprs.len());
                for (e, _) in self.select_exprs {
                    out.push(eval(e, &ctx)?);
                }
                let mut keys = Vec::with_capacity(self.order_by.len());
                for k in self.order_by {
                    keys.push(order_key_value(&k.expr, &ctx, self.columns, &out)?);
                }
                Ok(Some((out, keys)))
            }
        }
    }
}

struct HashAggregateExec<'a> {
    input: Box<dyn RowOp + 'a>,
    group_by: &'a [Expr],
    having: Option<&'a Expr>,
    select_exprs: &'a [(Expr, String)],
    columns: &'a [String],
    order_by: &'a [OrderKey],
    layout: &'a Layout,
    out: Option<std::vec::IntoIter<(Row, Vec<Datum>)>>,
}

impl KeyedOp for HashAggregateExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<(Row, Vec<Datum>)>> {
        if self.out.is_none() {
            // Blocking operator: drain the input, then group.
            let mut rows = Vec::new();
            while let Some(r) = self.input.next(m)? {
                rows.push(r);
            }
            m.rows_spilled += rows.len() as u64;
            let produced = aggregate_rows(
                &rows,
                self.group_by,
                self.having,
                self.select_exprs,
                self.order_by,
                self.columns,
                self.layout,
            )?;
            self.out = Some(produced.into_iter());
        }
        Ok(self.out.as_mut().expect("materialized above").next())
    }
}

struct DistinctExec<'a> {
    input: Box<dyn KeyedOp + 'a>,
    seen: HashSet<String>,
}

impl KeyedOp for DistinctExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<(Row, Vec<Datum>)>> {
        while let Some((row, keys)) = self.input.next(m)? {
            let mut key = String::new();
            for d in &row {
                d.group_key(&mut key);
            }
            if self.seen.insert(key) {
                return Ok(Some((row, keys)));
            }
        }
        Ok(None)
    }
}

struct SortExec<'a> {
    input: Box<dyn KeyedOp + 'a>,
    descs: Vec<bool>,
    out: Option<std::vec::IntoIter<(Row, Vec<Datum>)>>,
}

impl KeyedOp for SortExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<(Row, Vec<Datum>)>> {
        if self.out.is_none() {
            let mut all = Vec::new();
            while let Some(pair) = self.input.next(m)? {
                all.push(pair);
            }
            m.rows_spilled += all.len() as u64;
            let descs = &self.descs;
            all.sort_by(|(_, ka), (_, kb)| {
                for (i, desc) in descs.iter().enumerate() {
                    let ord = ka[i].sort_cmp(&kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.out = Some(all.into_iter());
        }
        Ok(self.out.as_mut().expect("materialized above").next())
    }
}

struct LimitExec<'a> {
    input: Box<dyn KeyedOp + 'a>,
    remaining: u64,
}

impl KeyedOp for LimitExec<'_> {
    fn next(&mut self, m: &mut ExecMetrics) -> RelResult<Option<(Row, Vec<Datum>)>> {
        if self.remaining == 0 {
            return Ok(None); // stop pulling — upstream scans stop too
        }
        match self.input.next(m)? {
            Some(pair) => {
                self.remaining -= 1;
                Ok(Some(pair))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

/// Build the row-producing lower half of the pipeline.
fn build_rowop<'a>(
    plan: &'a PhysicalPlan,
    tables: &'a HashMap<String, Table>,
    m: &mut ExecMetrics,
) -> RelResult<Box<dyn RowOp + 'a>> {
    match plan {
        PhysicalPlan::SeqScan(n) => {
            let t = lookup(tables, &n.table)?;
            m.operators.push(plan.name());
            Ok(Box::new(SeqScanExec {
                iter: Box::new(t.scan().map(|(_, r)| r)),
            }))
        }
        PhysicalPlan::IxScan(n) => {
            let t = lookup(tables, &n.table)?;
            let slots = match &n.sarg {
                Sarg::Eq(v) => t.index_lookup(n.col_idx, v),
                Sarg::Range { lo, hi } => t.index_range(n.col_idx, lo.as_ref(), hi.as_ref()),
            }
            .unwrap_or_default();
            m.index_hits += slots.len() as u64;
            m.operators.push(plan.name());
            Ok(Box::new(IxScanExec {
                table: t,
                slots: slots.into_iter(),
            }))
        }
        PhysicalPlan::NlJoin(n) => {
            let input = build_rowop(&n.input, tables, m)?;
            let right = lookup(tables, &n.table)?;
            let right_rows: Vec<&Row> = right.scan().map(|(_, r)| r).collect();
            m.rows_scanned += right_rows.len() as u64;
            m.bytes_scanned += right_rows.iter().map(|r| row_bytes(r)).sum::<u64>();
            m.operators.push(plan.name());
            Ok(Box::new(NlJoinExec {
                input,
                right_rows,
                right_width: n.right_width,
                kind: n.kind,
                on: n.on.as_ref(),
                layout: &n.layout,
                cur_left: None,
                idx: 0,
                matched: false,
            }))
        }
        PhysicalPlan::HashJoin(n) => {
            let input = build_rowop(&n.input, tables, m)?;
            let right = lookup(tables, &n.table)?;
            let mut ht: HashMap<String, Vec<&Row>> = HashMap::new();
            for (_, r) in right.scan() {
                m.rows_scanned += 1;
                m.bytes_scanned += row_bytes(r);
                if r[n.right_col].is_null() {
                    continue;
                }
                let mut key = String::new();
                r[n.right_col].group_key(&mut key);
                ht.entry(key).or_default().push(r);
            }
            m.operators.push(plan.name());
            Ok(Box::new(HashJoinExec {
                input,
                ht,
                left_off: n.left_off,
                pending: VecDeque::new(),
            }))
        }
        PhysicalPlan::IxJoin(n) => {
            let input = build_rowop(&n.input, tables, m)?;
            let right = lookup(tables, &n.table)?;
            m.operators.push(plan.name());
            Ok(Box::new(IxJoinExec {
                input,
                right,
                left_off: n.left_off,
                right_col: n.right_col,
                pending: VecDeque::new(),
            }))
        }
        PhysicalPlan::Filter(n) => {
            let input = build_rowop(&n.input, tables, m)?;
            m.operators.push(plan.name());
            Ok(Box::new(FilterExec {
                input,
                pred: &n.pred,
                layout: &n.layout,
            }))
        }
        other => Err(RelError::Unsupported(format!(
            "operator {} cannot feed a row pipeline",
            other.name()
        ))),
    }
}

/// Build the keyed upper half of the pipeline.
fn build_keyed<'a>(
    plan: &'a PhysicalPlan,
    tables: &'a HashMap<String, Table>,
    m: &mut ExecMetrics,
) -> RelResult<Box<dyn KeyedOp + 'a>> {
    match plan {
        PhysicalPlan::Limit(n) => {
            let input = build_keyed(&n.input, tables, m)?;
            m.operators.push(plan.name());
            Ok(Box::new(LimitExec {
                input,
                remaining: n.n,
            }))
        }
        PhysicalPlan::Sort(n) => {
            let input = build_keyed(&n.input, tables, m)?;
            m.operators.push(plan.name());
            Ok(Box::new(SortExec {
                input,
                descs: n.keys.iter().map(|k| k.desc).collect(),
                out: None,
            }))
        }
        PhysicalPlan::Distinct(n) => {
            let input = build_keyed(&n.input, tables, m)?;
            m.operators.push(plan.name());
            Ok(Box::new(DistinctExec {
                input,
                seen: HashSet::new(),
            }))
        }
        PhysicalPlan::Project(n) => {
            let input = build_rowop(&n.input, tables, m)?;
            m.operators.push(plan.name());
            Ok(Box::new(ProjectExec {
                input,
                select_exprs: &n.select_exprs,
                columns: &n.columns,
                order_by: &n.order_by,
                layout: &n.layout,
            }))
        }
        PhysicalPlan::HashAggregate(n) => {
            let input = build_rowop(&n.input, tables, m)?;
            m.operators.push(plan.name());
            Ok(Box::new(HashAggregateExec {
                input,
                group_by: &n.group_by,
                having: n.having.as_ref(),
                select_exprs: &n.select_exprs,
                columns: &n.columns,
                order_by: &n.order_by,
                layout: &n.layout,
                out: None,
            }))
        }
        other => Err(RelError::Unsupported(format!(
            "plan root {} lacks a projection",
            other.name()
        ))),
    }
}

/// Direct interpreter for the planner's point-lookup shape
/// (`project ← filter ← index scan` with an equality sarg), bypassing
/// the boxed-operator pipeline. A PK point query touches at most one
/// row, so the pipeline's setup cost (three heap-allocated operators
/// plus a row clone per scan) dominates its runtime; this path
/// evaluates the same filter and projection expressions borrowing the
/// stored row in place. Metrics are recorded exactly as the pipeline
/// operators record them — same counters, same leaf-first `operators`
/// list — so callers cannot tell which interpreter ran.
fn execute_point_lookup(
    plan: &PhysicalPlan,
    tables: &HashMap<String, Table>,
) -> Option<RelResult<(ResultSet, ExecMetrics)>> {
    let PhysicalPlan::Project(p) = plan else {
        return None;
    };
    if !p.order_by.is_empty() {
        return None;
    }
    let filter_plan = p.input.as_ref();
    let PhysicalPlan::Filter(f) = filter_plan else {
        return None;
    };
    let scan_plan = f.input.as_ref();
    let PhysicalPlan::IxScan(ix) = scan_plan else {
        return None;
    };
    let Sarg::Eq(key) = &ix.sarg else {
        return None;
    };
    Some((|| {
        let t = lookup(tables, &ix.table)?;
        let mut m = ExecMetrics::default();
        let slots = t.index_lookup(ix.col_idx, key).unwrap_or_default();
        m.index_hits += slots.len() as u64;
        m.operators.push(scan_plan.name());
        m.operators.push(filter_plan.name());
        m.operators.push(plan.name());
        let mut rows = Vec::new();
        for slot in slots {
            let Some(r) = t.row(slot) else { continue };
            m.rows_scanned += 1;
            m.bytes_scanned += row_bytes(r);
            let ctx = LayoutRow {
                layout: &f.layout,
                row: r,
            };
            if !matches!(eval(&f.pred, &ctx)?, Datum::Bool(true)) {
                continue;
            }
            let ctx = LayoutRow {
                layout: &p.layout,
                row: r,
            };
            let mut out = Vec::with_capacity(p.select_exprs.len());
            for (e, _) in &p.select_exprs {
                out.push(eval(e, &ctx)?);
            }
            m.rows_output += 1;
            rows.push(out);
        }
        Ok((
            ResultSet {
                columns: plan.output_columns().to_vec(),
                rows,
            },
            m,
        ))
    })())
}

/// Execute a previously planned [`PhysicalPlan`], returning the result
/// set and the execution metrics it generated.
pub fn execute_plan(
    plan: &PhysicalPlan,
    tables: &HashMap<String, Table>,
) -> RelResult<(ResultSet, ExecMetrics)> {
    if let Some(result) = execute_point_lookup(plan, tables) {
        return result;
    }
    let mut m = ExecMetrics::default();
    let mut op = build_keyed(plan, tables, &mut m)?;
    let mut rows = Vec::new();
    while let Some((row, _)) = op.next(&mut m)? {
        m.rows_output += 1;
        rows.push(row);
    }
    drop(op);
    Ok((
        ResultSet {
            columns: plan.output_columns().to_vec(),
            rows,
        },
        m,
    ))
}

/// Execute a SELECT against the given tables (plan + pipeline).
pub fn execute_select(stmt: &SelectStmt, tables: &HashMap<String, Table>) -> RelResult<ResultSet> {
    execute_select_with_metrics(stmt, tables).map(|(rs, _)| rs)
}

/// Evaluation context for the AST-level point lookup: resolves columns
/// against the single FROM table's schema directly, with the same
/// case-folding [`Layout::resolve`] applies, but without materializing
/// a `Layout` (whose per-column `String` clones dominate a one-row
/// query).
struct SchemaRow<'a> {
    binding: &'a str,
    schema: &'a TableSchema,
    row: &'a [Datum],
}

impl EvalContext for SchemaRow<'_> {
    fn resolve_column(&self, table: Option<&str>, name: &str) -> RelResult<Datum> {
        if let Some(t) = table {
            if !t.eq_ignore_ascii_case(self.binding) {
                return Err(RelError::NoSuchTable(t.to_ascii_lowercase()));
            }
        }
        let i = self
            .schema
            .columns
            .iter()
            .position(|c| eq_lowered(&c.name, name))
            .ok_or_else(|| RelError::NoSuchColumn(name.to_ascii_lowercase()))?;
        Ok(self.row[i].clone())
    }
}

/// Run a detected PK point lookup straight off the AST: no plan tree,
/// no `Layout`, no operator boxes. Returns `None` (fall back to the
/// planned pipeline) when the select list needs layout expansion
/// (wildcards). Metrics are recorded exactly as the planned pipeline
/// would record them for the same statement — including the operator
/// names of the tree [`plan_select`] would have built — so EXPLAIN,
/// `last_exec_metrics`, and the differential tests cannot tell the
/// paths apart.
fn execute_pk_point_ast(
    stmt: &SelectStmt,
    pk: &PkPoint<'_>,
) -> Option<RelResult<(ResultSet, ExecMetrics)>> {
    let mut select: Vec<(&Expr, String)> = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        let SelectItem::Expr { expr, alias } = item else {
            return None;
        };
        // Output naming mirrors `expand_items` for non-wildcard items.
        let name = match alias {
            Some(a) => a.to_ascii_lowercase(),
            None => match expr {
                Expr::Column { name, .. } => name.clone(),
                other => other.to_sql().to_ascii_lowercase(),
            },
        };
        select.push((expr, name));
    }
    Some((|| {
        let t = pk.base;
        let mut m = ExecMetrics::default();
        let slots = t.index_lookup(pk.col_idx, pk.key).unwrap_or_default();
        m.index_hits += slots.len() as u64;
        // The operator list of the point-lookup tree `plan_select`
        // commits to under these exact preconditions; the
        // explain/metrics equivalence tests pin this correspondence.
        m.operators.push("index scan");
        m.operators.push("filter");
        m.operators.push("project");
        let columns: Vec<String> = select.iter().map(|(_, n)| n.clone()).collect();
        let binding = stmt.from.binding();
        let mut rows = Vec::new();
        for slot in slots {
            let Some(r) = t.row(slot) else { continue };
            m.rows_scanned += 1;
            m.bytes_scanned += row_bytes(r);
            let ctx = SchemaRow {
                binding,
                schema: &t.schema,
                row: r,
            };
            if !matches!(eval(pk.filter, &ctx)?, Datum::Bool(true)) {
                continue;
            }
            let mut out = Vec::with_capacity(select.len());
            for (e, _) in &select {
                out.push(eval(e, &ctx)?);
            }
            m.rows_output += 1;
            rows.push(out);
        }
        Ok((ResultSet { columns, rows }, m))
    })())
}

/// Execute a SELECT and return the [`ExecMetrics`] alongside the rows.
///
/// Single-table primary-key equality lookups skip plan construction
/// entirely (see [`execute_pk_point_ast`]); everything else is planned
/// with [`plan_select`] and run through the pipelined executor.
pub fn execute_select_with_metrics(
    stmt: &SelectStmt,
    tables: &HashMap<String, Table>,
) -> RelResult<(ResultSet, ExecMetrics)> {
    if let Some(pk) = detect_pk_point(stmt, tables) {
        if let Some(result) = execute_pk_point_ast(stmt, &pk) {
            return result;
        }
    }
    let plan = plan_select(stmt, tables)?;
    execute_plan(&plan, tables)
}

/// Describe the plan `execute_select` would run, without executing it.
///
/// This renders the *same* [`PhysicalPlan`] the executor runs — there
/// is no separate description path to drift.
pub fn explain_select(
    stmt: &SelectStmt,
    tables: &HashMap<String, Table>,
) -> RelResult<Vec<String>> {
    Ok(plan_select(stmt, tables)?.render())
}

/// Evaluate an ORDER BY key: a bare column naming an output alias sorts
/// by the output column; otherwise the expression is evaluated in `ctx`.
fn order_key_value(
    expr: &Expr,
    ctx: &dyn EvalContext,
    columns: &[String],
    out_row: &[Datum],
) -> RelResult<Datum> {
    if let Expr::Column { table: None, name } = expr {
        if let Some(i) = columns.iter().position(|c| c == name) {
            return Ok(out_row[i].clone());
        }
    }
    eval(expr, ctx)
}

/// Group `rows`, compute aggregates, apply HAVING, and evaluate the
/// select list and ORDER BY keys per surviving group. Shared between
/// the pipelined `HashAggregateExec` and the naive reference executor.
#[allow(clippy::too_many_arguments)]
fn aggregate_rows(
    rows: &[Row],
    group_by: &[Expr],
    having: Option<&Expr>,
    select_exprs: &[(Expr, String)],
    order_by: &[OrderKey],
    columns: &[String],
    layout: &Layout,
) -> RelResult<Vec<(Row, Vec<Datum>)>> {
    let groups = build_groups(rows, group_by, layout)?;
    let mut produced = Vec::with_capacity(groups.len());
    for group in groups {
        let aggregates = compute_aggregates(&group, select_exprs, having, order_by, layout)?;
        let representative: &[Datum] = group.first().map(|r| r.as_slice()).unwrap_or(&[]);
        // An empty representative only happens for zero-row ungrouped
        // aggregates; column references would error there, which is
        // the correct SQL behaviour for e.g. `SELECT x, COUNT(*)`.
        let dummy: Row;
        let rep = if representative.is_empty() {
            dummy = vec![Datum::Null; layout.width];
            &dummy[..]
        } else {
            representative
        };
        let ctx = GroupRow {
            layout,
            representative: rep,
            aggregates: &aggregates,
        };
        if let Some(having) = having {
            if !matches!(eval(having, &ctx)?, Datum::Bool(true)) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(select_exprs.len());
        for (e, _) in select_exprs {
            out.push(eval(e, &ctx)?);
        }
        let mut keys = Vec::with_capacity(order_by.len());
        for k in order_by {
            keys.push(order_key_value(&k.expr, &ctx, columns, &out)?);
        }
        produced.push((out, keys));
    }
    Ok(produced)
}

/// Execute a SELECT with the original vector-at-a-time interpreter.
///
/// Retained as the semantic reference: the differential property tests
/// assert the pipelined executor produces the same rows, and the E10
/// benchmark uses it as the baseline. Indexes are only consulted for
/// single-table equality predicates, matching the pre-planner
/// behaviour.
pub fn execute_select_naive(
    stmt: &SelectStmt,
    tables: &HashMap<String, Table>,
) -> RelResult<ResultSet> {
    // ---- FROM + JOIN -------------------------------------------------
    let base = lookup(tables, &stmt.from.name)?;
    let mut layout = Layout::new();
    layout.push(
        stmt.from.binding().to_ascii_lowercase(),
        base.schema.column_names(),
    );

    // Index-assisted base scan: single-table query with an indexable
    // equality conjunct.
    let mut rows: Vec<Row> = if stmt.joins.is_empty() {
        let mut indexed: Option<Vec<Row>> = None;
        if let Some(filter) = &stmt.filter {
            for c in conjuncts(filter) {
                if let Some((col, value)) = eq_col_literal(c) {
                    if let Some(ci) = base.schema.column_index(col) {
                        if let Some(slots) = base.index_lookup(ci, value) {
                            indexed = Some(
                                slots
                                    .into_iter()
                                    .filter_map(|s| base.row(s).cloned())
                                    .collect(),
                            );
                            break;
                        }
                    }
                }
            }
        }
        indexed.unwrap_or_else(|| base.scan().map(|(_, r)| r.clone()).collect())
    } else {
        base.scan().map(|(_, r)| r.clone()).collect()
    };

    for join in &stmt.joins {
        rows = apply_join(rows, &mut layout, join, tables)?;
    }

    // ---- WHERE --------------------------------------------------------
    if let Some(filter) = &stmt.filter {
        if filter.contains_aggregate() {
            return Err(RelError::AggregateMisuse(
                "aggregate in WHERE; use HAVING".into(),
            ));
        }
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = LayoutRow {
                layout: &layout,
                row: &row,
            };
            if matches!(eval(filter, &ctx)?, Datum::Bool(true)) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // ---- Grouping / projection ----------------------------------------
    let select_exprs = expand_items(&stmt.items, &layout)?;
    let has_aggregates = select_exprs.iter().any(|(e, _)| e.contains_aggregate())
        || stmt
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false)
        || stmt.order_by.iter().any(|k| k.expr.contains_aggregate());

    let columns: Vec<String> = select_exprs.iter().map(|(_, n)| n.clone()).collect();

    // Each produced row carries hidden sort keys after the visible columns.
    let mut produced: Vec<(Row, Vec<Datum>)> = if has_aggregates || !stmt.group_by.is_empty() {
        aggregate_rows(
            &rows,
            &stmt.group_by,
            stmt.having.as_ref(),
            &select_exprs,
            &stmt.order_by,
            &columns,
            &layout,
        )?
    } else {
        let mut produced = Vec::with_capacity(rows.len());
        for row in &rows {
            let ctx = LayoutRow {
                layout: &layout,
                row,
            };
            let mut out = Vec::with_capacity(select_exprs.len());
            for (e, _) in &select_exprs {
                out.push(eval(e, &ctx)?);
            }
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for k in &stmt.order_by {
                keys.push(order_key_value(&k.expr, &ctx, &columns, &out)?);
            }
            produced.push((out, keys));
        }
        produced
    };

    // ---- DISTINCT -------------------------------------------------------
    if stmt.distinct {
        let mut seen = HashSet::new();
        produced.retain(|(row, _)| {
            let mut key = String::new();
            for d in row {
                d.group_key(&mut key);
            }
            seen.insert(key)
        });
    }

    // ---- ORDER BY -------------------------------------------------------
    if !stmt.order_by.is_empty() {
        let descs: Vec<bool> = stmt.order_by.iter().map(|k| k.desc).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = ka[i].sort_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // ---- LIMIT ----------------------------------------------------------
    if let Some(n) = stmt.limit {
        produced.truncate(n as usize);
    }

    Ok(ResultSet {
        columns,
        rows: produced.into_iter().map(|(r, _)| r).collect(),
    })
}

/// Attach one join step to the current row set (naive executor).
fn apply_join(
    left_rows: Vec<Row>,
    layout: &mut Layout,
    join: &Join,
    tables: &HashMap<String, Table>,
) -> RelResult<Vec<Row>> {
    let right = lookup(tables, &join.table.name)?;
    let right_binding = join.table.binding().to_ascii_lowercase();
    let right_cols = right.schema.column_names();
    let right_width = right_cols.len();

    // Try the hash-join fast path for inner equi-joins.
    let equi = match (&join.kind, &join.on) {
        (JoinKind::Inner, Some(on)) => equi_join_offsets(on, layout, &right_binding, right),
        _ => None,
    };

    layout.push(right_binding.clone(), right_cols);

    let right_rows: Vec<&Row> = right.scan().map(|(_, r)| r).collect();

    let mut out = Vec::new();
    match join.kind {
        JoinKind::Cross => {
            for l in &left_rows {
                for r in &right_rows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
        }
        JoinKind::Inner => {
            if let Some((l_off, r_off)) = equi {
                // Hash join: build on the right side.
                let mut ht: HashMap<String, Vec<&Row>> = HashMap::new();
                for r in &right_rows {
                    if r[r_off].is_null() {
                        continue; // NULL never equi-matches
                    }
                    let mut key = String::new();
                    r[r_off].group_key(&mut key);
                    ht.entry(key).or_default().push(r);
                }
                for l in &left_rows {
                    if l[l_off].is_null() {
                        continue;
                    }
                    let mut key = String::new();
                    l[l_off].group_key(&mut key);
                    if let Some(matches) = ht.get(&key) {
                        for r in matches {
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            out.push(row);
                        }
                    }
                }
            } else {
                let on = join.on.as_ref().expect("inner join has ON");
                for l in &left_rows {
                    for r in &right_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        let ctx = LayoutRow { layout, row: &row };
                        if matches!(eval(on, &ctx)?, Datum::Bool(true)) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        JoinKind::Left => {
            let on = join.on.as_ref().expect("left join has ON");
            for l in &left_rows {
                let mut matched = false;
                for r in &right_rows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    let ctx = LayoutRow { layout, row: &row };
                    if matches!(eval(on, &ctx)?, Datum::Bool(true)) {
                        matched = true;
                        out.push(row);
                    }
                }
                if !matched {
                    let mut row = l.clone();
                    row.extend(std::iter::repeat_n(Datum::Null, right_width));
                    out.push(row);
                }
            }
        }
    }
    Ok(out)
}

/// Partition rows into groups by the GROUP BY keys (one all-encompassing
/// group when the key list is empty).
fn build_groups(rows: &[Row], group_by: &[Expr], layout: &Layout) -> RelResult<Vec<Vec<Row>>> {
    if group_by.is_empty() {
        return Ok(vec![rows.to_vec()]);
    }
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<Row>> = HashMap::new();
    for row in rows {
        let ctx = LayoutRow { layout, row };
        let mut key = String::new();
        for g in group_by {
            eval(g, &ctx)?.group_key(&mut key);
        }
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row.clone());
    }
    Ok(order
        .into_iter()
        .map(|k| groups.remove(&k).expect("key present"))
        .collect())
}

/// Compute every aggregate appearing in SELECT, HAVING, or ORDER BY for
/// one group.
fn compute_aggregates(
    group: &[Row],
    select_exprs: &[(Expr, String)],
    having: Option<&Expr>,
    order_by: &[OrderKey],
    layout: &Layout,
) -> RelResult<Vec<(Expr, Datum)>> {
    let mut agg_exprs: Vec<&Expr> = Vec::new();
    for (e, _) in select_exprs {
        e.collect_aggregates(&mut agg_exprs);
    }
    if let Some(h) = having {
        h.collect_aggregates(&mut agg_exprs);
    }
    for k in order_by {
        k.expr.collect_aggregates(&mut agg_exprs);
    }

    let mut out = Vec::with_capacity(agg_exprs.len());
    for agg in agg_exprs {
        let (func, arg, distinct) = match agg {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => (*func, arg.as_deref(), *distinct),
            _ => unreachable!("collect_aggregates returns aggregates"),
        };
        let value = run_aggregate(func, arg, distinct, group, layout)?;
        out.push((agg.clone(), value));
    }
    Ok(out)
}

fn run_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    group: &[Row],
    layout: &Layout,
) -> RelResult<Datum> {
    // Gather the non-null argument values (COUNT(*) counts rows directly).
    let mut values: Vec<Datum> = Vec::new();
    match arg {
        None => {
            return Ok(Datum::Int(group.len() as i64));
        }
        Some(a) => {
            if a.contains_aggregate() {
                return Err(RelError::AggregateMisuse("nested aggregate".into()));
            }
            for row in group {
                let ctx = LayoutRow { layout, row };
                let v = eval(a, &ctx)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|v| {
            let mut k = String::new();
            v.group_key(&mut k);
            seen.insert(k)
        });
    }
    Ok(match func {
        AggFunc::Count => Datum::Int(values.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                Datum::Null
            } else {
                let mut all_int = true;
                let mut sum = 0f64;
                let mut isum = 0i64;
                for v in &values {
                    match v {
                        Datum::Int(i) => {
                            isum = isum.wrapping_add(*i);
                            sum += *i as f64;
                        }
                        Datum::Double(d) => {
                            all_int = false;
                            sum += d;
                        }
                        other => {
                            return Err(RelError::TypeMismatch {
                                expected: "numeric aggregate input".into(),
                                found: format!("{other}"),
                            })
                        }
                    }
                }
                if func == AggFunc::Sum {
                    if all_int {
                        Datum::Int(isum)
                    } else {
                        Datum::Double(sum)
                    }
                } else {
                    Datum::Double(sum / values.len() as f64)
                }
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Datum> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Datum::Null)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::sql::ast::Statement;
    use crate::sql::parse_statement;
    use crate::types::DataType;

    fn catalog() -> HashMap<String, Table> {
        let mut patient = Table::new(TableSchema::new(
            "patient",
            vec![
                Column::new("patient_id", DataType::Int).primary_key(),
                Column::new("name", DataType::Text),
                Column::new("gender", DataType::Text),
            ],
        ));
        for (id, name, g) in [
            (1, "Alice", "F"),
            (2, "Bob", "M"),
            (3, "Carol", "F"),
            (4, "Dan", "M"),
        ] {
            patient
                .insert(vec![
                    Datum::Int(id),
                    Datum::Text(name.into()),
                    Datum::Text(g.into()),
                ])
                .unwrap();
        }

        let mut history = Table::new(TableSchema::new(
            "history",
            vec![
                Column::new("patient_id", DataType::Int),
                Column::new("description", DataType::Text),
                Column::new("cost", DataType::Double),
            ],
        ));
        for (pid, desc, cost) in [
            (1, "flu", 100.0),
            (1, "checkup", 50.0),
            (2, "fracture", 900.0),
            (3, "flu", 120.0),
        ] {
            history
                .insert(vec![
                    Datum::Int(pid),
                    Datum::Text(desc.into()),
                    Datum::Double(cost),
                ])
                .unwrap();
        }

        let mut m = HashMap::new();
        m.insert("patient".to_string(), patient);
        m.insert("history".to_string(), history);
        m
    }

    fn run(sql: &str) -> ResultSet {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => execute_select(&s, &catalog()).unwrap(),
            other => panic!("not a select: {other:?}"),
        }
    }

    fn run_err(sql: &str) -> RelError {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => execute_select(&s, &catalog()).unwrap_err(),
            other => panic!("not a select: {other:?}"),
        }
    }

    fn run_with_metrics(sql: &str) -> (ResultSet, ExecMetrics) {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => execute_select_with_metrics(&s, &catalog()).unwrap(),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let rs = run("SELECT * FROM patient");
        assert_eq!(rs.columns, vec!["patient_id", "name", "gender"]);
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn where_filter_and_projection() {
        let rs = run("SELECT name FROM patient WHERE gender = 'F' ORDER BY name");
        assert_eq!(
            rs.rows,
            vec![
                vec![Datum::Text("Alice".into())],
                vec![Datum::Text("Carol".into())]
            ]
        );
    }

    #[test]
    fn index_lookup_path_gives_same_answer() {
        // patient_id is the PK; the executor should use the index.
        let rs = run("SELECT name FROM patient WHERE patient_id = 3");
        assert_eq!(rs.rows, vec![vec![Datum::Text("Carol".into())]]);
        // Equality that matches nothing.
        let rs = run("SELECT name FROM patient WHERE patient_id = 99");
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn inner_join_hash_path() {
        let rs = run("SELECT p.name, h.description FROM patient p \
             JOIN history h ON p.patient_id = h.patient_id ORDER BY p.name, h.description");
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.rows[0][0], Datum::Text("Alice".into()));
    }

    #[test]
    fn left_join_pads_nulls() {
        let rs = run("SELECT p.name, h.description FROM patient p \
             LEFT JOIN history h ON p.patient_id = h.patient_id \
             WHERE h.description IS NULL");
        assert_eq!(rs.rows, vec![vec![Datum::Text("Dan".into()), Datum::Null]]);
    }

    #[test]
    fn cross_join_cardinality() {
        let rs = run("SELECT * FROM patient a, patient b");
        assert_eq!(rs.rows.len(), 16);
    }

    #[test]
    fn group_by_with_aggregates_and_having() {
        let rs = run(
            "SELECT p.name, COUNT(*) n, SUM(h.cost) total FROM patient p \
             JOIN history h ON p.patient_id = h.patient_id \
             GROUP BY p.name HAVING COUNT(*) >= 2",
        );
        assert_eq!(rs.columns, vec!["name", "n", "total"]);
        assert_eq!(
            rs.rows,
            vec![vec![
                Datum::Text("Alice".into()),
                Datum::Int(2),
                Datum::Double(150.0)
            ]]
        );
    }

    #[test]
    fn ungrouped_aggregates_over_empty_input() {
        let rs = run("SELECT COUNT(*), SUM(cost), MIN(cost) FROM history WHERE cost > 10000");
        assert_eq!(rs.rows, vec![vec![Datum::Int(0), Datum::Null, Datum::Null]]);
    }

    #[test]
    fn avg_min_max() {
        let rs = run("SELECT AVG(cost), MIN(cost), MAX(cost) FROM history");
        assert_eq!(
            rs.rows,
            vec![vec![
                Datum::Double(292.5),
                Datum::Double(50.0),
                Datum::Double(900.0)
            ]]
        );
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT description) FROM history");
        assert_eq!(rs.rows, vec![vec![Datum::Int(3)]]);
    }

    #[test]
    fn distinct_rows() {
        let rs = run("SELECT DISTINCT gender FROM patient ORDER BY gender");
        assert_eq!(
            rs.rows,
            vec![vec![Datum::Text("F".into())], vec![Datum::Text("M".into())]]
        );
    }

    #[test]
    fn order_by_desc_and_alias_and_limit() {
        let rs = run("SELECT name, patient_id pid FROM patient ORDER BY pid DESC LIMIT 2");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], Datum::Int(4));
        assert_eq!(rs.rows[1][1], Datum::Int(3));
    }

    #[test]
    fn order_by_aggregate() {
        let rs = run(
            "SELECT patient_id, COUNT(*) FROM history GROUP BY patient_id \
             ORDER BY COUNT(*) DESC, patient_id LIMIT 1",
        );
        assert_eq!(rs.rows, vec![vec![Datum::Int(1), Datum::Int(2)]]);
    }

    #[test]
    fn ambiguous_column_detected() {
        assert!(matches!(
            run_err(
                "SELECT patient_id FROM patient p JOIN history h ON p.patient_id = h.patient_id"
            ),
            RelError::AmbiguousColumn(_)
        ));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(matches!(
            run_err("SELECT * FROM history WHERE COUNT(*) > 1"),
            RelError::AggregateMisuse(_)
        ));
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(
            run_err("SELECT * FROM ghosts"),
            RelError::NoSuchTable(_)
        ));
        assert!(matches!(
            run_err("SELECT nope FROM patient"),
            RelError::NoSuchColumn(_)
        ));
    }

    #[test]
    fn expression_projection_names() {
        let rs = run("SELECT cost * 2 FROM history LIMIT 1");
        assert_eq!(rs.columns, vec!["(cost * 2)"]);
    }

    #[test]
    fn text_table_rendering() {
        let rs = run("SELECT name FROM patient WHERE patient_id = 1");
        let text = rs.to_text_table();
        assert!(text.contains("| name"));
        assert!(text.contains("| Alice"));
        assert!(text.contains("1 row(s)"));
    }

    #[test]
    fn qualified_wildcard() {
        let rs =
            run("SELECT h.* FROM patient p JOIN history h ON p.patient_id = h.patient_id LIMIT 1");
        assert_eq!(rs.columns, vec!["patient_id", "description", "cost"]);
    }

    #[test]
    fn limit_stops_pulling_from_the_scan() {
        let (rs, m) = run_with_metrics("SELECT name FROM patient LIMIT 2");
        assert_eq!(rs.rows.len(), 2);
        // Pull-based pipeline: only the two delivered rows were scanned.
        assert_eq!(m.rows_scanned, 2);
        assert_eq!(m.rows_output, 2);
    }

    #[test]
    fn metrics_operators_match_the_plan() {
        let tables = catalog();
        for sql in [
            "SELECT * FROM patient",
            "SELECT name FROM patient WHERE patient_id = 3",
            "SELECT p.name FROM patient p JOIN history h ON p.patient_id = h.patient_id",
            "SELECT gender, COUNT(*) FROM patient GROUP BY gender ORDER BY gender LIMIT 1",
            "SELECT DISTINCT gender FROM patient",
        ] {
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                other => panic!("not a select: {other:?}"),
            };
            let plan = plan_select(&stmt, &tables).unwrap();
            let (_, m) = execute_plan(&plan, &tables).unwrap();
            assert_eq!(m.operators, plan.operator_names(), "{sql}");
        }
    }

    #[test]
    fn index_scan_counts_hits_and_joined_queries_use_indexes() {
        // The pre-planner executor refused to use indexes under joins;
        // the sarg on patient_id must now hit the PK index.
        let (rs, m) = run_with_metrics(
            "SELECT p.name, h.description FROM patient p \
             JOIN history h ON p.patient_id = h.patient_id WHERE p.patient_id = 1",
        );
        assert_eq!(rs.rows.len(), 2);
        assert!(m.index_hits >= 1, "{m:?}");
        assert!(
            m.operators.contains(&"index scan"),
            "expected index scan in {:?}",
            m.operators
        );
    }

    #[test]
    fn planned_matches_naive_on_the_corpus() {
        let tables = catalog();
        for sql in [
            "SELECT * FROM patient",
            "SELECT name FROM patient WHERE patient_id = 3",
            "SELECT name FROM patient WHERE patient_id > 2 ORDER BY name",
            "SELECT p.name, h.cost FROM patient p JOIN history h \
             ON p.patient_id = h.patient_id ORDER BY p.name, h.cost",
            "SELECT p.name, h.description FROM patient p LEFT JOIN history h \
             ON p.patient_id = h.patient_id ORDER BY p.name, h.description",
            "SELECT gender, COUNT(*) n, SUM(patient_id) FROM patient \
             GROUP BY gender ORDER BY gender",
            "SELECT DISTINCT description FROM history ORDER BY description",
            "SELECT COUNT(*) FROM patient WHERE patient_id BETWEEN 2 AND 3",
        ] {
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                other => panic!("not a select: {other:?}"),
            };
            let planned = execute_select(&stmt, &tables).unwrap();
            let naive = execute_select_naive(&stmt, &tables).unwrap();
            assert_eq!(planned, naive, "{sql}");
        }
    }
}
