//! E3 — per-bridge overhead: the same logical lookup through the three
//! connection paths of Figure 2 (JDBC → Oracle, JNI → Ontos, C++
//! method invocation → ObjectStore), plus the gateway-compensation path
//! (an aggregate against mSQL that the wrapper must stage locally).

use std::sync::Arc;
use webfindit_base::bench::Criterion;
use webfindit_base::{criterion_group, criterion_main};
use webfindit_connect::manager::standard_manager;
use webfindit_connect::{CompensatingConnection, Connection, DataSourceRegistry};
use webfindit_oostore::method::MethodTable;
use webfindit_oostore::model::{ClassDef, OType, OValue};
use webfindit_oostore::ObjectStore;
use webfindit_relstore::{Database, Dialect};

fn registry() -> Arc<DataSourceRegistry> {
    let reg = DataSourceRegistry::new();

    // Oracle via JDBC.
    let mut oracle = Database::new("RBH", Dialect::Oracle);
    oracle
        .execute("CREATE TABLE items (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..200 {
        oracle
            .execute(&format!("INSERT INTO items VALUES ({i}, 'value-{i}')"))
            .unwrap();
    }
    reg.register_relational("oracle", "RBH", oracle);

    // mSQL via JDBC with compensation.
    let mut msql = Database::new("CentreLink", Dialect::MSql);
    msql.execute("CREATE TABLE payments (client_id INT, amount DOUBLE)")
        .unwrap();
    for i in 0..200 {
        msql.execute(&format!(
            "INSERT INTO payments VALUES ({}, {})",
            i % 20,
            (i * 13) % 700
        ))
        .unwrap();
    }
    reg.register_relational("msql", "CentreLink", msql);

    // Ontos via JNI; ObjectStore via C++ invocation.
    for vendor in ["ontos", "objectstore"] {
        let mut store = ObjectStore::new("PCH");
        store
            .define_class(
                ClassDef::root("Treatment")
                    .attr("name", OType::Text)
                    .attr("cost", OType::Double),
            )
            .unwrap();
        for i in 0..200 {
            store
                .create(
                    "Treatment",
                    [
                        ("name".to_string(), OValue::Text(format!("treatment-{i}"))),
                        ("cost".to_string(), OValue::Double((i * 37 % 5000) as f64)),
                    ],
                )
                .unwrap();
        }
        let mut methods = MethodTable::new();
        methods.register("Treatment", "count_all", |s, _r, _a| {
            Ok(OValue::Int(
                s.instances_of("Treatment", true).unwrap().len() as i64,
            ))
        });
        reg.register_object(vendor, "PCH", store, methods);
    }
    reg
}

fn bench_bridges(c: &mut Criterion) {
    let reg = registry();
    let manager = Arc::new(standard_manager(reg));
    let mut group = c.benchmark_group("bridge_lookup");

    group.bench_function("jdbc_oracle_point_query", |b| {
        let mut conn = manager.get_connection("jdbc:oracle://h/RBH").unwrap();
        b.iter(|| {
            conn.execute("SELECT v FROM items WHERE id = 123").unwrap();
        });
    });

    group.bench_function("jni_ontos_oql_filter", |b| {
        let mut conn = manager.get_connection("jni:ontos://h/PCH").unwrap();
        b.iter(|| {
            conn.execute("select name from Treatment where cost > 4000")
                .unwrap();
        });
    });

    group.bench_function("native_objectstore_oql_filter", |b| {
        let mut conn = manager
            .get_connection("native:objectstore://h/PCH")
            .unwrap();
        b.iter(|| {
            conn.execute("select name from Treatment where cost > 4000")
                .unwrap();
        });
    });

    group.bench_function("jni_ontos_method_invocation", |b| {
        let mut conn = manager.get_connection("jni:ontos://h/PCH").unwrap();
        b.iter(|| {
            conn.invoke("Treatment.count_all", &[]).unwrap();
        });
    });

    group.bench_function("msql_native_filter", |b| {
        let mut conn = manager.get_connection("jdbc:msql://h/CentreLink").unwrap();
        b.iter(|| {
            conn.execute("SELECT amount FROM payments WHERE client_id = 7")
                .unwrap();
        });
    });

    group.bench_function("msql_compensated_aggregate", |b| {
        let inner = manager.get_connection("jdbc:msql://h/CentreLink").unwrap();
        let mut conn = CompensatingConnection::new(inner);
        b.iter(|| {
            conn.execute("SELECT client_id, SUM(amount) FROM payments GROUP BY client_id")
                .unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_bridges);
criterion_main!(benches);
