//! End-to-end GIOP fragment streaming through the reactor core: a
//! servant reply bigger than the fragment chunk size must travel as a
//! fragment train (server counts `fragmented_replies`/`fragments_sent`,
//! client counts `fragments_reassembled`) and arrive byte-identical.

use std::sync::Arc;
use webfindit_orb::servant::{InvokeResult, Servant, ServantError};
use webfindit_orb::{Orb, OrbConfig, OrbDomain, ServerCore};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::Value;

/// Returns a payload of the requested size; `big` is comfortably past
/// the 64 KiB fragment chunk, `small` is far under it.
struct SizedServant;

impl Servant for SizedServant {
    fn interface_id(&self) -> &str {
        "IDL:test/Sized:1.0"
    }
    fn invoke(&self, operation: &str, _args: &[Value]) -> InvokeResult {
        match operation {
            "big" => Ok(Value::Str("B".repeat(300 * 1024))),
            "small" => Ok(Value::Str("s".repeat(64))),
            other => Err(ServantError::UnknownOperation(other.into())),
        }
    }
}

fn start_pair(core: ServerCore) -> (Arc<Orb>, Arc<Orb>) {
    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("S", "frag-s.net", 1, ByteOrder::BigEndian).with_server_core(core),
        Arc::clone(&domain),
    )
    .unwrap();
    let client = Orb::start(
        OrbConfig::new("C", "frag-c.net", 2, ByteOrder::LittleEndian).with_server_core(core),
        Arc::clone(&domain),
    )
    .unwrap();
    (server, client)
}

#[test]
fn large_reply_streams_as_a_fragment_train() {
    let (server, client) = start_pair(ServerCore::Reactor);
    let ior = server.activate("sized", Arc::new(SizedServant));

    let out = client.invoke(&ior, "big", &[]).unwrap();
    assert_eq!(out, Value::Str("B".repeat(300 * 1024)));

    // 300 KiB over 64 KiB chunks: one fragmented reply, ≥4 continuations.
    let s = server.metrics().snapshot();
    assert_eq!(s.fragmented_replies, 1, "server fragmented_replies");
    assert!(
        s.fragments_sent >= 4,
        "fragments_sent = {}",
        s.fragments_sent
    );
    let c = client.metrics().snapshot();
    assert_eq!(c.fragments_reassembled, 1, "client fragments_reassembled");

    server.shutdown();
    client.shutdown();
}

#[test]
fn small_replies_stay_unfragmented() {
    let (server, client) = start_pair(ServerCore::Reactor);
    let ior = server.activate("sized", Arc::new(SizedServant));

    for _ in 0..3 {
        let out = client.invoke(&ior, "small", &[]).unwrap();
        assert_eq!(out, Value::Str("s".repeat(64)));
    }
    let s = server.metrics().snapshot();
    assert_eq!(s.fragmented_replies, 0);
    assert_eq!(s.fragments_sent, 0);
    assert_eq!(client.metrics().snapshot().fragments_reassembled, 0);

    server.shutdown();
    client.shutdown();
}

#[test]
fn large_reply_also_arrives_intact_on_the_threaded_core() {
    // The threaded fallback sends whole frames; the client-side
    // assembler must pass them straight through.
    let (server, client) = start_pair(ServerCore::Threaded);
    let ior = server.activate("sized", Arc::new(SizedServant));

    let out = client.invoke(&ior, "big", &[]).unwrap();
    assert_eq!(out, Value::Str("B".repeat(300 * 1024)));
    assert_eq!(server.metrics().snapshot().fragmented_replies, 0);
    assert_eq!(client.metrics().snapshot().fragments_reassembled, 0);

    server.shutdown();
    client.shutdown();
}

#[test]
fn fragmented_replies_interleave_with_small_ones_on_one_connection() {
    let (server, client) = start_pair(ServerCore::Reactor);
    let ior = server.activate("sized", Arc::new(SizedServant));

    for i in 0..4 {
        let op = if i % 2 == 0 { "big" } else { "small" };
        let out = client.invoke(&ior, op, &[]).unwrap();
        match out {
            Value::Str(s) if op == "big" => assert_eq!(s.len(), 300 * 1024),
            Value::Str(s) => assert_eq!(s.len(), 64),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let s = server.metrics().snapshot();
    assert_eq!(s.fragmented_replies, 2);
    assert_eq!(client.metrics().snapshot().fragments_reassembled, 2);

    server.shutdown();
    client.shutdown();
}
