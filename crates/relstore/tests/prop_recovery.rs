//! Crash-point recovery property suite — the durable tier's proof.
//!
//! Each case builds a durable database on a [`SimVfs`], runs a seeded
//! random workload (auto-commit statements and explicit `BEGIN` /
//! `COMMIT` / `ROLLBACK` transactions over inserts, updates, deletes,
//! index creation, and table drop/recreate) with a seeded crash point
//! armed (after-WAL-append, mid-page-flush, or pre-commit-record).
//! When the crash fires — or at a seeded point if it never does — the
//! VFS simulates power loss (unsynced writes survive only as a random,
//! possibly torn prefix) and the database reopens through recovery.
//!
//! **Property:** post-recovery state equals replaying exactly the
//! *acknowledged-committed* statement prefix on a fresh in-memory
//! database (the `query_naive`-style reference-model pattern from the
//! planner suite, applied to durability). Committed transactions
//! survive; uncommitted and unacknowledged ones vanish entirely.

use std::collections::BTreeMap;
use std::sync::Arc;
use webfindit_base::prop::{cases, cases_from, pick};
use webfindit_base::rng::StdRng;
use webfindit_relstore::file_mgr::{SimVfs, Vfs};
use webfindit_relstore::{CrashPoint, Database, Dialect, RelError};

const SETUP: [&str; 4] = [
    "CREATE TABLE t1 (id INT PRIMARY KEY, v INT, w TEXT)",
    "CREATE TABLE t2 (id INT PRIMARY KEY, fk INT)",
    "INSERT INTO t1 VALUES (0, 0, 'seed'), (1, 1, 'seed'), (2, 2, 'seed')",
    "INSERT INTO t2 VALUES (0, 0), (1, 1)",
];

/// One random workload statement. Primary keys are never updated so
/// that statement outcomes cannot depend on heap slot order (which
/// legitimately differs between the recovered and reference runs).
fn gen_stmt(rng: &mut StdRng) -> String {
    let id = rng.gen_range(0..24i64);
    let v = rng.gen_range(0..10i64);
    match rng.gen_range(0..20u32) {
        0..=4 => format!("INSERT INTO t1 VALUES ({id}, {v}, 'w{v}')"),
        5 => format!(
            "INSERT INTO t1 VALUES ({id}, {v}, 'a'), ({}, {v}, 'b')",
            id + 24
        ),
        6..=8 => format!("UPDATE t1 SET v = v + 1 WHERE id < {id}"),
        9 => format!("UPDATE t1 SET w = 'u{v}' WHERE v = {v}"),
        10..=11 => format!("DELETE FROM t1 WHERE id = {id}"),
        12 => format!("DELETE FROM t1 WHERE v > {}", v + 5),
        13..=14 => format!("INSERT INTO t2 VALUES ({id}, {v})"),
        15 => format!("UPDATE t2 SET fk = {v} WHERE id < {id}"),
        16 => format!("DELETE FROM t2 WHERE fk = {v}"),
        17 => "CREATE INDEX t1_v ON t1 (v)".to_string(),
        18 => "DROP TABLE t2".to_string(),
        _ => "CREATE TABLE t2 (id INT PRIMARY KEY, fk INT)".to_string(),
    }
}

/// Content fingerprint: per table, the sorted row multiset plus the
/// sorted secondary-index names. Heap slot ids are deliberately
/// excluded — they are physical layout, not logical state.
fn state_of(db: &Database) -> BTreeMap<String, (Vec<String>, Vec<String>)> {
    db.tables()
        .iter()
        .map(|(name, t)| {
            let mut rows: Vec<String> = t.scan().map(|(_, r)| format!("{r:?}")).collect();
            rows.sort();
            let mut idx = t.index_names();
            idx.sort();
            (name.clone(), (rows, idx))
        })
        .collect()
}

fn is_unavailable(e: &RelError) -> bool {
    matches!(e, RelError::Unavailable(_))
}

/// Run one seeded workload×crash-point schedule and check the
/// committed-prefix property.
fn run_schedule(rng: &mut StdRng) {
    let vfs = SimVfs::new();
    let mut db =
        Database::open_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, "prop", Dialect::Canonical).unwrap();
    db.set_checkpoint_every(rng.gen_range(1..8usize) as u32);

    let mut committed: Vec<String> = Vec::new();
    for s in SETUP {
        db.execute(s).unwrap();
        committed.push(s.to_string());
    }

    let point = *pick(
        rng,
        &[
            CrashPoint::AfterWalAppend,
            CrashPoint::MidPageFlush,
            CrashPoint::PreCommitRecord,
        ],
    );
    db.arm_crash_point(point, rng.gen_range(1..20usize) as u64);

    let steps = rng.gen_range(8..36usize);
    let mut crashed = false;
    'workload: for _ in 0..steps {
        if rng.gen_bool(0.35) {
            // Explicit transaction.
            match db.execute("BEGIN") {
                Ok(_) => {}
                Err(e) if is_unavailable(&e) => {
                    crashed = true;
                    break;
                }
                Err(_) => continue,
            }
            let mut pending: Vec<String> = Vec::new();
            for _ in 0..rng.gen_range(1..6usize) {
                let s = gen_stmt(rng);
                match db.execute(&s) {
                    Ok(_) => pending.push(s),
                    Err(e) if is_unavailable(&e) => {
                        crashed = true;
                        break 'workload;
                    }
                    Err(_) => {} // SQL error: statement had no effect
                }
            }
            if rng.gen_bool(0.7) {
                match db.execute("COMMIT") {
                    // The ack invariant: COMMIT returned Ok ⟺ the
                    // commit record is durable.
                    Ok(_) => committed.extend(pending),
                    Err(e) if is_unavailable(&e) => {
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected COMMIT error: {e}"),
                }
            } else {
                match db.execute("ROLLBACK") {
                    Err(e) if is_unavailable(&e) => {
                        crashed = true;
                        break;
                    }
                    _ => {}
                }
            }
        } else {
            let s = gen_stmt(rng);
            match db.execute(&s) {
                Ok(_) => committed.push(s),
                Err(e) if is_unavailable(&e) => {
                    crashed = true;
                    break;
                }
                Err(_) => {}
            }
        }
    }

    if !crashed {
        // The armed point never fired; crash at a seeded boundary,
        // sometimes with a transaction still in flight.
        if rng.gen_bool(0.5) && db.execute("BEGIN").is_ok() {
            let _ = db.execute(&gen_stmt(rng));
        }
        assert!(db.simulate_crash());
    }
    assert!(db.is_crashed());

    // Power loss: unsynced writes survive only as a seeded prefix,
    // the last one possibly torn.
    vfs.power_loss(rng.next_u64());
    db.reopen().expect("recovery must not fail");

    // Reference model: the committed prefix replayed on a fresh
    // in-memory database.
    let mut reference = Database::new("ref", Dialect::Canonical);
    for s in &committed {
        reference
            .execute(s)
            .unwrap_or_else(|e| panic!("committed statement must replay: {s}: {e}"));
    }
    assert_eq!(
        state_of(&db),
        state_of(&reference),
        "post-recovery state diverged from committed-prefix replay \
         (crash point {point})"
    );

    // The recovered database is live again.
    db.execute("INSERT INTO t1 VALUES (9999, 0, 'post-recovery')")
        .unwrap();
    db.execute("SELECT COUNT(*) FROM t1").unwrap();
}

#[test]
fn committed_prefix_replay_equivalence() {
    cases(64, run_schedule);
}

// The CI durability job pins these two seed bands; together with the
// main sweep the suite covers 80 workload×crash-point schedules.

#[test]
fn fixed_seed_band_1999() {
    cases_from(1999, 8, run_schedule);
}

#[test]
fn fixed_seed_band_2026() {
    cases_from(2026, 8, run_schedule);
}

/// Double recovery (crash during the post-crash session) still
/// converges to the committed prefix.
#[test]
fn recovery_is_stable_under_repeated_crashes() {
    cases(12, |rng| {
        let vfs = SimVfs::new();
        let mut db =
            Database::open_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, "p", Dialect::Canonical).unwrap();
        let mut committed = Vec::new();
        for s in SETUP {
            db.execute(s).unwrap();
            committed.push(s.to_string());
        }
        for round in 0..3 {
            for _ in 0..rng.gen_range(2..8usize) {
                let s = gen_stmt(rng);
                if db.execute(&s).is_ok() {
                    committed.push(s);
                }
            }
            // Leave a loser in flight every other round.
            if round % 2 == 0 && db.execute("BEGIN").is_ok() {
                let _ = db.execute(&gen_stmt(rng));
            }
            db.simulate_crash();
            vfs.power_loss(rng.next_u64());
            db.reopen().unwrap();
        }
        let mut reference = Database::new("ref", Dialect::Canonical);
        for s in &committed {
            reference.execute(s).unwrap();
        }
        assert_eq!(state_of(&db), state_of(&reference));
    });
}
