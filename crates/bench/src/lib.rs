//! Shared helpers for the benchmark harness and the figure/experiment
//! regeneration binaries. See DESIGN.md §6 for the experiment index and
//! EXPERIMENTS.md for recorded results.

#![warn(missing_docs)]

/// Print a figure/table header in a consistent style.
pub fn header(id: &str, caption: &str) {
    println!("==================================================================");
    println!("{id}: {caption}");
    println!("==================================================================");
}

/// Format a mean of a series.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation of a series.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The p-th percentile (0 ≤ p ≤ 100) of a series, nearest-rank over a
/// sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 51.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }
}
