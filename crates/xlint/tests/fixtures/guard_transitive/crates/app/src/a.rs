//! Fixture: a guard held across a call that reaches blocking I/O two
//! hops away in another file.

pub fn caller(s: &Store) {
    let g = s.state.lock();
    mid(s);
    drop(g);
}

fn mid(s: &Store) {
    slow_io(s);
}
