//! Fixture: a servant whose dispatch table drifted from its clients
//! and from its own `operations()` listing.

const IFACE: &str = "IDL:fixture/Thing:1.0";

pub struct ThingServant;

impl Servant for ThingServant {
    fn interface_id(&self) -> &str {
        IFACE
    }

    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        match operation {
            "lookup" => do_lookup(args),
            "extra_arm" => do_extra(args),
            other => fail(other),
        }
    }

    fn operations(&self) -> Vec<String> {
        ["lookup", "ghost_op"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}
