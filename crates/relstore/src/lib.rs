//! # webfindit-relstore — a from-scratch relational engine
//!
//! WebFINDIT's data layer wraps relational products — Oracle, mSQL, DB2,
//! Sybase — behind Information Source Interfaces. Since none of those
//! 1990s products can ship with this reproduction, this crate implements
//! the substrate itself: a small but real relational DBMS with
//!
//! * a typed catalog ([`schema`]) with primary-key and NOT NULL
//!   constraints;
//! * heap table storage with B-tree primary and secondary indexes
//!   ([`storage`]);
//! * a SQL subset ([`sql`]) — `CREATE TABLE/INDEX`, `INSERT`, `UPDATE`,
//!   `DELETE`, and `SELECT` with joins, aggregation, `GROUP BY`/`HAVING`,
//!   `ORDER BY`, `DISTINCT`, and `LIMIT`;
//! * an expression evaluator with SQL three-valued logic ([`expr`]);
//! * a cost-informed physical planner ([`plan`]) choosing index point
//!   lookups, index range scans, and hash/index/nested-loop joins from
//!   lightweight per-table statistics;
//! * a pull-based pipelined executor ([`exec`]) that runs the planned
//!   operator tree, stops pulling at `LIMIT`, and reports
//!   [`exec::ExecMetrics`]; `EXPLAIN` renders the very plan it runs;
//! * statement atomicity plus multi-statement transactions with an undo
//!   log ([`engine`]);
//! * vendor dialect flavoring ([`dialect`]) so that the same logical
//!   query arrives in visibly different SQL per "product", which is the
//!   heterogeneity WebFINDIT's wrappers absorb;
//! * an optional durable storage tier — a checksummed page file manager
//!   over a pluggable [`file_mgr::Vfs`] ([`file_mgr`]), a pinning buffer
//!   pool with clock-sweep eviction ([`buffer`]), an ARIES-style
//!   write-ahead log ([`wal`]), a recovery manager that repeats history
//!   and rolls back losers on open ([`recovery`]), and a lock-table
//!   transaction manager ([`tx`]).
//!
//! The engine is deliberately synchronous: the paper's experiments
//! stress *federation* behaviour, not single-node throughput.
//! [`Database::new`] stays purely in-memory (the fast path);
//! [`Database::open`] attaches the durable tier and recovers to the
//! last committed state, which is what makes the federation's
//! kill/restart chaos scenarios honest.

#![warn(missing_docs)]

pub mod buffer;
pub mod dialect;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod file_mgr;
pub mod plan;
pub mod recovery;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod tx;
pub mod types;
pub mod wal;

pub use dialect::Dialect;
pub use engine::{Database, ExecOutcome, StorageStats};
pub use exec::ExecMetrics;
pub use plan::{plan_select, PhysicalPlan, Sarg};
pub use schema::{Column, TableSchema};
pub use storage::{IndexKind, TableStats};
pub use types::{DataType, Datum, Row};
pub use wal::CrashPoint;

use std::fmt;

/// Errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RelError {
    /// SQL text failed to lex or parse.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset where the problem was noticed.
        offset: usize,
    },
    /// A referenced table does not exist.
    NoSuchTable(String),
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// A value's type did not match the column or operator.
    TypeMismatch {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// NOT NULL or primary-key constraint violated.
    ConstraintViolation(String),
    /// A duplicate primary key was inserted.
    DuplicateKey(String),
    /// Arity mismatch between columns and values.
    ArityMismatch {
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// Division by zero during expression evaluation.
    DivisionByZero,
    /// Aggregate misuse (e.g. nested aggregates, aggregate in WHERE).
    AggregateMisuse(String),
    /// A column reference was ambiguous across joined tables.
    AmbiguousColumn(String),
    /// Transaction state error (e.g. COMMIT without BEGIN).
    TransactionState(String),
    /// The statement is valid SQL but not supported by this engine.
    Unsupported(String),
    /// Durable storage failed (I/O, buffer pool exhaustion).
    Storage(String),
    /// On-disk data failed a checksum or decoded to garbage.
    Corrupt(String),
    /// The database crashed (or was crash-injected) and must be
    /// reopened before use.
    Unavailable(String),
    /// A table lock is held by another live transaction.
    LockConflict(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Parse { message, offset } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            RelError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            RelError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            RelError::TableExists(t) => write!(f, "table already exists: {t}"),
            RelError::IndexExists(i) => write!(f, "index already exists: {i}"),
            RelError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelError::ConstraintViolation(msg) => write!(f, "constraint violation: {msg}"),
            RelError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            RelError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            RelError::DivisionByZero => write!(f, "division by zero"),
            RelError::AggregateMisuse(msg) => write!(f, "aggregate misuse: {msg}"),
            RelError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            RelError::TransactionState(msg) => write!(f, "transaction error: {msg}"),
            RelError::Unsupported(msg) => write!(f, "unsupported SQL: {msg}"),
            RelError::Storage(msg) => write!(f, "storage error: {msg}"),
            RelError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            RelError::Unavailable(msg) => write!(f, "database unavailable: {msg}"),
            RelError::LockConflict(msg) => write!(f, "lock conflict: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias for engine operations.
pub type RelResult<T> = Result<T, RelError>;
