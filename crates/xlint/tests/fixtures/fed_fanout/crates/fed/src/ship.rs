//! Fixture: the shipping leaf — one subquery crossing the wire.

pub fn ship_one(w: &Wave, member: &Member) -> Rows {
    w.channel.invoke("execute", &[member.native.clone()])
}
