//! The object model: OIDs, values, attribute and class definitions.

use std::fmt;

/// An object identifier, unique within one store for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Attribute value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OType {
    /// 64-bit integer.
    Int,
    /// Double float.
    Double,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Ordered list of values (untyped elements).
    List,
    /// Reference to another object.
    Ref,
}

impl fmt::Display for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OType::Int => "int",
            OType::Double => "double",
            OType::Text => "string",
            OType::Bool => "bool",
            OType::List => "list",
            OType::Ref => "ref",
        };
        f.write_str(s)
    }
}

/// A runtime attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum OValue {
    /// Absent value.
    Null,
    /// Integer.
    Int(i64),
    /// Double.
    Double(f64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// List.
    List(Vec<OValue>),
    /// Object reference.
    Ref(Oid),
}

impl OValue {
    /// The value's type, or `None` for Null.
    pub fn otype(&self) -> Option<OType> {
        Some(match self {
            OValue::Null => return None,
            OValue::Int(_) => OType::Int,
            OValue::Double(_) => OType::Double,
            OValue::Text(_) => OType::Text,
            OValue::Bool(_) => OType::Bool,
            OValue::List(_) => OType::List,
            OValue::Ref(_) => OType::Ref,
        })
    }

    /// True for Null.
    pub fn is_null(&self) -> bool {
        matches!(self, OValue::Null)
    }

    /// String view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            OValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (widening from Int only).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            OValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view (widening Int).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            OValue::Double(v) => Some(*v),
            OValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[OValue]> {
        match self {
            OValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Reference view.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            OValue::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// SQL-style comparison: `None` for Null operands or incomparable
    /// types; Int and Double compare cross-type.
    pub fn compare(&self, other: &OValue) -> Option<std::cmp::Ordering> {
        use OValue::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Ref(a), Ref(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for OValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OValue::Null => write!(f, "null"),
            OValue::Int(v) => write!(f, "{v}"),
            OValue::Double(v) => write!(f, "{v}"),
            OValue::Text(s) => write!(f, "{s}"),
            OValue::Bool(b) => write!(f, "{b}"),
            OValue::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            OValue::Ref(o) => write!(f, "{o}"),
        }
    }
}

impl From<&str> for OValue {
    fn from(s: &str) -> Self {
        OValue::Text(s.to_owned())
    }
}
impl From<String> for OValue {
    fn from(s: String) -> Self {
        OValue::Text(s)
    }
}
impl From<i64> for OValue {
    fn from(v: i64) -> Self {
        OValue::Int(v)
    }
}
impl From<f64> for OValue {
    fn from(v: f64) -> Self {
        OValue::Double(v)
    }
}
impl From<bool> for OValue {
    fn from(v: bool) -> Self {
        OValue::Bool(v)
    }
}
impl From<Vec<OValue>> for OValue {
    fn from(v: Vec<OValue>) -> Self {
        OValue::List(v)
    }
}

/// One attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name (lowercase).
    pub name: String,
    /// Declared type.
    pub otype: OType,
}

impl AttrDef {
    /// Create an attribute definition; the name is lowercased.
    pub fn new(name: impl Into<String>, otype: OType) -> AttrDef {
        AttrDef {
            name: name.into().to_ascii_lowercase(),
            otype,
        }
    }
}

/// A class definition. Classes form a lattice via multiple inheritance
/// (the paper's co-database schema is explicitly "a lattice of classes").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name (original case preserved for display; lookups are
    /// case-insensitive).
    pub name: String,
    /// Parent class names.
    pub parents: Vec<String>,
    /// Attributes declared directly on this class.
    pub attributes: Vec<AttrDef>,
    /// Documentation string shown by `Display Document of Class …`.
    pub documentation: String,
}

impl ClassDef {
    /// Create a root class (no parents).
    pub fn root(name: impl Into<String>) -> ClassDef {
        ClassDef {
            name: name.into(),
            parents: Vec::new(),
            attributes: Vec::new(),
            documentation: String::new(),
        }
    }

    /// Builder: add a parent.
    pub fn extends(mut self, parent: impl Into<String>) -> ClassDef {
        self.parents.push(parent.into());
        self
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, name: impl Into<String>, otype: OType) -> ClassDef {
        self.attributes.push(AttrDef::new(name, otype));
        self
    }

    /// Builder: set documentation.
    pub fn doc(mut self, text: impl Into<String>) -> ClassDef {
        self.documentation = text.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_comparisons() {
        assert_eq!(
            OValue::Int(1).compare(&OValue::Double(1.0)),
            Some(std::cmp::Ordering::Equal)
        );
        assert_eq!(OValue::Null.compare(&OValue::Int(1)), None);
        assert_eq!(
            OValue::Text("a".into()).compare(&OValue::Text("b".into())),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(OValue::Text("a".into()).compare(&OValue::Int(1)), None);
    }

    #[test]
    fn builder_and_display() {
        let c = ClassDef::root("Research")
            .attr("Title", OType::Text)
            .attr("funding", OType::Double)
            .doc("research databases");
        assert_eq!(c.attributes[0].name, "title");
        assert_eq!(
            OValue::List(vec![OValue::Int(1), OValue::Text("x".into())]).to_string(),
            "[1, x]"
        );
        assert_eq!(Oid(7).to_string(), "@7");
    }
}
