//! xlint — the workspace's call-graph-aware concurrency and contract
//! lint.
//!
//! The runtime detector in `webfindit_base::sync::detect` catches lock
//! misuse that actually executes; xlint catches whole rule families at
//! the source level, in CI, before an interleaving ever has to go
//! wrong. It is a deliberately dependency-free analyzer (no syn, no
//! external crates — the build is offline) in three stages:
//!
//! 1. **Fact extraction** ([`facts`]): a lightweight lexer/item parser
//!    scrubs comments and strings, tracks brace depth and item context,
//!    and records per-function facts — calls made (with the lock guards
//!    live at each call site), locks acquired, blocking tokens,
//!    `invoke("op")` literals, servant dispatch arms keyed by interface
//!    id, and `*Metrics` counters declared/recorded/surfaced.
//! 2. **Call graph** ([`graph`]): name-based resolution
//!    (`self.`/`Type::` precise, bare and method names by workspace
//!    lookup with a std-collision stoplist), then BFS reachability that
//!    remembers the edge each node was first reached through — that
//!    parent chain IS the witness path in the report.
//! 3. **Rules** ([`rules`]): the five original token rules
//!    (guard-across-blocking now transitive, std-sync-direct,
//!    lock-order-cycle, lock-unwrap, thread-spawn-dispatch) plus three
//!    interprocedural families: `reactor-blocking` (nothing reachable
//!    from `Reactor::run` may block or take a tracked lock),
//!    `idl-drift` (client invoke strings vs servant dispatch arms), and
//!    `metrics-drift` (counters declared vs recorded vs surfaced
//!    through `Trace`).
//!
//! Findings print as `file:line: [rule] message`, with interprocedural
//! findings carrying a `witness:` line — the chain of `file:line` call
//! sites from the rule's root to the offending operation. Deliberate
//! violations are suppressed through `xlint.toml`
//! (`rule path "snippet" [via "step"] justification`); entries that
//! suppress nothing fail the run with a diagnosis (stale / wrong rule /
//! witness mismatch).
//!
//! Exit codes: 0 clean, 1 findings, 2 allowlist problems.

pub mod allow;
pub mod facts;
pub mod graph;
pub mod report;
pub mod rules;
pub mod scrub;

pub use allow::{classify_unused, parse_allowlist_text, AllowEntry, AllowIssue};
pub use report::{Finding, Step};
pub use rules::Scope;

use facts::FileFacts;
use std::path::{Path, PathBuf};

/// The full analysis of one workspace: findings paired with their
/// anchor source line (for allowlist snippet matching).
pub struct Analysis {
    pub findings: Vec<(Finding, String)>,
    pub scanned: usize,
}

/// Analyze in-memory sources. Findings-scope sources produce findings;
/// evidence sources (tests/, benches/) only contribute facts.
pub fn analyze_sources(sources: &[(PathBuf, String, Scope)]) -> Analysis {
    let files: Vec<FileFacts> = sources
        .iter()
        .enumerate()
        .map(|(i, (p, s, _))| facts::extract(i, p, s))
        .collect();
    let scopes: Vec<Scope> = sources.iter().map(|(_, _, sc)| *sc).collect();
    let resolvable: Vec<bool> = scopes.iter().map(|s| *s == Scope::Findings).collect();
    let graph = graph::build(&files, &resolvable);

    let mut findings = Vec::new();
    findings.extend(rules::token_rules(&files, &scopes));
    findings.extend(rules::reactor_blocking(&files, &scopes, &graph));
    findings.extend(rules::guard_transitive(&files, &scopes, &graph));
    findings.extend(rules::idl_drift(&files, &scopes));
    findings.extend(rules::metrics_drift(&files, &scopes));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });

    let scanned = scopes.iter().filter(|s| **s == Scope::Findings).count();
    let by_path: std::collections::BTreeMap<&Path, &FileFacts> =
        files.iter().map(|f| (f.path.as_path(), f)).collect();
    let findings = findings
        .into_iter()
        .map(|f| {
            let anchor = by_path
                .get(f.file.as_path())
                .and_then(|ff| ff.source_lines.get(f.line.saturating_sub(1)))
                .cloned()
                .unwrap_or_default();
            (f, anchor)
        })
        .collect();
    Analysis { findings, scanned }
}

/// Analyze a workspace on disk: `crates/*/src` as findings scope,
/// `crates/*/tests`, `crates/*/benches`, and the root `tests/` as
/// evidence.
pub fn analyze(root: &Path) -> Analysis {
    let mut sources = Vec::new();
    for file in collect_rs_files(root, "src") {
        if exempt_file(root, &file) {
            continue;
        }
        if let Ok(src) = std::fs::read_to_string(&file) {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            sources.push((rel, src, Scope::Findings));
        }
    }
    let mut evidence = Vec::new();
    evidence.extend(collect_rs_files(root, "tests"));
    evidence.extend(collect_rs_files(root, "benches"));
    let root_tests = root.join("tests");
    if root_tests.is_dir() {
        walk(&root_tests, &mut evidence);
    }
    evidence.sort();
    for file in evidence {
        if exempt_file(root, &file) {
            continue;
        }
        if let Ok(src) = std::fs::read_to_string(&file) {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            sources.push((rel, src, Scope::Evidence));
        }
    }
    analyze_sources(&sources)
}

/// The outcome of applying an allowlist to an analysis.
pub struct Outcome<'a> {
    pub real: Vec<&'a Finding>,
    pub suppressed: Vec<(&'a Finding, &'a AllowEntry)>,
    pub issues: Vec<AllowIssue>,
}

pub fn apply_allowlist<'a>(analysis: &'a Analysis, entries: &'a [AllowEntry]) -> Outcome<'a> {
    let mut real = Vec::new();
    let mut suppressed = Vec::new();
    for (finding, source_line) in &analysis.findings {
        match entries.iter().find(|e| e.matches(finding, source_line)) {
            Some(entry) => {
                entry.used.set(true);
                suppressed.push((finding, entry));
            }
            None => real.push(finding),
        }
    }
    let issues = classify_unused(entries, &analysis.findings);
    Outcome {
        real,
        suppressed,
        issues,
    }
}

fn collect_rs_files(root: &Path, subdir: &str) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return files;
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let sub = dir.join(subdir);
        if sub.is_dir() {
            walk(&sub, &mut files);
        }
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Files the lint does not apply to: the detector's own internals (its
/// raw std locks are the instrument, not a subject) and xlint itself
/// (its source *names* the forbidden tokens).
fn exempt_file(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let rel = rel.to_string_lossy().replace('\\', "/");
    rel.starts_with("crates/base/src/sync/") || rel.starts_with("crates/xlint/")
}

/// Locate the workspace root: `cargo run -p xlint` sets
/// CARGO_MANIFEST_DIR to crates/xlint; a direct binary invocation falls
/// back to walking up from the current directory.
pub fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
