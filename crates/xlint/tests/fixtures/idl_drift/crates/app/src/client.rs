//! Fixture: client-side invoke drift — a direct orphan op, an orphan
//! reached through a forwarder, and a legitimate forwarded op.

pub fn fetch(fed: &Fed) {
    fed.invoke("list_all", &[]);
    fetch_named(fed, "lookup");
    fetch_named(fed, "bogus_remote");
}

pub fn fetch_named(fed: &Fed, op: &str) {
    fed.invoke(op, &[]);
}
