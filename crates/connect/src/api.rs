//! The driver/connection API (the JDBC analog).

use crate::ConnectResult;
use std::fmt;
use webfindit_oostore::{OValue, Oid};
use webfindit_relstore::exec::ResultSet;
use webfindit_relstore::TableSchema;

/// Which physical bridge a connection uses — the three arrows of the
/// paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeKind {
    /// JDBC: Java CORBA server → relational database.
    Jdbc,
    /// JNI: Java CORBA server → C++-interfaced object database (Ontos).
    Jni,
    /// Direct C++ method invocation: C++ CORBA server → ObjectStore.
    NativeCpp,
}

impl fmt::Display for BridgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BridgeKind::Jdbc => "JDBC",
            BridgeKind::Jni => "JNI",
            BridgeKind::NativeCpp => "C++ method invocation",
        };
        f.write_str(s)
    }
}

/// The result of executing a statement through a connection.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A relational result set.
    Rows(ResultSet),
    /// DML affected-row count.
    Count(usize),
    /// DDL / control statement completed.
    Done,
    /// OQL result from an object store: `(oid, projected values)` rows.
    Objects {
        /// Projected attribute names.
        columns: Vec<String>,
        /// Matching objects.
        rows: Vec<(Oid, Vec<OValue>)>,
    },
    /// A method invocation result from an object store.
    Value(OValue),
}

impl QueryOutput {
    /// The relational rows, if any.
    pub fn result_set(&self) -> Option<&ResultSet> {
        match self {
            QueryOutput::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// Number of data rows in this output (0 for counts/Done/Value).
    pub fn row_count(&self) -> usize {
        match self {
            QueryOutput::Rows(rs) => rs.rows.len(),
            QueryOutput::Objects { rows, .. } => rows.len(),
            _ => 0,
        }
    }

    /// Keep at most `max_rows` data rows, dropping the tail. The
    /// federated executor applies this server-side when the target
    /// dialect cannot fold a row limit into the shipped query (mSQL has
    /// no LIMIT at all), so a pushed-down limit never widens the wire.
    pub fn truncate(&mut self, max_rows: usize) {
        match self {
            QueryOutput::Rows(rs) => rs.rows.truncate(max_rows),
            QueryOutput::Objects { rows, .. } => rows.truncate(max_rows),
            _ => {}
        }
    }
}

/// Data-layer execution metrics from the most recent query on a
/// connection, in a paradigm-neutral vocabulary: relational connections
/// report `ExecMetrics` and object connections report `OoExecMetrics`,
/// both mapped onto these four counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataMetrics {
    /// Rows/objects read from storage.
    pub rows_scanned: u64,
    /// Approximate bytes of those rows (0 for object stores).
    pub bytes_scanned: u64,
    /// Index entries hit (0 for object stores).
    pub index_hits: u64,
    /// Rows materialized by blocking operators (sort, aggregation).
    pub rows_spilled: u64,
    /// WAL records appended by this statement (0 for in-memory and
    /// object stores).
    pub wal_appends: u64,
    /// Snapshot/checkpoint pages written back around this statement.
    pub pages_flushed: u64,
    /// WAL records replayed if the statement triggered recovery (in
    /// practice nonzero only on the first statement after a reopen).
    pub recovery_redo: u64,
    /// Loser records rolled back during such a recovery.
    pub recovery_undo: u64,
}

/// Static description of a connected data source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceMetadata {
    /// Product name (`"Oracle"`, `"mSQL"`, `"ObjectStore"`, …).
    pub product: String,
    /// Instance name (`"Royal Brisbane Hospital"`).
    pub instance: String,
    /// Relational table schemas, if relational.
    pub tables: Vec<TableSchema>,
    /// Object-store class names, if object-oriented.
    pub classes: Vec<String>,
}

/// A live connection to one data source.
pub trait Connection: Send {
    /// Execute a statement in the source's native language (SQL for
    /// relational sources, OQL for object stores).
    fn execute(&mut self, text: &str) -> ConnectResult<QueryOutput>;

    /// Invoke a named access routine (object stores only; relational
    /// connections reject this).
    fn invoke(&mut self, _method: &str, _args: &[OValue]) -> ConnectResult<QueryOutput> {
        Err(crate::ConnectError::WrongParadigm(
            "method invocation on a relational connection".into(),
        ))
    }

    /// Open an explicit transaction (relational sources only).
    fn begin(&mut self) -> ConnectResult<QueryOutput> {
        Err(crate::ConnectError::WrongParadigm(
            "transactions on a non-transactional connection".into(),
        ))
    }

    /// Commit the open transaction. On durable sources an `Ok` return
    /// means the commit record reached stable storage.
    fn commit(&mut self) -> ConnectResult<QueryOutput> {
        Err(crate::ConnectError::WrongParadigm(
            "transactions on a non-transactional connection".into(),
        ))
    }

    /// Roll back the open transaction.
    fn rollback(&mut self) -> ConnectResult<QueryOutput> {
        Err(crate::ConnectError::WrongParadigm(
            "transactions on a non-transactional connection".into(),
        ))
    }

    /// Data-layer metrics from the most recent `execute`, when the
    /// source's engine reports them.
    fn last_data_metrics(&self) -> Option<DataMetrics> {
        None
    }

    /// Metadata about the source.
    fn metadata(&self) -> ConnectResult<SourceMetadata>;

    /// Which bridge kind carries this connection.
    fn bridge(&self) -> BridgeKind;

    /// Close the connection; further calls fail with `Closed`.
    fn close(&mut self);
}

/// A connectivity driver (the JDBC `Driver` analog).
pub trait Driver: Send + Sync {
    /// A short name for diagnostics (`"oracle"`, `"ontos"`, …).
    fn name(&self) -> &str;

    /// Whether this driver understands `url`.
    fn accepts(&self, url: &str) -> bool;

    /// Open a connection.
    fn connect(&self, url: &str) -> ConnectResult<Box<dyn Connection>>;
}

/// Parse `scheme:vendor://host/instance` into its components.
///
/// Examples: `jdbc:oracle://dba.icis.qut.edu.au/RBH`,
/// `jni:ontos://cairns.jcu.edu.au/PrinceCharles`.
pub fn parse_url(url: &str) -> Option<UrlParts<'_>> {
    let (scheme, rest) = url.split_once(':')?;
    let (vendor, rest) = rest.split_once("://")?;
    let (host, instance) = rest.split_once('/')?;
    if scheme.is_empty() || vendor.is_empty() || host.is_empty() || instance.is_empty() {
        return None;
    }
    Some(UrlParts {
        scheme,
        vendor,
        host,
        instance,
    })
}

/// The components of a connection URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrlParts<'a> {
    /// Bridge scheme: `jdbc`, `jni`, or `native`.
    pub scheme: &'a str,
    /// Vendor: `oracle`, `msql`, `db2`, `sybase`, `ontos`, `objectstore`.
    pub vendor: &'a str,
    /// Host name (informational; resolution happens in the registry).
    pub host: &'a str,
    /// Instance (database) name.
    pub instance: &'a str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing() {
        let p = parse_url("jdbc:oracle://dba.icis.qut.edu.au/RBH").unwrap();
        assert_eq!(p.scheme, "jdbc");
        assert_eq!(p.vendor, "oracle");
        assert_eq!(p.host, "dba.icis.qut.edu.au");
        assert_eq!(p.instance, "RBH");
    }

    #[test]
    fn bad_urls_rejected() {
        for bad in [
            "",
            "jdbc",
            "jdbc:oracle",
            "jdbc:oracle://hostonly",
            "jdbc:oracle:///noinstance",
            ":oracle://h/i",
            "jdbc:://h/i",
        ] {
            assert!(parse_url(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn bridge_display() {
        assert_eq!(BridgeKind::Jdbc.to_string(), "JDBC");
        assert_eq!(BridgeKind::NativeCpp.to_string(), "C++ method invocation");
    }
}
