//! The canned §5 user session — the source of Figures 4, 5, and 6.
//!
//! "Typically, a user of this application starts by posing queries
//! about specific areas in the healthcare domain" — then browses the
//! Research coalition, reads the Royal Brisbane Hospital documentation,
//! and finally fetches `select * from medical_students`.

use crate::deploy::HealthcareDeployment;
use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit::WfResult;

/// The statements of the §5 walk-through, in order.
pub const SECTION5_SCRIPT: &[&str] = &[
    "Find Coalitions With Information Medical Research;",
    "Connect To Coalition Research;",
    "Display SubClasses of Class Research;",
    "Display Instances of Class Research;",
    "Display Document of Instance Royal Brisbane Hospital Of Class Research;",
    "Display Access Information of Instance Royal Brisbane Hospital;",
    "Display Interface of Instance Royal Brisbane Hospital;",
    "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
     (ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;",
    "Submit Native 'select * from medical_students' To Instance Royal Brisbane Hospital;",
];

/// Run the §5 session for a QUT researcher and return the session with
/// its transcript filled in.
pub fn run_section5_session(
    dep: &HealthcareDeployment,
) -> WfResult<(BrowserSession, Vec<Response>)> {
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let mut responses = Vec::with_capacity(SECTION5_SCRIPT.len());
    for stmt in SECTION5_SCRIPT {
        let response = processor.submit(&mut session, stmt, None)?;
        session.record(*stmt, response.render());
        responses.push(response);
    }
    Ok((session, responses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::build_healthcare;
    use webfindit_relstore::Datum;

    #[test]
    fn the_section5_walkthrough() {
        let dep = build_healthcare(1999).unwrap();
        let (session, responses) = run_section5_session(&dep).unwrap();

        // Find Coalitions With Information Medical Research → the QUT
        // researcher's local coalition Research answers (and possibly
        // Medical, which also deals with it).
        match &responses[0] {
            Response::Leads { leads, round_trips } => {
                assert!(
                    leads.iter().any(|l| l.coalition_name() == Some("Research")),
                    "{leads:?}"
                );
                assert_eq!(*round_trips, 0, "local resolution needs no network");
            }
            other => panic!("{other:?}"),
        }

        // Connect To Coalition Research.
        assert!(
            matches!(&responses[1], Response::Connected { coalition, .. }
            if coalition == "Research")
        );

        // Display SubClasses of Class Research → the refinement level.
        match &responses[2] {
            Response::Subclasses(names) => {
                assert_eq!(names, &["Cancer Research"]);
            }
            other => panic!("{other:?}"),
        }

        // Display Instances of Class Research → the four members.
        match &responses[3] {
            Response::Instances(names) => {
                assert_eq!(
                    names,
                    &[
                        "QUT Research",
                        "Queensland Cancer Fund",
                        "RMIT Medical Research",
                        "Royal Brisbane Hospital"
                    ]
                );
            }
            other => panic!("{other:?}"),
        }

        // Display Document → the RBH HTML page (Figure 5).
        match &responses[4] {
            Response::Document { formats, document } => {
                assert_eq!(formats.len(), 3, "text, HTML, applet (Figure 4 buttons)");
                assert!(document
                    .content
                    .contains("<h1>Royal Brisbane Hospital</h1>"));
            }
            other => panic!("{other:?}"),
        }

        // Display Access Information → the §2.2 advertisement.
        match &responses[5] {
            Response::AccessInfo(d) => {
                assert_eq!(d.location, "dba.icis.qut.edu.au");
                assert_eq!(
                    d.interface_names(),
                    vec!["ResearchProjects", "PatientHistory"]
                );
            }
            other => panic!("{other:?}"),
        }

        // Invoke Funding(…) → the seeded 250 000 budget.
        match &responses[7] {
            Response::Table(rs) => {
                assert_eq!(rs.columns, vec!["funding"]);
                assert_eq!(rs.rows, vec![vec![Datum::Double(250_000.0)]]);
            }
            other => panic!("{other:?}"),
        }

        // select * from medical_students → 20 rows, 4 columns (Figure 6).
        match &responses[8] {
            Response::Table(rs) => {
                assert_eq!(rs.columns, vec!["student_id", "name", "course", "year"]);
                assert_eq!(rs.rows.len(), 20);
            }
            other => panic!("{other:?}"),
        }

        // The transcript is complete.
        assert_eq!(session.transcript.len(), SECTION5_SCRIPT.len());
        dep.fed.shutdown();
    }
}
