//! Property and transport tests for GIOP fragment streaming.
//!
//! Invariants under test:
//!
//! * `split_into_fragments` followed by `FragmentAssembler::push_frame`
//!   over every chunk size — down to one-byte bodies — reproduces the
//!   original message exactly, in both byte orders.
//! * A torn train (truncated final fragment, a lone `Fragment`, or a
//!   non-`Fragment` frame mid-train) surfaces a typed `WireError`, never
//!   a silent wrong answer.
//! * A peer closing the socket mid-train surfaces `WireError::Closed`
//!   from the blocking transport — promptly, not as a hang.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use webfindit_base::prop::{self, string_of, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_wire::bufpool::BufPool;
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{
    reply_ok, request, split_into_fragments, FragmentAssembler, GiopMessage, MessageKind,
};
use webfindit_wire::transport::{FramedTcp, Transport};
use webfindit_wire::value::Value;
use webfindit_wire::WireError;

const TEXT: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.-";

fn arb_order(rng: &mut StdRng) -> ByteOrder {
    if rng.gen_bool(0.5) {
        ByteOrder::BigEndian
    } else {
        ByteOrder::LittleEndian
    }
}

/// A message whose encoded body is big enough to fragment interestingly.
fn arb_message(rng: &mut StdRng) -> GiopMessage {
    if rng.gen_bool(0.5) {
        reply_ok(
            rng.next_u64() as u32,
            Value::Sequence(vec_of(rng, 1..8, |r| {
                Value::Str(string_of(r, TEXT, 0..120))
            })),
        )
    } else {
        request(
            rng.next_u64() as u32,
            string_of(rng, TEXT, 1..24).into_bytes(),
            string_of(rng, "abcdefghijklmnop_", 1..16),
            vec_of(rng, 0..5, |r| Value::Str(string_of(r, TEXT, 0..80))),
        )
    }
}

/// Split `msg` at `max_body` and reassemble, checking train shape along
/// the way; returns the reassembled message.
fn split_and_reassemble(msg: &GiopMessage, order: ByteOrder, max_body: usize) -> GiopMessage {
    let pool = BufPool::shared();
    let frame = msg.encode(order).expect("encode");
    let frames = split_into_fragments(&frame, max_body, &pool).expect("split");

    // Continuations — and only continuations — are Fragment frames.
    for (i, f) in frames.iter().enumerate() {
        let kind = MessageKind::from_u8(f[7]).expect("kind");
        if i == 0 {
            assert_ne!(kind, MessageKind::Fragment, "lead frame keeps its kind");
        } else {
            assert_eq!(kind, MessageKind::Fragment, "continuation {i}");
        }
        // No frame's body exceeds the requested chunk size.
        assert!(f.len() <= 12 + max_body.max(1), "frame {i} over max_body");
    }

    let mut asm = FragmentAssembler::new();
    let mut done = None;
    for (i, f) in frames.iter().enumerate() {
        match asm.push_frame(f).expect("push_frame") {
            Some(m) => {
                assert_eq!(i, frames.len() - 1, "message completed early");
                done = Some(m);
            }
            None => assert!(i + 1 < frames.len(), "train ended without a message"),
        }
    }
    assert!(!asm.in_progress(), "assembler idle after the train");
    done.expect("train produced a message")
}

#[test]
fn fragment_trains_roundtrip_at_arbitrary_chunk_sizes() {
    prop::cases(128, |rng| {
        let msg = arb_message(rng);
        let order = arb_order(rng);
        // Chunk sizes from degenerate (1 byte) to bigger-than-body.
        let max_body = match rng.gen_range(0..4) {
            0 => 1,
            1 => rng.gen_range(2..16) as usize,
            2 => rng.gen_range(16..256) as usize,
            _ => 1 << 20,
        };
        assert_eq!(split_and_reassemble(&msg, order, max_body), msg);
    });
}

#[test]
fn one_byte_fragments_reassemble_exactly() {
    let msg = reply_ok(42, Value::Str("stream me one byte at a time".into()));
    for order in [ByteOrder::BigEndian, ByteOrder::LittleEndian] {
        assert_eq!(split_and_reassemble(&msg, order, 1), msg);
    }
}

#[test]
fn torn_final_fragment_is_a_typed_error() {
    let pool = BufPool::shared();
    let msg = reply_ok(7, Value::Str("x".repeat(300)));
    let frame = msg.encode(ByteOrder::BigEndian).expect("encode");
    let frames = split_into_fragments(&frame, 64, &pool).expect("split");
    assert!(frames.len() >= 3, "need a multi-fragment train");

    let mut asm = FragmentAssembler::new();
    for f in &frames[..frames.len() - 1] {
        assert!(asm.push_frame(f).expect("mid-train").is_none());
    }
    // Final fragment torn: header claims more body than follows.
    let last = &frames[frames.len() - 1];
    let torn = &last[..last.len() - 3];
    assert!(matches!(
        asm.push_frame(torn),
        Err(WireError::UnexpectedEof { .. })
    ));
}

#[test]
fn lone_fragment_and_interrupted_train_are_protocol_errors() {
    let pool = BufPool::shared();
    let msg = reply_ok(9, Value::Str("y".repeat(200)));
    let frame = msg.encode(ByteOrder::LittleEndian).expect("encode");
    let frames = split_into_fragments(&frame, 64, &pool).expect("split");

    // A continuation with no train open.
    let mut asm = FragmentAssembler::new();
    assert!(matches!(
        asm.push_frame(&frames[1]),
        Err(WireError::BadTag { .. })
    ));

    // A non-Fragment frame arriving mid-train.
    let mut asm = FragmentAssembler::new();
    assert!(asm.push_frame(&frames[0]).expect("lead").is_none());
    let interloper = reply_ok(10, Value::Void)
        .encode(ByteOrder::LittleEndian)
        .expect("encode");
    assert!(matches!(
        asm.push_frame(&interloper),
        Err(WireError::BadTag { .. })
    ));
    // The error resets the train; the assembler is reusable.
    assert!(!asm.in_progress());
}

#[test]
fn peer_close_mid_fragment_surfaces_closed_not_a_hang() {
    let pool = BufPool::shared();
    let msg = reply_ok(11, Value::Str("z".repeat(500)));
    let frame = msg.encode(ByteOrder::BigEndian).expect("encode");
    let frames = split_into_fragments(&frame, 64, &pool).expect("split");
    assert!(frames.len() >= 2);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let sender = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        // One whole lead frame, then a few bytes of the continuation,
        // then a hard close mid-frame.
        s.write_all(&frames[0]).expect("lead");
        s.write_all(&frames[1][..5]).expect("partial continuation");
        drop(s);
    });

    let (conn, _) = listener.accept().expect("accept");
    let mut framed = FramedTcp::new(conn);
    // Hang-guard: a correct transport notices the close immediately; a
    // broken one trips this timeout instead of wedging the test.
    framed
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let mut asm = FragmentAssembler::new();
    let lead = framed.recv_frame().expect("lead frame");
    assert!(asm.push_frame(&lead).expect("lead").is_none());
    assert!(asm.in_progress());

    match framed.recv_frame() {
        Err(WireError::Closed) => {}
        other => panic!("expected Closed after mid-frame hangup, got {other:?}"),
    }
    sender.join().expect("sender");
}
