//! Per-ORB traffic counters.
//!
//! The scalability experiments (E1, E4, E6) quantify discovery cost in
//! *IIOP round-trips* and *bytes marshalled* — the same units the paper
//! argues about qualitatively. Counters are lock-free atomics so that
//! the measurement does not perturb the measured path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic traffic counters for one ORB instance.
#[derive(Default, Debug)]
pub struct OrbMetrics {
    /// GIOP Requests sent by this ORB acting as a client.
    pub requests_sent: AtomicU64,
    /// GIOP Requests served by this ORB's adapter (arrived via IIOP).
    pub requests_served: AtomicU64,
    /// Invocations short-circuited because the target servant is local.
    pub local_dispatches: AtomicU64,
    /// Bytes of GIOP frames written to transports.
    pub bytes_sent: AtomicU64,
    /// Bytes of GIOP frames read from transports.
    pub bytes_received: AtomicU64,
    /// Replies carrying exceptions (user or system) sent by this ORB.
    pub exceptions_sent: AtomicU64,
    /// LocateRequest probes served.
    pub locates_served: AtomicU64,
}

/// A point-in-time copy of the counters, for before/after deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// See [`OrbMetrics::requests_sent`].
    pub requests_sent: u64,
    /// See [`OrbMetrics::requests_served`].
    pub requests_served: u64,
    /// See [`OrbMetrics::local_dispatches`].
    pub local_dispatches: u64,
    /// See [`OrbMetrics::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`OrbMetrics::bytes_received`].
    pub bytes_received: u64,
    /// See [`OrbMetrics::exceptions_sent`].
    pub exceptions_sent: u64,
    /// See [`OrbMetrics::locates_served`].
    pub locates_served: u64,
}

impl MetricsSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_sent: self.requests_sent - earlier.requests_sent,
            requests_served: self.requests_served - earlier.requests_served,
            local_dispatches: self.local_dispatches - earlier.local_dispatches,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            exceptions_sent: self.exceptions_sent - earlier.exceptions_sent,
            locates_served: self.locates_served - earlier.locates_served,
        }
    }

    /// Total invocations regardless of locality.
    pub fn total_invocations(&self) -> u64 {
        self.requests_sent + self.local_dispatches
    }
}

impl OrbMetrics {
    /// Capture the current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_sent: self.requests_sent.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            local_dispatches: self.local_dispatches.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            exceptions_sent: self.exceptions_sent.load(Ordering::Relaxed),
            locates_served: self.locates_served.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = OrbMetrics::default();
        m.add(&m.requests_sent, 3);
        m.add(&m.bytes_sent, 100);
        let s1 = m.snapshot();
        m.add(&m.requests_sent, 2);
        let s2 = m.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.requests_sent, 2);
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(s2.total_invocations(), 5);
    }
}
