//! The event-loop reactor server core.
//!
//! The threaded core in [`crate::orb`] spends one OS thread per
//! connection plus one per in-flight request; at thousands of
//! concurrent requests the per-thread stacks and scheduler churn
//! dominate the cost of serving a call. This module replaces that with
//! the shape real high-fan-in ORBs use:
//!
//! * **one reactor thread** owns the listener and every accepted
//!   connection, driven by `poll(2)` readiness
//!   ([`webfindit_wire::poll`]). Reads are incremental
//!   ([`NbFramed::on_readable`]) so a slow or malicious peer that
//!   trickles half a header costs a buffer, not a blocked thread;
//! * **a bounded worker pool** executes servant dispatch off the
//!   reactor thread, so a stalled servant blocks one worker, never the
//!   event loop. Workers hand encoded reply frames back through a
//!   completion queue and wake the reactor via a loopback socket pair;
//! * **write backpressure**: replies queue per connection
//!   ([`NbFramed`]'s send queue) and drain on write readiness. When a
//!   connection's queue crosses the high-water mark the reactor stops
//!   *reading* from it — a client that will not drain its replies
//!   cannot balloon server memory by pipelining more requests;
//! * **fragment streaming**: replies whose encoded body exceeds
//!   [`FRAGMENT_BODY_SIZE`] are split into a GIOP fragment train
//!   ([`giop::split_into_fragments`]), so one multi-megabyte reply
//!   becomes a sequence of bounded buffers interleaved with the
//!   connection's other traffic at frame granularity.
//!
//! Protocol semantics are identical to the threaded core: CancelRequest
//! suppresses the reply of a still-running dispatch, servant panics
//! become system exceptions, protocol garbage earns a GIOP MessageError
//! and a closed connection, and shutdown broadcasts CloseConnection so
//! clients classify their outstanding requests as safely retriable.

use crate::adapter::ObjectAdapter;
use crate::metrics::OrbMetrics;
use crate::orb::{dispatch_reply, MAX_REMEMBERED_CANCELS};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use webfindit_base::sync::Mutex;
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{
    self, FragmentAssembler, GiopMessage, LocateStatus, RequestHeader, FRAGMENT_BODY_SIZE,
};
use webfindit_wire::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use webfindit_wire::transport::NbFramed;
use webfindit_wire::{BufPool, FrameBuf, Value, WireResult};

/// Per-connection send-queue depth above which the reactor stops
/// reading from that connection until the queue drains.
const HIGH_WATER: usize = 1 << 20;
/// Queue depth at which a paused connection resumes reading.
const LOW_WATER: usize = HIGH_WATER / 2;
/// Fallback poll timeout so a lost wake can delay, never deadlock,
/// shutdown or completion delivery.
const POLL_TIMEOUT_MS: i32 = 250;

/// A dispatch handed to the worker pool.
struct Job {
    conn_id: u64,
    header: RequestHeader,
    args: Vec<Value>,
    /// Shared with the reactor so a CancelRequest arriving mid-dispatch
    /// suppresses the reply.
    canceled: Arc<Mutex<HashSet<u32>>>,
}

/// Encoded reply frames ready to be queued on a connection.
struct Completion {
    conn_id: u64,
    frames: Vec<FrameBuf>,
}

/// State shared between the reactor thread and the worker pool.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    /// Write end of the wake pair; one byte means "drain completions".
    wake_tx: TcpStream,
}

impl Shared {
    fn push(&self, completion: Completion) {
        self.completions.lock().push(completion);
        // Nonblocking: a full wake buffer already guarantees a pending
        // wake, so WouldBlock is success, not failure.
        let _ = (&self.wake_tx).write(&[1u8]);
    }
}

/// One accepted connection in the reactor's table.
struct Conn {
    nb: NbFramed,
    assembler: FragmentAssembler,
    canceled: Arc<Mutex<HashSet<u32>>>,
    /// Reads suspended: the send queue crossed [`HIGH_WATER`].
    paused: bool,
    /// Drain the send queue, then drop (set after MessageError).
    closing: bool,
}

/// Handle kept by [`crate::orb::Orb`]: joining it completes shutdown.
pub(crate) struct ReactorCore {
    pub(crate) join: JoinHandle<()>,
}

/// Spawn the reactor thread and its worker pool over `listener`.
#[allow(clippy::too_many_arguments)] // the ORB's full server context
pub(crate) fn spawn(
    name: String,
    listener: TcpListener,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    order: ByteOrder,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    pool: Arc<BufPool>,
) -> std::io::Result<ReactorCore> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = wake_pair()?;
    let shared = Arc::new(Shared {
        completions: Mutex::new_labeled(Vec::new(), "orb::reactor::Shared.completions"),
        wake_tx,
    });

    let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
    // Workers share one receiver behind a mutex: the holder parks in
    // recv, the rest park on the lock, and each delivered job releases
    // the lock to the next worker. Classic hand-off pool, no condvar.
    let job_rx = Arc::new(
        Mutex::new_labeled(job_rx, "orb::reactor::WorkerPool.jobs").allow_hold_across_blocking(
            "worker parks in recv() while holding; the hold IS the hand-off discipline",
        ),
    );
    for i in 0..workers.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let adapter = Arc::clone(&adapter);
        let metrics = Arc::clone(&metrics);
        let shared = Arc::clone(&shared);
        let pool = Arc::clone(&pool);
        // Deliberately detached: a worker stalled inside a servant must
        // not wedge shutdown (the threaded core's per-request threads
        // were equally detached). Workers exit when the job sender
        // drops with the reactor.
        std::thread::Builder::new()
            .name(format!("orb-{name}-worker-{i}"))
            .spawn(move || worker_loop(job_rx, adapter, metrics, order, shared, pool))?;
    }

    let join = std::thread::Builder::new()
        .name(format!("orb-{name}-reactor"))
        .spawn(move || {
            Reactor {
                listener,
                wake_rx,
                conns: HashMap::new(),
                next_conn_id: 1,
                shared,
                job_tx,
                shutdown,
                adapter,
                metrics,
                order,
                pool,
            }
            .run()
        })?;
    Ok(ReactorCore { join })
}

/// A connected loopback socket pair: workers write to `.0`, the reactor
/// polls `.1`. (std offers no `socketpair`, so one is improvised from a
/// throwaway listener.)
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

fn worker_loop(
    jobs: Arc<Mutex<Receiver<Job>>>,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    order: ByteOrder,
    shared: Arc<Shared>,
    pool: Arc<BufPool>,
) {
    loop {
        let job = match jobs.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // reactor gone, queue drained
        };
        let reply = dispatch_reply(&job.header, &job.args, &adapter, &metrics);
        if job.canceled.lock().remove(&job.header.request_id) {
            // The client's deadline already expired; the reply would be
            // bytes it discards.
            continue;
        }
        if !job.header.response_expected {
            continue;
        }
        if let Ok(frames) = encode_reply_frames(&reply, order, &pool, &metrics) {
            shared.push(Completion {
                conn_id: job.conn_id,
                frames,
            });
        }
    }
}

/// Encode `msg` into one pooled frame, or a fragment train when the
/// body exceeds [`FRAGMENT_BODY_SIZE`].
fn encode_reply_frames(
    msg: &GiopMessage,
    order: ByteOrder,
    pool: &Arc<BufPool>,
    metrics: &OrbMetrics,
) -> WireResult<Vec<FrameBuf>> {
    let frame = msg.encode_pooled(order, pool)?;
    if frame.len() <= 12 + FRAGMENT_BODY_SIZE {
        return Ok(vec![frame.into()]);
    }
    let fragments = giop::split_into_fragments(&frame, FRAGMENT_BODY_SIZE, pool)?;
    metrics.add(&metrics.fragmented_replies, 1);
    metrics.add(
        &metrics.fragments_sent,
        fragments.len().saturating_sub(1) as u64,
    );
    Ok(fragments.into_iter().map(FrameBuf::from).collect())
}

/// What handling one decoded message means for its connection.
enum ConnAction {
    Continue,
    /// Drop the connection immediately (orderly close or peer error).
    Close,
    /// Send MessageError, drain, then drop.
    ProtocolError,
}

struct Reactor {
    listener: TcpListener,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    shutdown: Arc<AtomicBool>,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    order: ByteOrder,
    pool: Arc<BufPool>,
}

/// What a pollfd entry refers to.
enum Target {
    Listener,
    Wake,
    Conn(u64),
}

impl Reactor {
    fn run(mut self) {
        loop {
            let (mut fds, targets) = self.build_poll_set();
            if poll_fds(&mut fds, POLL_TIMEOUT_MS).is_err() {
                // poll(2) itself failing (EINVAL/ENOMEM) is not
                // recoverable by retry with the same set; treat as
                // shutdown rather than spin.
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut dead: Vec<u64> = Vec::new();
            for (fd, target) in fds.iter().zip(&targets) {
                match target {
                    Target::Listener => {
                        if fd.ready(POLLIN) {
                            self.accept_ready();
                        }
                    }
                    Target::Wake => {
                        if fd.ready(POLLIN) || fd.failed() {
                            drain_wake(&self.wake_rx);
                        }
                    }
                    Target::Conn(id) => {
                        if fd.revents == 0 {
                            continue;
                        }
                        if !self.service_conn(*id, fd.ready(POLLIN), fd.ready(POLLOUT)) {
                            dead.push(*id);
                        }
                    }
                }
            }
            for id in dead {
                self.conns.remove(&id);
            }
            // Completions drain strictly AFTER the wake socket: workers
            // push a completion and THEN write the wake byte, so once a
            // wake byte has been consumed the matching completion is
            // guaranteed visible here. Draining in the other order can
            // eat the wake byte for a completion it never saw, leaving
            // that reply to wait out a full poll timeout.
            self.drain_completions();
        }
        self.close_all();
    }

    fn build_poll_set(&self) -> (Vec<PollFd>, Vec<Target>) {
        let mut fds = Vec::with_capacity(2 + self.conns.len());
        let mut targets = Vec::with_capacity(2 + self.conns.len());
        fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        targets.push(Target::Listener);
        fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
        targets.push(Target::Wake);
        for (id, conn) in &self.conns {
            let mut events = 0i16;
            if !conn.paused && !conn.closing {
                events |= POLLIN;
            }
            if conn.nb.wants_write() {
                events |= POLLOUT;
            }
            // Registering with no events still reports errors/hangups,
            // which is exactly what a paused connection needs.
            fds.push(PollFd::new(conn.nb.stream().as_raw_fd(), events));
            targets.push(Target::Conn(*id));
        }
        (fds, targets)
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let nb = match NbFramed::new(stream) {
                Ok(nb) => nb,
                Err(_) => continue,
            };
            let id = self.next_conn_id;
            self.next_conn_id += 1;
            self.conns.insert(
                id,
                Conn {
                    nb,
                    assembler: FragmentAssembler::new(),
                    canceled: Arc::new(Mutex::new_labeled(
                        HashSet::new(),
                        "orb::reactor::Conn.canceled",
                    )),
                    paused: false,
                    closing: false,
                },
            );
        }
    }

    /// Queue every completed reply on its connection and start the
    /// frames moving; completions for connections that died in the
    /// meantime are dropped.
    fn drain_completions(&mut self) {
        let completions: Vec<Completion> = {
            let mut queue = self.shared.completions.lock();
            std::mem::take(&mut *queue)
        };
        let mut dead: Vec<u64> = Vec::new();
        for completion in completions {
            let Some(conn) = self.conns.get_mut(&completion.conn_id) else {
                continue;
            };
            for frame in completion.frames {
                self.metrics
                    .add(&self.metrics.bytes_sent, frame.len() as u64);
                conn.nb.enqueue(frame);
            }
            if !flush_conn(conn, &self.metrics) {
                dead.push(completion.conn_id);
            }
        }
        for id in dead {
            self.conns.remove(&id);
        }
    }

    /// Service readiness on one connection. Returns false when the
    /// connection must be dropped.
    fn service_conn(&mut self, id: u64, readable: bool, writable: bool) -> bool {
        if writable {
            let Some(conn) = self.conns.get_mut(&id) else {
                return true;
            };
            if !flush_conn(conn, &self.metrics) {
                return false;
            }
        }
        if readable && !self.read_conn(id) {
            return false;
        }
        // Errors/hangups with no readable data surface as a failed read
        // next round (poll keeps reporting them), so no special case.
        true
    }

    /// Read whatever the socket has, reassemble frames, and act on each
    /// complete message. Returns false when the connection must drop.
    fn read_conn(&mut self, id: u64) -> bool {
        let read = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return true;
            };
            match conn.nb.on_readable() {
                Ok(read) => read,
                // Framing garbage (bad magic, oversized header): GIOP
                // says tell the peer, then hang up.
                Err(_) => return self.protocol_error(id),
            }
        };
        for frame in &read.frames {
            self.metrics
                .add(&self.metrics.bytes_received, frame.len() as u64);
            let pushed = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return true;
                };
                conn.assembler.push_frame(frame)
            };
            let action = match pushed {
                Ok(None) => ConnAction::Continue, // mid-train
                Ok(Some(msg)) => self.handle_message(id, msg),
                Err(_) => ConnAction::ProtocolError,
            };
            match action {
                ConnAction::Continue => {}
                ConnAction::Close => return false,
                ConnAction::ProtocolError => return self.protocol_error(id),
            }
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        if read.closed {
            return false;
        }
        // Replies enqueued inline (LocateReply) start draining now.
        flush_conn(conn, &self.metrics)
    }

    fn handle_message(&mut self, id: u64, msg: GiopMessage) -> ConnAction {
        match msg {
            GiopMessage::Request { header, args } => {
                self.metrics.add(&self.metrics.requests_served, 1);
                let Some(conn) = self.conns.get(&id) else {
                    return ConnAction::Close;
                };
                let job = Job {
                    conn_id: id,
                    header,
                    args,
                    canceled: Arc::clone(&conn.canceled),
                };
                if self.job_tx.send(job).is_err() {
                    // Worker pool gone: only happens at teardown.
                    return ConnAction::Close;
                }
                ConnAction::Continue
            }
            GiopMessage::LocateRequest {
                request_id,
                object_key,
            } => {
                self.metrics.add(&self.metrics.locates_served, 1);
                let status = if self.adapter.contains(&object_key) {
                    LocateStatus::ObjectHere
                } else {
                    LocateStatus::UnknownObject
                };
                let reply = GiopMessage::LocateReply {
                    request_id,
                    status,
                    forward: None,
                };
                match reply.encode_pooled(self.order, &self.pool) {
                    Ok(frame) => {
                        let Some(conn) = self.conns.get_mut(&id) else {
                            return ConnAction::Close;
                        };
                        self.metrics
                            .add(&self.metrics.bytes_sent, frame.len() as u64);
                        conn.nb.enqueue(frame);
                        ConnAction::Continue
                    }
                    Err(_) => ConnAction::Close,
                }
            }
            GiopMessage::CancelRequest { request_id } => {
                let Some(conn) = self.conns.get(&id) else {
                    return ConnAction::Close;
                };
                let mut set = conn.canceled.lock();
                if set.len() >= MAX_REMEMBERED_CANCELS {
                    set.clear();
                }
                set.insert(request_id);
                ConnAction::Continue
            }
            GiopMessage::CloseConnection | GiopMessage::MessageError => ConnAction::Close,
            // Clients do not send replies; lone Fragment frames are
            // already rejected by the assembler.
            GiopMessage::Reply { .. }
            | GiopMessage::LocateReply { .. }
            | GiopMessage::Fragment { .. } => ConnAction::ProtocolError,
        }
    }

    /// Queue a GIOP MessageError, stop reading, and let the send queue
    /// drain before the drop. Returns false when the connection cannot
    /// even be flushed (drop it now).
    fn protocol_error(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        if let Ok(frame) = GiopMessage::MessageError.encode_pooled(self.order, &self.pool) {
            self.metrics
                .add(&self.metrics.bytes_sent, frame.len() as u64);
            conn.nb.enqueue(frame);
        }
        conn.closing = true;
        conn.assembler.reset();
        flush_conn(conn, &self.metrics)
    }

    /// Shutdown path: tell every peer its outstanding requests were not
    /// processed (CloseConnection), push the frames best-effort, drop
    /// everything.
    fn close_all(&mut self) {
        let close = GiopMessage::CloseConnection.encode(self.order).ok();
        for (_, mut conn) in self.conns.drain() {
            if let Some(frame) = close.clone() {
                conn.nb.enqueue(frame);
                let _ = conn.nb.on_writable();
            }
            conn.nb.shutdown();
        }
    }
}

/// Push queued bytes, then recompute the backpressure state. Returns
/// false when the connection must be dropped (write error, or `closing`
/// with an empty queue).
fn flush_conn(conn: &mut Conn, metrics: &OrbMetrics) -> bool {
    if conn.nb.on_writable().is_err() {
        return false;
    }
    let queued = conn.nb.queued_bytes();
    if conn.closing && queued == 0 {
        return false;
    }
    if !conn.paused && queued > HIGH_WATER {
        conn.paused = true;
        metrics.add(&metrics.backpressure_pauses, 1);
    } else if conn.paused && queued < LOW_WATER {
        conn.paused = false;
    }
    true
}

/// Swallow pending wake bytes; the actual work is the completion queue.
fn drain_wake(wake_rx: &TcpStream) {
    let mut sink = [0u8; 256];
    loop {
        match (&*wake_rx).read(&mut sink) {
            Ok(0) => return,   // workers all gone
            Ok(_) => continue, // coalesce every pending wake
            Err(_) => return,  // WouldBlock: drained
        }
    }
}
