//! # webfindit — dynamic content-based coupling of Internet databases
//!
//! The core crate of the WebFINDIT reproduction: it assembles the four
//! layers of the paper's architecture (Figure 3) from the substrate
//! crates and implements everything above them.
//!
//! * **Query layer** — [`processor::Processor`] executes WebTassili
//!   statements; [`session::BrowserSession`] is the browser stand-in,
//!   holding the user's navigation context and transcript.
//! * **Communication layer** — ORB instances from `webfindit-orb`;
//!   every inter-site interaction is a GIOP invocation through them.
//! * **Metadata layer** — one [`webfindit_codb::CoDatabase`] per site,
//!   exported as a CORBA servant ([`servants::CoDatabaseServant`]).
//! * **Data layer** — databases behind Information Source Interfaces
//!   ([`servants::IsiServant`]) reached through the JDBC/JNI/native
//!   bridges of `webfindit-connect`.
//!
//! On top of the layers:
//!
//! * [`federation::Federation`] — deployment: ORBs, sites, naming,
//!   document store, and the wiring between them.
//! * [`discovery`] — the incremental query-resolution algorithm of §2
//!   (local co-database → service links → coalition peers, breadth
//!   first), with per-query cost accounting.
//! * [`fedquery`] — federated cross-site query execution: member-set
//!   resolution via discovery, per-site subquery decomposition with
//!   filter/limit pushdown and semi-join key shipping, parallel
//!   shipping over the multiplexed channels, and a deterministic merge
//!   that degrades gracefully per site ([`failure::SiteFailure`]).
//! * [`baselines`] — the comparison systems for the scalability
//!   experiments: flat broadcast and a centralized global index.
//! * [`synth`] — deterministic synthetic federation generator used by
//!   experiments E1/E4/E6.
//! * [`docs`] — the Web stand-in resolving documentation URLs.
//! * [`trace`] — layered execution traces (the Figure 3 regeneration).

#![warn(missing_docs)]

pub mod baselines;
pub mod discovery;
pub mod docs;
pub mod failure;
pub mod federation;
pub mod fedquery;
pub mod processor;
pub mod servants;
pub mod session;
pub mod synth;
pub mod trace;
pub mod value_map;

pub use discovery::{CodbAnswerCache, DiscoveryEngine, DiscoveryOutcome, Lead};
pub use docs::{DocFormat, DocStore, Document};
pub use failure::SiteFailure;
pub use federation::{Federation, SiteHandle, SiteSpec};
pub use fedquery::{FedExecutor, FedOutcome, FedPlan, FedStats};
pub use processor::{Processor, Response};
pub use servants::StallGate;
pub use session::BrowserSession;
pub use trace::{Layer, Trace, TraceEvent};
/// Re-export of the communication layer (needed by deployments for
/// chaos plans and breaker configuration).
pub use webfindit_orb as orb;
/// Re-export of the wire layer (needed by deployments for [`federation::Federation::add_orb`]).
pub use webfindit_wire as wire;

use std::fmt;

/// Errors surfaced by the WebFINDIT core.
#[derive(Debug)]
#[non_exhaustive]
pub enum WebfinditError {
    /// The communication layer failed.
    Orb(webfindit_orb::OrbError),
    /// The connectivity layer failed.
    Connect(webfindit_connect::ConnectError),
    /// A co-database operation failed.
    Codb(webfindit_codb::CodbError),
    /// WebTassili parsing or translation failed.
    Tassili(webfindit_tassili::TassiliError),
    /// A referenced site is not part of the federation.
    UnknownSite(String),
    /// A referenced document URL is not resolvable.
    UnknownDocument(String),
    /// The requested information type matched nothing anywhere.
    NothingFound(String),
    /// A session operation needed a coalition connection first.
    NotConnected,
    /// Malformed payload crossing the ORB boundary.
    Protocol(String),
}

impl fmt::Display for WebfinditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebfinditError::Orb(e) => write!(f, "communication layer: {e}"),
            WebfinditError::Connect(e) => write!(f, "data layer: {e}"),
            WebfinditError::Codb(e) => write!(f, "metadata layer: {e}"),
            WebfinditError::Tassili(e) => write!(f, "query layer: {e}"),
            WebfinditError::UnknownSite(s) => write!(f, "unknown site: {s}"),
            WebfinditError::UnknownDocument(u) => write!(f, "unresolvable document: {u}"),
            WebfinditError::NothingFound(t) => {
                write!(f, "no coalition or service link advertises: {t}")
            }
            WebfinditError::NotConnected => {
                write!(f, "connect to a coalition first (Connect To Coalition …)")
            }
            WebfinditError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WebfinditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WebfinditError::Orb(e) => Some(e),
            WebfinditError::Connect(e) => Some(e),
            WebfinditError::Codb(e) => Some(e),
            WebfinditError::Tassili(e) => Some(e),
            _ => None,
        }
    }
}

impl From<webfindit_orb::OrbError> for WebfinditError {
    fn from(e: webfindit_orb::OrbError) -> Self {
        WebfinditError::Orb(e)
    }
}
impl From<webfindit_connect::ConnectError> for WebfinditError {
    fn from(e: webfindit_connect::ConnectError) -> Self {
        WebfinditError::Connect(e)
    }
}
impl From<webfindit_codb::CodbError> for WebfinditError {
    fn from(e: webfindit_codb::CodbError) -> Self {
        WebfinditError::Codb(e)
    }
}
impl From<webfindit_tassili::TassiliError> for WebfinditError {
    fn from(e: webfindit_tassili::TassiliError) -> Self {
        WebfinditError::Tassili(e)
    }
}

/// Result alias for WebFINDIT operations.
pub type WfResult<T> = Result<T, WebfinditError>;
