//! Golden tests: run the full analyzer over each fixture workspace in
//! `tests/fixtures/<case>/` and compare the rendered findings (witness
//! paths included) against the case's `expected.txt`.
//!
//! Regenerate a golden by running the test with
//! `XLINT_BLESS=1 cargo test -p xlint --test fixtures` after verifying
//! the new output by eye.

use std::path::Path;

fn run_case(name: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let analysis = xlint::analyze(&root);
    assert!(analysis.scanned > 0, "case {name}: no files scanned");
    let mut got = String::new();
    for (finding, _) in &analysis.findings {
        got.push_str(&finding.to_string());
        got.push('\n');
    }
    let golden = root.join("expected.txt");
    if std::env::var_os("XLINT_BLESS").is_some() {
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("case {name}: missing {}: {e}", golden.display()));
    assert_eq!(
        got.trim(),
        expected.trim(),
        "case {name}: findings drifted from expected.txt \
         (run with XLINT_BLESS=1 to regenerate after reviewing)"
    );
}

/// Reactor event loop reaching a tracked lock and a blocking call via a
/// tick/step call-graph cycle and a cross-file helper.
#[test]
fn reactor_blocking_fixture() {
    run_case("reactor_blocking");
}

/// Client-side orphan invokes (direct and through a forwarder), a dead
/// servant arm, and an `operations()` listing out of step with the
/// dispatch table.
#[test]
fn idl_drift_fixture() {
    run_case("idl_drift");
}

/// A healthy counter, a recorded-but-unsurfaced counter, and a counter
/// nothing ever increments.
#[test]
fn metrics_drift_fixture() {
    run_case("metrics_drift");
}

/// A guard held across a two-hop cross-file chain ending in fsync.
#[test]
fn guard_transitive_fixture() {
    run_case("guard_transitive");
}

/// Stoplist negative: `v.push(1)` under a guard must not resolve to a
/// same-name method that blocks. Zero findings expected.
#[test]
fn clean_fixture() {
    run_case("clean");
}

/// Federated fan-out-merge: holding the merge lock across the shipping
/// wave is flagged (the wire round trips happen under the guard, via
/// `ship_wave -> ship_one -> invoke`); the ship-then-merge shape the
/// real executor uses stays quiet.
#[test]
fn fed_fanout_fixture() {
    run_case("fed_fanout");
}
