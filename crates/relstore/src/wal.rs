//! The write-ahead log: ARIES-style REDO/UNDO records and the log
//! manager.
//!
//! Every durable mutation appends one [`WalRecord`] carrying both the
//! redo image and the undo (before) image, framed as
//! `[len u32][fnv1a64 u64][payload]` so a torn tail is detected by
//! checksum and truncated rather than replayed as garbage. The log is
//! forced (`fsync`) when a transaction commits — the only durability
//! barrier a committed transaction needs, since data pages are written
//! lazily at checkpoints (no-steal for data, force for the log).
//!
//! [`CrashPoint`] is the fault-injection hook of the crash harness:
//! the storage layer consults an armed [`CrashInjector`] at the three
//! interesting instants (after a WAL append, between checkpoint page
//! flushes, just before the commit record) and simulates process death
//! by poisoning the database until it is reopened.

use crate::file_mgr::{fnv1a64, Vfs};
use crate::schema::{Column, TableSchema};
use crate::types::{DataType, Datum, Row};
use crate::{RelError, RelResult};
use std::fmt;
use std::sync::Arc;

/// One WAL record. DML records carry before images for UNDO and after
/// images for REDO; `DropTable` snapshots the whole table so an
/// uncommitted drop can be rolled back during recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction `tx` started.
    Begin {
        /// Transaction id.
        tx: u64,
    },
    /// Transaction `tx` committed; everything before this is durable.
    Commit {
        /// Transaction id.
        tx: u64,
    },
    /// Transaction `tx` rolled back in memory before the crash.
    Abort {
        /// Transaction id.
        tx: u64,
    },
    /// A row was inserted into `table` at `slot`.
    Insert {
        /// Transaction id.
        tx: u64,
        /// Target table (lowercase).
        table: String,
        /// Heap slot the row landed in.
        slot: u64,
        /// The inserted row (redo image; undo is "delete the slot").
        row: Row,
    },
    /// The row at `slot` of `table` was deleted.
    Delete {
        /// Transaction id.
        tx: u64,
        /// Target table (lowercase).
        table: String,
        /// Heap slot the row left.
        slot: u64,
        /// The deleted row (undo image; redo is "delete the slot").
        row: Row,
    },
    /// The row at `slot` of `table` was replaced.
    Update {
        /// Transaction id.
        tx: u64,
        /// Target table (lowercase).
        table: String,
        /// Heap slot.
        slot: u64,
        /// Before image (undo).
        old: Row,
        /// After image (redo).
        new: Row,
    },
    /// `CREATE TABLE` ran.
    CreateTable {
        /// Transaction id.
        tx: u64,
        /// The created schema.
        schema: TableSchema,
    },
    /// `DROP TABLE` ran; the full table content rides along for UNDO.
    DropTable {
        /// Transaction id.
        tx: u64,
        /// The dropped table, snapshot at drop time.
        table: TableImage,
    },
    /// `CREATE INDEX` ran.
    CreateIndex {
        /// Transaction id.
        tx: u64,
        /// Target table (lowercase).
        table: String,
        /// Index name (lowercase).
        name: String,
        /// Indexed column position.
        column: u32,
    },
}

impl WalRecord {
    /// The owning transaction id.
    pub fn tx(&self) -> u64 {
        match self {
            WalRecord::Begin { tx }
            | WalRecord::Commit { tx }
            | WalRecord::Abort { tx }
            | WalRecord::Insert { tx, .. }
            | WalRecord::Delete { tx, .. }
            | WalRecord::Update { tx, .. }
            | WalRecord::CreateTable { tx, .. }
            | WalRecord::DropTable { tx, .. }
            | WalRecord::CreateIndex { tx, .. } => *tx,
        }
    }
}

/// A serializable snapshot of one table: schema, heap layout (slot ids
/// preserved, tombstones included), and secondary index definitions.
/// Used by `DropTable` records and by checkpoint snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// The table's schema.
    pub schema: TableSchema,
    /// Total heap slots ever allocated (live + tombstoned).
    pub slot_count: u64,
    /// Live `(slot, row)` pairs in slot order.
    pub rows: Vec<(u64, Row)>,
    /// Secondary index definitions `(name, column)`.
    pub indexes: Vec<(String, u32)>,
}

impl TableImage {
    /// Snapshot a live table.
    pub fn of(table: &crate::storage::Table) -> TableImage {
        TableImage {
            schema: table.schema.clone(),
            slot_count: table.slot_count() as u64,
            rows: table
                .scan()
                .map(|(slot, row)| (slot as u64, row.clone()))
                .collect(),
            indexes: table
                .secondary_defs()
                .into_iter()
                .map(|(n, c)| (n, c as u32))
                .collect(),
        }
    }

    /// Rebuild the live table this image was taken from, preserving
    /// slot ids (log replay depends on them).
    pub fn restore(&self) -> crate::storage::Table {
        let mut t = crate::storage::Table::new(self.schema.clone());
        for (slot, row) in &self.rows {
            t.force_restore(*slot as usize, row.clone());
        }
        t.pad_slots(self.slot_count as usize);
        for (name, column) in &self.indexes {
            // Index names were unique when captured.
            let _ = t.create_index(name, *column as usize);
        }
        t
    }
}

// ---- binary encoding ----------------------------------------------------
//
// Dependency-free little-endian encoding. Strings and rows are length-
// prefixed; datum tags are one byte. The format is internal to this
// crate (WAL + snapshot files), versioned by the superblock.

/// Byte-writer extension helpers.
pub(crate) struct Enc(pub Vec<u8>);

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc(Vec::new())
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Byte-reader over a borrowed buffer; every read is bounds-checked so
/// corrupt input decodes to an error, never a panic.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short() -> RelError {
    RelError::Corrupt("record truncated mid-field".into())
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
    fn take(&mut self, n: usize) -> RelResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(short());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> RelResult<u8> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> RelResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    pub(crate) fn u64(&mut self) -> RelResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    pub(crate) fn i64(&mut self) -> RelResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    pub(crate) fn f64(&mut self) -> RelResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    pub(crate) fn i32(&mut self) -> RelResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    pub(crate) fn str(&mut self) -> RelResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RelError::Corrupt("non-UTF8 string".into()))
    }
}

fn enc_datum(e: &mut Enc, d: &Datum) {
    match d {
        Datum::Null => e.u8(0),
        Datum::Int(v) => {
            e.u8(1);
            e.i64(*v);
        }
        Datum::Double(v) => {
            e.u8(2);
            e.f64(*v);
        }
        Datum::Text(s) => {
            e.u8(3);
            e.str(s);
        }
        Datum::Bool(b) => {
            e.u8(4);
            e.u8(*b as u8);
        }
        Datum::Date(v) => {
            e.u8(5);
            e.i32(*v);
        }
    }
}

fn dec_datum(d: &mut Dec<'_>) -> RelResult<Datum> {
    Ok(match d.u8()? {
        0 => Datum::Null,
        1 => Datum::Int(d.i64()?),
        2 => Datum::Double(d.f64()?),
        3 => Datum::Text(d.str()?),
        4 => Datum::Bool(d.u8()? != 0),
        5 => Datum::Date(d.i32()?),
        t => return Err(RelError::Corrupt(format!("unknown datum tag {t}"))),
    })
}

fn enc_row(e: &mut Enc, row: &Row) {
    e.u32(row.len() as u32);
    for d in row {
        enc_datum(e, d);
    }
}

fn dec_row(d: &mut Dec<'_>) -> RelResult<Row> {
    let n = d.u32()? as usize;
    if n > 1 << 20 {
        return Err(RelError::Corrupt(format!("absurd row arity {n}")));
    }
    (0..n).map(|_| dec_datum(d)).collect()
}

fn data_type_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn data_type_of(tag: u8) -> RelResult<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Date,
        t => return Err(RelError::Corrupt(format!("unknown type tag {t}"))),
    })
}

fn enc_schema(e: &mut Enc, s: &TableSchema) {
    e.str(&s.name);
    e.u32(s.columns.len() as u32);
    for c in &s.columns {
        e.str(&c.name);
        e.u8(data_type_tag(c.data_type));
        e.u8(c.not_null as u8);
        e.u8(c.primary_key as u8);
    }
}

fn dec_schema(d: &mut Dec<'_>) -> RelResult<TableSchema> {
    let name = d.str()?;
    let n = d.u32()? as usize;
    if n > 1 << 16 {
        return Err(RelError::Corrupt(format!("absurd column count {n}")));
    }
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let cname = d.str()?;
        let data_type = data_type_of(d.u8()?)?;
        let not_null = d.u8()? != 0;
        let primary_key = d.u8()? != 0;
        let mut col = Column::new(cname, data_type);
        col.not_null = not_null;
        col.primary_key = primary_key;
        columns.push(col);
    }
    Ok(TableSchema { name, columns })
}

pub(crate) fn enc_table_image(e: &mut Enc, img: &TableImage) {
    enc_schema(e, &img.schema);
    e.u64(img.slot_count);
    e.u32(img.rows.len() as u32);
    for (slot, row) in &img.rows {
        e.u64(*slot);
        enc_row(e, row);
    }
    e.u32(img.indexes.len() as u32);
    for (name, column) in &img.indexes {
        e.str(name);
        e.u32(*column);
    }
}

pub(crate) fn dec_table_image(d: &mut Dec<'_>) -> RelResult<TableImage> {
    let schema = dec_schema(d)?;
    let slot_count = d.u64()?;
    let n = d.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let slot = d.u64()?;
        rows.push((slot, dec_row(d)?));
    }
    let ni = d.u32()? as usize;
    let mut indexes = Vec::with_capacity(ni.min(1 << 16));
    for _ in 0..ni {
        let name = d.str()?;
        indexes.push((name, d.u32()?));
    }
    Ok(TableImage {
        schema,
        slot_count,
        rows,
        indexes,
    })
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    match rec {
        WalRecord::Begin { tx } => {
            e.u8(0);
            e.u64(*tx);
        }
        WalRecord::Commit { tx } => {
            e.u8(1);
            e.u64(*tx);
        }
        WalRecord::Abort { tx } => {
            e.u8(2);
            e.u64(*tx);
        }
        WalRecord::Insert {
            tx,
            table,
            slot,
            row,
        } => {
            e.u8(3);
            e.u64(*tx);
            e.str(table);
            e.u64(*slot);
            enc_row(&mut e, row);
        }
        WalRecord::Delete {
            tx,
            table,
            slot,
            row,
        } => {
            e.u8(4);
            e.u64(*tx);
            e.str(table);
            e.u64(*slot);
            enc_row(&mut e, row);
        }
        WalRecord::Update {
            tx,
            table,
            slot,
            old,
            new,
        } => {
            e.u8(5);
            e.u64(*tx);
            e.str(table);
            e.u64(*slot);
            enc_row(&mut e, old);
            enc_row(&mut e, new);
        }
        WalRecord::CreateTable { tx, schema } => {
            e.u8(6);
            e.u64(*tx);
            enc_schema(&mut e, schema);
        }
        WalRecord::DropTable { tx, table } => {
            e.u8(7);
            e.u64(*tx);
            enc_table_image(&mut e, table);
        }
        WalRecord::CreateIndex {
            tx,
            table,
            name,
            column,
        } => {
            e.u8(8);
            e.u64(*tx);
            e.str(table);
            e.str(name);
            e.u32(*column);
        }
    }
    e.0
}

fn decode_record(payload: &[u8]) -> RelResult<WalRecord> {
    let mut d = Dec::new(payload);
    let rec = match d.u8()? {
        0 => WalRecord::Begin { tx: d.u64()? },
        1 => WalRecord::Commit { tx: d.u64()? },
        2 => WalRecord::Abort { tx: d.u64()? },
        3 => WalRecord::Insert {
            tx: d.u64()?,
            table: d.str()?,
            slot: d.u64()?,
            row: dec_row(&mut d)?,
        },
        4 => WalRecord::Delete {
            tx: d.u64()?,
            table: d.str()?,
            slot: d.u64()?,
            row: dec_row(&mut d)?,
        },
        5 => WalRecord::Update {
            tx: d.u64()?,
            table: d.str()?,
            slot: d.u64()?,
            old: dec_row(&mut d)?,
            new: dec_row(&mut d)?,
        },
        6 => WalRecord::CreateTable {
            tx: d.u64()?,
            schema: dec_schema(&mut d)?,
        },
        7 => WalRecord::DropTable {
            tx: d.u64()?,
            table: dec_table_image(&mut d)?,
        },
        8 => WalRecord::CreateIndex {
            tx: d.u64()?,
            table: d.str()?,
            name: d.str()?,
            column: d.u32()?,
        },
        t => return Err(RelError::Corrupt(format!("unknown WAL record tag {t}"))),
    };
    if !d.done() {
        return Err(RelError::Corrupt("trailing bytes after WAL record".into()));
    }
    Ok(rec)
}

/// Frame header: 4-byte payload length + 8-byte payload checksum.
const FRAME_HDR: u64 = 12;

/// What [`LogMgr::scan`] found on open.
#[derive(Debug)]
pub struct LogScan {
    /// Decoded `(byte offset, record)` pairs in log order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset one past the last valid record.
    pub valid_end: u64,
    /// True when a torn/corrupt tail was found past `valid_end`.
    pub torn_tail: bool,
}

/// The append-only log manager.
#[derive(Debug)]
pub struct LogMgr {
    vfs: Arc<dyn Vfs>,
    file: String,
    tail: u64,
    appends: u64,
    flushes: u64,
}

impl LogMgr {
    /// Open the log on `file`, positioned to append at `tail`.
    pub fn new(vfs: Arc<dyn Vfs>, file: impl Into<String>, tail: u64) -> LogMgr {
        LogMgr {
            vfs,
            file: file.into(),
            tail,
            appends: 0,
            flushes: 0,
        }
    }

    /// Byte offset the next append will land at (the next LSN).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// `(appends, flushes)` since this manager was created.
    pub fn counters(&self) -> (u64, u64) {
        (self.appends, self.flushes)
    }

    /// Append `rec`, returning its LSN (byte offset). Not durable
    /// until [`LogMgr::flush`].
    pub fn append(&mut self, rec: &WalRecord) -> RelResult<u64> {
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HDR as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let lsn = self.tail;
        self.vfs.write_at(&self.file, lsn, &frame)?;
        self.tail += frame.len() as u64;
        self.appends += 1;
        Ok(lsn)
    }

    /// Force the log to durable storage.
    pub fn flush(&mut self) -> RelResult<()> {
        self.vfs.sync(&self.file)?;
        self.flushes += 1;
        Ok(())
    }

    /// Scan all records from `start`. Decoding stops at the first
    /// frame that is short, oversized, or fails its checksum — the
    /// torn tail a crash mid-append leaves behind.
    pub fn scan(vfs: &Arc<dyn Vfs>, file: &str, start: u64) -> RelResult<LogScan> {
        let len = vfs.len(file)?;
        let mut records = Vec::new();
        let mut off = start.min(len);
        let mut torn_tail = false;
        while off + FRAME_HDR <= len {
            let mut hdr = [0u8; FRAME_HDR as usize];
            if vfs.read_at(file, off, &mut hdr)? < FRAME_HDR as usize {
                torn_tail = true;
                break;
            }
            let plen = u32::from_le_bytes(hdr[0..4].try_into().expect("4")) as u64;
            let sum = u64::from_le_bytes(hdr[4..12].try_into().expect("8"));
            if plen == 0 || plen > 1 << 26 || off + FRAME_HDR + plen > len {
                torn_tail = true;
                break;
            }
            let mut payload = vec![0u8; plen as usize];
            if vfs.read_at(file, off + FRAME_HDR, &mut payload)? < plen as usize {
                torn_tail = true;
                break;
            }
            if fnv1a64(&payload) != sum {
                torn_tail = true;
                break;
            }
            match decode_record(&payload) {
                Ok(rec) => records.push((off, rec)),
                Err(_) => {
                    torn_tail = true;
                    break;
                }
            }
            off += FRAME_HDR + plen;
        }
        if off < len && !torn_tail {
            // A few trailing bytes shorter than a frame header.
            torn_tail = true;
        }
        Ok(LogScan {
            records,
            valid_end: off,
            torn_tail,
        })
    }

    /// Truncate the log to `end` (dropping a torn tail) and sync.
    pub fn truncate_to(&mut self, end: u64) -> RelResult<()> {
        self.vfs.truncate(&self.file, end)?;
        self.vfs.sync(&self.file)?;
        self.tail = end;
        Ok(())
    }

    /// Start the log over (post-compaction).
    pub fn reset(&mut self) -> RelResult<()> {
        self.truncate_to(0)
    }
}

// ---- crash points -------------------------------------------------------

/// Where the crash harness can kill the storage stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Right after a DML/DDL record reaches the log buffer.
    AfterWalAppend,
    /// Between two page writes of a checkpoint snapshot.
    MidPageFlush,
    /// Just before the commit record is appended.
    PreCommitRecord,
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrashPoint::AfterWalAppend => "after-wal-append",
            CrashPoint::MidPageFlush => "mid-page-flush",
            CrashPoint::PreCommitRecord => "pre-commit-record",
        };
        f.write_str(s)
    }
}

/// A one-shot countdown trigger for one [`CrashPoint`].
#[derive(Debug, Default)]
pub struct CrashInjector {
    armed: Option<(CrashPoint, u64)>,
}

impl CrashInjector {
    /// Arm the injector: the `n`-th future occurrence of `point`
    /// (1-based) crashes the stack.
    pub fn arm(&mut self, point: CrashPoint, n: u64) {
        self.armed = Some((point, n.max(1)));
    }

    /// Disarm without firing.
    pub fn disarm(&mut self) {
        self.armed = None;
    }

    /// Report an occurrence of `point`; true means "crash now" (the
    /// injector disarms itself).
    pub fn hit(&mut self, point: CrashPoint) -> bool {
        match &mut self.armed {
            Some((p, n)) if *p == point => {
                *n -= 1;
                if *n == 0 {
                    self.armed = None;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_mgr::SimVfs;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { tx: 1 },
            WalRecord::Insert {
                tx: 1,
                table: "beds".into(),
                slot: 0,
                row: vec![
                    Datum::Int(1),
                    Datum::Text("ward A".into()),
                    Datum::Null,
                    Datum::Bool(true),
                    Datum::Double(2.5),
                    Datum::Date(19000),
                ],
            },
            WalRecord::Update {
                tx: 1,
                table: "beds".into(),
                slot: 0,
                old: vec![Datum::Int(1)],
                new: vec![Datum::Int(2)],
            },
            WalRecord::Delete {
                tx: 1,
                table: "beds".into(),
                slot: 0,
                row: vec![Datum::Int(2)],
            },
            WalRecord::CreateTable {
                tx: 1,
                schema: TableSchema::new(
                    "t2",
                    vec![
                        Column::new("id", DataType::Int).primary_key(),
                        Column::new("v", DataType::Text).not_null(),
                    ],
                ),
            },
            WalRecord::CreateIndex {
                tx: 1,
                table: "t2".into(),
                name: "t2_v".into(),
                column: 1,
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::Abort { tx: 2 },
        ]
    }

    #[test]
    fn records_roundtrip_through_the_log() {
        let vfs = SimVfs::new() as Arc<dyn Vfs>;
        let mut log = LogMgr::new(Arc::clone(&vfs), "wal", 0);
        let recs = sample_records();
        for r in &recs {
            log.append(r).unwrap();
        }
        log.flush().unwrap();
        let scan = LogMgr::scan(&vfs, "wal", 0).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_end, log.tail());
        let decoded: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(decoded, recs);
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let vfs = SimVfs::new();
        let dyn_vfs = Arc::clone(&vfs) as Arc<dyn Vfs>;
        let mut log = LogMgr::new(Arc::clone(&dyn_vfs), "wal", 0);
        log.append(&WalRecord::Begin { tx: 1 }).unwrap();
        let good_end = log.tail();
        log.append(&WalRecord::Commit { tx: 1 }).unwrap();
        log.flush().unwrap();
        // Deliberately truncate the last record mid-frame.
        vfs.corrupt("wal", 0, &[]); // no-op write to flush pending model
        let full = dyn_vfs.len("wal").unwrap();
        dyn_vfs.truncate("wal", full - 3).unwrap();
        dyn_vfs.sync("wal").unwrap();

        let scan = LogMgr::scan(&dyn_vfs, "wal", 0).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_end, good_end);

        let mut log2 = LogMgr::new(Arc::clone(&dyn_vfs), "wal", scan.valid_end);
        log2.truncate_to(scan.valid_end).unwrap();
        let rescan = LogMgr::scan(&dyn_vfs, "wal", 0).unwrap();
        assert!(!rescan.torn_tail);
        assert_eq!(rescan.records.len(), 1);
    }

    #[test]
    fn corrupted_payload_stops_the_scan() {
        let vfs = SimVfs::new();
        let dyn_vfs = Arc::clone(&vfs) as Arc<dyn Vfs>;
        let mut log = LogMgr::new(Arc::clone(&dyn_vfs), "wal", 0);
        log.append(&WalRecord::Begin { tx: 1 }).unwrap();
        let second = log.tail();
        log.append(&WalRecord::Commit { tx: 1 }).unwrap();
        log.flush().unwrap();
        // Flip a byte inside the second record's payload.
        vfs.corrupt("wal", second as usize + 13, &[0xff]);
        let scan = LogMgr::scan(&dyn_vfs, "wal", 0).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_end, second);
    }

    #[test]
    fn table_image_restores_slots_and_indexes() {
        use crate::storage::Table;
        let mut t = Table::new(TableSchema::new(
            "beds",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("loc", DataType::Text),
            ],
        ));
        let s0 = t
            .insert(vec![Datum::Int(1), Datum::Text("a".into())])
            .unwrap();
        t.insert(vec![Datum::Int(2), Datum::Text("b".into())])
            .unwrap();
        t.insert(vec![Datum::Int(3), Datum::Text("a".into())])
            .unwrap();
        t.delete_slot(s0);
        t.create_index("beds_loc", 1).unwrap();

        let img = TableImage::of(&t);
        let mut e = Enc::new();
        enc_table_image(&mut e, &img);
        let img2 = dec_table_image(&mut Dec::new(&e.0)).unwrap();
        assert_eq!(img, img2);

        let restored = img2.restore();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.slot_count(), t.slot_count());
        assert_eq!(restored.index_names(), vec!["beds_loc".to_string()]);
        // Tombstoned slot stays free; next insert lands past it.
        let rows: Vec<(usize, Row)> = restored.scan().map(|(s, r)| (s, r.clone())).collect();
        let orig: Vec<(usize, Row)> = t.scan().map(|(s, r)| (s, r.clone())).collect();
        assert_eq!(rows, orig);
    }

    #[test]
    fn crash_injector_counts_down_and_fires_once() {
        let mut inj = CrashInjector::default();
        inj.arm(CrashPoint::AfterWalAppend, 3);
        assert!(!inj.hit(CrashPoint::AfterWalAppend));
        assert!(!inj.hit(CrashPoint::PreCommitRecord));
        assert!(!inj.hit(CrashPoint::AfterWalAppend));
        assert!(inj.hit(CrashPoint::AfterWalAppend));
        assert!(!inj.hit(CrashPoint::AfterWalAppend), "one-shot");
        assert_eq!(CrashPoint::MidPageFlush.to_string(), "mid-page-flush");
    }
}
