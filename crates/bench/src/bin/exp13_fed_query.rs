//! E13 — federated cross-site query execution over the 14-site
//! healthcare deployment: sequential per-site shipping vs the parallel
//! wave, cold and warm caches, plus one chaos-kill degraded run.
//!
//! Every member site's servant gets a small stall so a shipped
//! subquery costs what a WAN hop would; the sequential reference then
//! pays the stall once per member while the parallel wave overlaps
//! them. Each timed parallel execution is checked byte-for-byte
//! against the sequential merge (the determinism contract), and the
//! chaos section kills one member's hosting ORB mid-workload to show
//! the query degrades to partial rows instead of an error. Results go
//! to `BENCH_fedquery.json`; EXPERIMENTS.md records them as E13.
//! `--quick` shrinks iterations for the CI smoke job.

use std::time::{Duration, Instant};
use webfindit::discovery::DiscoveryEngine;
use webfindit::orb::CallOptions;
use webfindit::{FedExecutor, FedOutcome, Federation};
use webfindit_bench::{header, percentile};
use webfindit_healthcare::build_healthcare;
use webfindit_tassili::{parse, Statement};

struct Query {
    name: &'static str,
    text: &'static str,
}

const QUERIES: &[Query] = &[
    Query {
        name: "union_research",
        text: "Invoke ResearchProjects.Funding() At Coalition Research;",
    },
    Query {
        name: "union_research_topic_scope",
        text: "Invoke ResearchProjects.Funding() At Sites With Information Medical Research;",
    },
    Query {
        name: "semi_join_insurance",
        text: "Invoke Policies.Premium() At Coalition Medical Insurance \
               Where Policies.Holder In Members.Name();",
    },
];

const ORIGIN: &str = "QUT Research";

struct Timing {
    p50_us: f64,
    p95_us: f64,
}

fn timing(samples: &[f64]) -> Timing {
    Timing {
        p50_us: percentile(samples, 50.0),
        p95_us: percentile(samples, 95.0),
    }
}

fn json_timing(name: &str, t: &Timing) -> String {
    format!(
        "\"{name}\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}}}",
        t.p50_us, t.p95_us
    )
}

fn clear_caches(fed: &Federation, engine: &DiscoveryEngine) {
    fed.ior_cache().clear();
    engine.codb_cache().clear();
}

/// Time `iterations` executions of `stmt` under one executor
/// configuration, returning per-execution latencies in microseconds
/// and the last outcome.
fn run_config(
    fed: &Federation,
    engine: &DiscoveryEngine,
    exec: &FedExecutor,
    stmt: &Statement,
    iterations: usize,
    cold: bool,
) -> (Vec<f64>, FedOutcome) {
    if !cold {
        clear_caches(fed, engine);
        exec.execute(engine, ORIGIN, stmt, None).expect("prime run");
    }
    let mut samples = Vec::with_capacity(iterations);
    let mut last = None;
    for _ in 0..iterations {
        if cold {
            clear_caches(fed, engine);
        }
        let started = Instant::now();
        let out = exec.execute(engine, ORIGIN, stmt, None).expect("timed run");
        samples.push(started.elapsed().as_micros() as f64);
        assert!(out.complete(), "{:?}", out.degraded);
        last = Some(out);
    }
    (samples, last.expect("at least one iteration"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iterations = if quick { 5 } else { 30 };
    let stall_ms: u64 = if quick { 4 } else { 10 };
    header(
        "Experiment E13",
        "Federated query shipping: sequential vs parallel, with chaos degradation (healthcare, 14 sites)",
    );

    let dep = build_healthcare(1999).expect("healthcare deployment");
    let fed = dep.fed.clone();
    fed.set_call_options(CallOptions::with_deadline(Duration::from_millis(
        stall_ms * 50,
    )));
    // WAN-shaped data-path latency: every ISI holds each request
    // briefly, so shipping cost dominates thread overhead. Metadata
    // (co-database) traffic stays fast — member resolution is shared
    // by both configurations and is not what E13 measures.
    for site in fed.site_names() {
        fed.site(&site).unwrap().isi_stall.stall(stall_ms);
    }

    let engine = DiscoveryEngine::new(fed.clone());
    let mut sequential = FedExecutor::new(fed.clone());
    sequential.max_workers = 1;
    let mut parallel = FedExecutor::new(fed.clone());
    parallel.max_workers = 8;

    println!(
        "\n{:<28} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "query",
        "sites",
        "seq-cold50",
        "seq-cold95",
        "seq-warm50",
        "seq-warm95",
        "par-cold50",
        "par-cold95",
        "par-warm50",
        "par-warm95",
        "speedup"
    );
    println!("{}", "-".repeat(150));

    let mut query_objects = Vec::new();
    for q in QUERIES {
        let stmt = parse(q.text).expect("query parses");

        // Determinism first: the parallel merge must be byte-identical
        // to the sequential reference, cold and warm.
        let reference = sequential
            .execute(&engine, ORIGIN, &stmt, None)
            .expect("reference run");
        let mut identical = true;
        for _ in 0..2 {
            let out = parallel
                .execute(&engine, ORIGIN, &stmt, None)
                .expect("parallel run");
            identical &= out.render() == reference.render();
        }
        assert!(identical, "{}: parallel merge diverged", q.name);

        let (seq_cold_s, _) = run_config(&fed, &engine, &sequential, &stmt, iterations, true);
        let (seq_warm_s, _) = run_config(&fed, &engine, &sequential, &stmt, iterations, false);
        let (par_cold_s, _) = run_config(&fed, &engine, &parallel, &stmt, iterations, true);
        let (par_warm_s, out) = run_config(&fed, &engine, &parallel, &stmt, iterations, false);
        let seq_cold = timing(&seq_cold_s);
        let seq_warm = timing(&seq_warm_s);
        let par_cold = timing(&par_cold_s);
        let par_warm = timing(&par_warm_s);
        let speedup = if par_warm.p50_us > 0.0 {
            seq_warm.p50_us / par_warm.p50_us
        } else {
            f64::INFINITY
        };

        println!(
            "{:<28} {:>5} | {:>10.0} {:>10.0} | {:>10.0} {:>10.0} | {:>10.0} {:>10.0} | {:>10.0} {:>10.0} | {:>7.2}x",
            q.name,
            out.per_site.len(),
            seq_cold.p50_us,
            seq_cold.p95_us,
            seq_warm.p50_us,
            seq_warm.p95_us,
            par_cold.p50_us,
            par_cold.p95_us,
            par_warm.p50_us,
            par_warm.p95_us,
            speedup
        );

        query_objects.push(format!(
            "    {{\"name\": \"{}\", \"sites_answered\": {}, \"rows_merged\": {}, \
             \"keys_shipped\": {}, {}, {}, {}, {}, \
             \"speedup_parallel_vs_sequential_warm\": {:.2}, \"identical_results\": true}}",
            q.name,
            out.per_site.len(),
            out.stats.rows_merged,
            out.stats.keys_shipped,
            json_timing("sequential_cold", &seq_cold),
            json_timing("sequential_warm", &seq_warm),
            json_timing("parallel_cold", &par_cold),
            json_timing("parallel_warm", &par_warm),
            speedup
        ));
    }

    // ---- chaos: kill one member's hosting ORB mid-workload ---------
    // Orbix hosts RMIT Medical Research (a Research member); the union
    // query must return the survivors' rows plus RMIT in `degraded`.
    let stmt = parse(QUERIES[0].text).expect("query parses");
    fed.kill_orb("Orbix").expect("kill Orbix");
    let degraded_out = parallel
        .execute(&engine, ORIGIN, &stmt, None)
        .expect("degraded run must not error");
    assert!(
        !degraded_out.complete() && !degraded_out.rows.is_empty(),
        "partial rows plus degradation, got {degraded_out:?}"
    );
    let degraded_sites: Vec<String> = degraded_out
        .degraded_sites()
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect();
    println!(
        "\nchaos: killed Orbix -> {} row(s) from {} site(s), degraded: {:?}",
        degraded_out.rows.len(),
        degraded_out.per_site.len(),
        degraded_out.degraded_sites()
    );
    fed.restart_orb("Orbix").expect("restart Orbix");

    let json = format!(
        "{{\n  \"experiment\": \"E13\",\n  \"topology\": \"healthcare-14\",\n  \
         \"quick\": {quick},\n  \"iterations\": {iterations},\n  \"stall_ms\": {stall_ms},\n  \
         \"max_workers\": 8,\n  \"queries\": [\n{}\n  ],\n  \
         \"degraded_run\": {{\"killed_orb\": \"Orbix\", \"rows\": {}, \"sites_answered\": {}, \
         \"degraded_sites\": [{}]}}\n}}\n",
        query_objects.join(",\n"),
        degraded_out.rows.len(),
        degraded_out.per_site.len(),
        degraded_sites.join(", ")
    );
    std::fs::write("BENCH_fedquery.json", &json).expect("write BENCH_fedquery.json");
    println!("wrote BENCH_fedquery.json ({} queries)", QUERIES.len());

    fed.shutdown();
}
