//! Gateway-side compensation for vendor feature gaps.
//!
//! When WebFINDIT's wrapper sends a query the vendor cannot execute —
//! the canonical case being aggregates or GROUP BY against mSQL, which
//! never had them — a 1999 gateway had exactly one honest move: fetch
//! the base tables with queries the vendor *does* support, and finish
//! the computation at the gateway. [`CompensatingConnection`] implements
//! that move:
//!
//! 1. Forward the statement unchanged; if the vendor accepts it, done.
//! 2. On an `Unsupported` rejection, pull `SELECT * FROM t` for every
//!    table the statement references (always within mSQL's powers),
//!    stage them in an embedded canonical engine, and run the original
//!    statement there.
//!
//! The staged path is visible in [`CompensatingConnection::compensations`],
//! which experiment E3 reports.

use crate::api::{BridgeKind, Connection, DataMetrics, QueryOutput, SourceMetadata};
use crate::{ConnectError, ConnectResult};
use webfindit_relstore::sql::ast::Statement;
use webfindit_relstore::sql::parse_statement;
use webfindit_relstore::{Database, Dialect, RelError};

/// A connection wrapper that absorbs `Unsupported` vendor errors by
/// staging and re-executing locally.
pub struct CompensatingConnection {
    inner: Box<dyn Connection>,
    compensations: u64,
}

impl CompensatingConnection {
    /// Wrap an inner connection.
    pub fn new(inner: Box<dyn Connection>) -> CompensatingConnection {
        CompensatingConnection {
            inner,
            compensations: 0,
        }
    }

    /// How many statements required the staged fallback.
    pub fn compensations(&self) -> u64 {
        self.compensations
    }

    fn compensate_select(&mut self, stmt: &Statement) -> ConnectResult<QueryOutput> {
        let select = match stmt {
            Statement::Select(s) => s,
            _ => {
                return Err(ConnectError::WrongParadigm(
                    "compensation only applies to SELECT".into(),
                ))
            }
        };
        // Which base tables does the statement touch?
        let mut tables: Vec<String> = vec![select.from.name.clone()];
        for j in &select.joins {
            tables.push(j.table.name.clone());
        }
        tables.sort();
        tables.dedup();

        // Stage each base table via vendor-supported full scans.
        let metadata = self.inner.metadata()?;
        let mut staging = Database::new("gateway-staging", Dialect::Canonical);
        for t in &tables {
            let schema = metadata
                .tables
                .iter()
                .find(|s| s.name == t.to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| ConnectError::Rel(RelError::NoSuchTable(t.clone())))?;
            let out = self.inner.execute(&format!("SELECT * FROM {t}"))?;
            let rs = out.result_set().ok_or_else(|| {
                ConnectError::WrongParadigm("staging fetch produced no rows".into())
            })?;
            staging
                .import_table(schema, rs.rows.clone())
                .map_err(ConnectError::Rel)?;
        }

        // Finish the original statement at the gateway.
        let outcome = staging.execute_stmt(stmt).map_err(ConnectError::Rel)?;
        self.compensations += 1;
        Ok(match outcome {
            webfindit_relstore::engine::ExecOutcome::Rows(rs) => QueryOutput::Rows(rs),
            webfindit_relstore::engine::ExecOutcome::Count(n) => QueryOutput::Count(n),
            webfindit_relstore::engine::ExecOutcome::Done => QueryOutput::Done,
        })
    }
}

impl Connection for CompensatingConnection {
    fn execute(&mut self, text: &str) -> ConnectResult<QueryOutput> {
        match self.inner.execute(text) {
            Err(ConnectError::Rel(RelError::Unsupported(_))) => {
                let stmt = parse_statement(text).map_err(ConnectError::Rel)?;
                self.compensate_select(&stmt)
            }
            other => other,
        }
    }

    fn invoke(
        &mut self,
        method: &str,
        args: &[webfindit_oostore::OValue],
    ) -> ConnectResult<QueryOutput> {
        self.inner.invoke(method, args)
    }

    fn begin(&mut self) -> ConnectResult<QueryOutput> {
        self.inner.begin()
    }

    fn commit(&mut self) -> ConnectResult<QueryOutput> {
        self.inner.commit()
    }

    fn rollback(&mut self) -> ConnectResult<QueryOutput> {
        self.inner.rollback()
    }

    fn last_data_metrics(&self) -> Option<DataMetrics> {
        self.inner.last_data_metrics()
    }

    fn metadata(&self) -> ConnectResult<SourceMetadata> {
        self.inner.metadata()
    }

    fn bridge(&self) -> BridgeKind {
        self.inner.bridge()
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Driver;
    use crate::drivers::RelationalDriver;
    use crate::registry::DataSourceRegistry;
    use webfindit_relstore::Datum;

    fn msql_connection() -> CompensatingConnection {
        let reg = DataSourceRegistry::new();
        let mut db = Database::new("CentreLink", Dialect::MSql);
        db.execute("CREATE TABLE payments (client_id INT, amount DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO payments VALUES (1, 100.0), (1, 250.0), (2, 80.0), (3, 40.0)")
            .unwrap();
        reg.register_relational("msql", "CentreLink", db);
        let driver = RelationalDriver::new(Dialect::MSql, reg);
        CompensatingConnection::new(driver.connect("jdbc:msql://h/CentreLink").unwrap())
    }

    #[test]
    fn supported_statements_pass_through() {
        let mut conn = msql_connection();
        let out = conn
            .execute("SELECT amount FROM payments WHERE client_id = 1")
            .unwrap();
        assert_eq!(out.row_count(), 2);
        assert_eq!(conn.compensations(), 0);
    }

    #[test]
    fn aggregates_are_compensated_on_msql() {
        let mut conn = msql_connection();
        let out = conn
            .execute("SELECT client_id, SUM(amount) s FROM payments GROUP BY client_id ORDER BY client_id")
            .unwrap();
        let rs = out.result_set().unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0], vec![Datum::Int(1), Datum::Double(350.0)]);
        assert_eq!(conn.compensations(), 1);
    }

    #[test]
    fn outer_join_compensated_on_msql() {
        let mut conn = msql_connection();
        // Self left-join — mSQL rejects it; the gateway stages and runs it.
        let out = conn
            .execute(
                "SELECT a.client_id FROM payments a LEFT JOIN payments b \
                 ON a.client_id = b.client_id AND a.amount < b.amount \
                 WHERE b.client_id IS NULL ORDER BY a.client_id",
            )
            .unwrap();
        // Rows with no strictly-larger same-client payment: the max per client.
        assert_eq!(out.row_count(), 3);
        assert_eq!(conn.compensations(), 1);
    }

    #[test]
    fn genuinely_bad_sql_still_fails() {
        let mut conn = msql_connection();
        assert!(conn.execute("SELECT COUNT(*) FROM ghosts").is_err());
        assert!(conn.execute("THIS IS NOT SQL").is_err());
    }
}
