//! Federation deployment: ORBs, sites, naming, and metadata wiring.
//!
//! A [`Federation`] owns the moving parts of one WebFINDIT deployment:
//! the ORB domain with its ORB instances, the data-source registry and
//! driver manager, the naming service (hosted on a bootstrap ORB), the
//! document store, and one [`SiteHandle`] per participating database —
//! each site being a database + co-database pair exported as two CORBA
//! servants.
//!
//! The metadata-propagation helpers ([`Federation::form_coalition`],
//! [`Federation::join_coalition`], [`Federation::add_service_link`], …)
//! implement the paper's registration semantics: every member of a
//! coalition stores the coalition and descriptions of *all* its
//! members in its own co-database. Propagation happens through real
//! ORB invocations on the co-database servants, so the churn
//! experiments can count its cost in IIOP round-trips.

use crate::docs::DocStore;
use crate::servants::{link_to_value, CoDatabaseServant, IsiServant, StallGate};
use crate::value_map::descriptor_to_value;
use crate::{WebfinditError, WfResult};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use webfindit_base::sync::RwLock;
use webfindit_codb::{CoDatabase, InformationSource, ServiceLink};
use webfindit_connect::manager::standard_manager;
use webfindit_connect::{BridgeKind, DataSourceRegistry, DriverManager};
use webfindit_oostore::method::MethodTable;
use webfindit_oostore::ObjectStore;
use webfindit_orb::chaos::{ChaosHost, ChaosRegistry, ChaosTargets};
use webfindit_orb::naming::{IorCache, NamingClient, NamingService, NAMING_OBJECT_KEY};
use webfindit_orb::{CallOptions, Orb, OrbConfig, OrbDomain};
use webfindit_relstore::{Database, Dialect};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::{Ior, Value};

/// Which product a site runs, deciding dialect, URL scheme, and bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteVendor {
    /// A relational product (Oracle, mSQL, DB2, Sybase).
    Relational(Dialect),
    /// The Ontos object database (reached over JNI).
    Ontos,
    /// The ObjectStore object database (reached over C++ invocation).
    ObjectStore,
}

impl SiteVendor {
    /// Product name as shown in deployment listings.
    pub fn product(&self) -> &'static str {
        match self {
            SiteVendor::Relational(d) => d.name(),
            SiteVendor::Ontos => "Ontos",
            SiteVendor::ObjectStore => "ObjectStore",
        }
    }

    /// The bridge kind connections will use.
    pub fn bridge(&self) -> BridgeKind {
        match self {
            SiteVendor::Relational(_) => BridgeKind::Jdbc,
            SiteVendor::Ontos => BridgeKind::Jni,
            SiteVendor::ObjectStore => BridgeKind::NativeCpp,
        }
    }

    fn url(&self, host: &str, instance: &str) -> String {
        match self {
            SiteVendor::Relational(d) => {
                let vendor = match d {
                    Dialect::Oracle => "oracle",
                    Dialect::MSql => "msql",
                    Dialect::Db2 => "db2",
                    Dialect::Sybase => "sybase",
                    Dialect::Canonical => "canonical",
                };
                format!("jdbc:{vendor}://{host}/{instance}")
            }
            SiteVendor::Ontos => format!("jni:ontos://{host}/{instance}"),
            SiteVendor::ObjectStore => format!("native:objectstore://{host}/{instance}"),
        }
    }

    fn registry_vendor(&self) -> &'static str {
        match self {
            SiteVendor::Relational(Dialect::Oracle) => "oracle",
            SiteVendor::Relational(Dialect::MSql) => "msql",
            SiteVendor::Relational(Dialect::Db2) => "db2",
            SiteVendor::Relational(Dialect::Sybase) => "sybase",
            SiteVendor::Relational(Dialect::Canonical) => "canonical",
            SiteVendor::Ontos => "ontos",
            SiteVendor::ObjectStore => "objectstore",
        }
    }
}

/// Everything needed to deploy one site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site (database) name, e.g. `"Royal Brisbane Hospital"`.
    pub name: String,
    /// Name of the ORB hosting this site's servants.
    pub orb: String,
    /// Product.
    pub vendor: SiteVendor,
    /// Advertised host.
    pub host: String,
    /// Advertised information type, e.g. `"Research and Medical"`.
    pub information_type: String,
    /// Documentation URL.
    pub documentation_url: String,
    /// Exported interface.
    pub interface: Vec<webfindit_codb::ExportedType>,
}

/// A deployed site: handles to its servants and metadata.
#[derive(Clone)]
pub struct SiteHandle {
    /// Site name.
    pub name: String,
    /// Hosting ORB's name.
    pub orb_name: String,
    /// Product name.
    pub product: String,
    /// Bridge kind used by the ISI.
    pub bridge: BridgeKind,
    /// Connection URL the ISI uses.
    pub url: String,
    /// The site's co-database (shared with its servant).
    pub codb: Arc<RwLock<CoDatabase>>,
    /// IOR of the co-database servant.
    pub codb_ior: Ior,
    /// IOR of the information-source-interface servant.
    pub isi_ior: Ior,
    /// The full advertisement descriptor.
    pub descriptor: InformationSource,
    /// Shared stall gate of the co-database servant (chaos hook).
    pub stall: StallGate,
    /// Shared stall gate of the ISI servant (chaos hook; benches use it
    /// to shape per-site data-path latency independently of metadata).
    pub isi_stall: StallGate,
}

/// One WebFINDIT deployment.
pub struct Federation {
    domain: Arc<OrbDomain>,
    registry: Arc<DataSourceRegistry>,
    manager: Arc<DriverManager>,
    docs: Arc<DocStore>,
    orbs: RwLock<BTreeMap<String, Arc<Orb>>>,
    sites: RwLock<BTreeMap<String, SiteHandle>>,
    bootstrap_orb: Arc<Orb>,
    naming: Arc<NamingService>,
    naming_ior: Ior,
    /// Shared TTL'd cache of naming resolutions, consulted by every
    /// [`Federation::naming_client`] stub. Entries are invalidated
    /// eagerly when an invocation on a cached reference fails.
    ior_cache: Arc<IorCache>,
    /// Per-call policy (deadline, retry) applied to every outgoing
    /// invocation made on this federation's behalf.
    call_options: RwLock<CallOptions>,
    /// ORBs currently killed by a chaos plan (kill is idempotent;
    /// restart only brings back what kill took down).
    downed_orbs: RwLock<BTreeSet<String>>,
}

impl Federation {
    /// Create a federation with a bootstrap ORB hosting the naming
    /// service.
    pub fn new() -> WfResult<Arc<Federation>> {
        let domain = OrbDomain::new();
        let registry = DataSourceRegistry::new();
        let manager = Arc::new(standard_manager(Arc::clone(&registry)));
        let bootstrap_orb = Orb::start(
            OrbConfig::new(
                "WebFINDIT-UI",
                "ui.webfindit.net",
                9999,
                ByteOrder::BigEndian,
            ),
            Arc::clone(&domain),
        )?;
        let naming = NamingService::new();
        let naming_ior = bootstrap_orb.activate(NAMING_OBJECT_KEY, Arc::clone(&naming) as _);
        Ok(Arc::new(Federation {
            domain,
            registry,
            manager,
            docs: Arc::new(DocStore::new()),
            orbs: RwLock::new(BTreeMap::new()),
            sites: RwLock::new(BTreeMap::new()),
            bootstrap_orb,
            naming,
            naming_ior,
            ior_cache: IorCache::new(std::time::Duration::from_secs(30)),
            call_options: RwLock::new(CallOptions::default()),
            downed_orbs: RwLock::new(BTreeSet::new()),
        }))
    }

    /// The shared ORB domain.
    pub fn domain(&self) -> &Arc<OrbDomain> {
        &self.domain
    }

    /// The data-source registry.
    pub fn registry(&self) -> &Arc<DataSourceRegistry> {
        &self.registry
    }

    /// The driver manager.
    pub fn manager(&self) -> &Arc<DriverManager> {
        &self.manager
    }

    /// The document store (the Web stand-in).
    pub fn docs(&self) -> &Arc<DocStore> {
        &self.docs
    }

    /// The ORB the query layer uses for its outgoing invocations.
    pub fn client_orb(&self) -> &Arc<Orb> {
        &self.bootstrap_orb
    }

    /// The per-call policy applied to the federation's invocations.
    pub fn call_options(&self) -> CallOptions {
        self.call_options.read().clone()
    }

    /// Replace the per-call policy (deadline, retry) used for every
    /// subsequent invocation the federation's layers make.
    pub fn set_call_options(&self, options: CallOptions) {
        *self.call_options.write() = options;
    }

    /// Invoke an operation through the client ORB under the
    /// federation-wide [`CallOptions`]. All query-layer components
    /// (discovery, query processor, baselines) route through this, so a
    /// deadline set on the federation bounds every remote hop.
    pub fn invoke(&self, ior: &Ior, operation: &str, args: &[Value]) -> WfResult<Value> {
        Ok(self
            .bootstrap_orb
            .invoke_with(ior, operation, args, &self.call_options())?)
    }

    /// A naming-service client over the wire, backed by the
    /// federation's shared [`IorCache`].
    pub fn naming_client(&self) -> NamingClient {
        NamingClient::with_cache(
            Arc::clone(&self.bootstrap_orb),
            self.naming_ior.clone(),
            Arc::clone(&self.ior_cache),
        )
    }

    /// The shared client-side cache of naming resolutions.
    pub fn ior_cache(&self) -> &Arc<IorCache> {
        &self.ior_cache
    }

    /// Direct handle to the naming service (bootstrap only).
    pub fn naming(&self) -> &Arc<NamingService> {
        &self.naming
    }

    /// Start an ORB instance (e.g. `"Orbix"`, big-endian, at
    /// `qut.orbix.net:9000`).
    pub fn add_orb(
        &self,
        name: &str,
        host: &str,
        port: u16,
        order: ByteOrder,
    ) -> WfResult<Arc<Orb>> {
        let orb = Orb::start(
            OrbConfig::new(name, host, port, order),
            Arc::clone(&self.domain),
        )?;
        self.orbs.write().insert(name.to_owned(), Arc::clone(&orb));
        Ok(orb)
    }

    /// A started ORB by name.
    pub fn orb(&self, name: &str) -> WfResult<Arc<Orb>> {
        self.orbs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| WebfinditError::UnknownSite(format!("ORB {name}")))
    }

    /// Names of all ORBs (excluding the bootstrap ORB).
    pub fn orb_names(&self) -> Vec<String> {
        self.orbs.read().keys().cloned().collect()
    }

    /// Deploy a relational site.
    pub fn add_relational_site(&self, spec: SiteSpec, db: Database) -> WfResult<SiteHandle> {
        let dialect = match spec.vendor {
            SiteVendor::Relational(d) => d,
            _ => {
                return Err(WebfinditError::Protocol(
                    "add_relational_site needs a relational vendor".into(),
                ))
            }
        };
        debug_assert_eq!(db.dialect(), dialect, "instance dialect matches spec");
        self.registry
            .register_relational(spec.vendor.registry_vendor(), &spec.name, db);
        self.deploy_site(spec)
    }

    /// Deploy an object-database site.
    pub fn add_object_site(
        &self,
        spec: SiteSpec,
        store: ObjectStore,
        methods: MethodTable,
    ) -> WfResult<SiteHandle> {
        if matches!(spec.vendor, SiteVendor::Relational(_)) {
            return Err(WebfinditError::Protocol(
                "add_object_site needs an object vendor".into(),
            ));
        }
        self.registry
            .register_object(spec.vendor.registry_vendor(), &spec.name, store, methods);
        self.deploy_site(spec)
    }

    fn deploy_site(&self, spec: SiteSpec) -> WfResult<SiteHandle> {
        let orb = self.orb(&spec.orb)?;
        let url = spec.vendor.url(&spec.host, &spec.name);
        let descriptor = InformationSource {
            name: spec.name.clone(),
            information_type: spec.information_type.clone(),
            documentation_url: spec.documentation_url.clone(),
            location: spec.host.clone(),
            wrapper: url.clone(),
            interface: spec.interface.clone(),
        };

        let codb = Arc::new(RwLock::new(CoDatabase::new(spec.name.clone())));
        let stall = StallGate::new();
        let codb_key = format!("codb/{}", spec.name);
        let codb_ior = orb.activate(
            codb_key.as_bytes().to_vec(),
            Arc::new(CoDatabaseServant::with_gate(
                Arc::clone(&codb),
                stall.clone(),
            )),
        );
        let isi_stall = StallGate::new();
        let isi_key = format!("isi/{}", spec.name);
        let isi_ior = orb.activate(
            isi_key.as_bytes().to_vec(),
            Arc::new(
                IsiServant::with_metrics(Arc::clone(&self.manager), url.clone(), orb.metrics_arc())
                    .with_gate(isi_stall.clone()),
            ),
        );

        // Bind both servants in the naming service, over the wire.
        let nc = self.naming_client();
        nc.bind(&codb_key, &codb_ior)?;
        nc.bind(&isi_key, &isi_ior)?;

        let handle = SiteHandle {
            name: spec.name.clone(),
            orb_name: spec.orb.clone(),
            product: spec.vendor.product().to_owned(),
            bridge: spec.vendor.bridge(),
            url,
            codb,
            codb_ior,
            isi_ior,
            descriptor,
            stall,
            isi_stall,
        };
        self.sites
            .write()
            .insert(spec.name.to_ascii_lowercase(), handle.clone());
        Ok(handle)
    }

    /// A deployed site by (case-insensitive) name.
    pub fn site(&self, name: &str) -> WfResult<SiteHandle> {
        self.sites
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| WebfinditError::UnknownSite(name.to_owned()))
    }

    /// All site names, sorted.
    pub fn site_names(&self) -> Vec<String> {
        self.sites.read().values().map(|s| s.name.clone()).collect()
    }

    // ---- metadata propagation (all via ORB invocations) ----------------

    fn invoke_codb(&self, site: &SiteHandle, op: &str, args: &[Value]) -> WfResult<Value> {
        self.invoke(&site.codb_ior, op, args)
    }

    /// Form (or extend) a coalition: every member's co-database gets the
    /// coalition class and descriptions of *all* members.
    ///
    /// Returns the number of ORB invocations performed — the
    /// registration cost the churn experiment measures.
    pub fn form_coalition(
        &self,
        name: &str,
        parent: Option<&str>,
        documentation: &str,
        members: &[&str],
    ) -> WfResult<u64> {
        let mut calls = 0;
        let handles: Vec<SiteHandle> = members
            .iter()
            .map(|m| self.site(m))
            .collect::<WfResult<_>>()?;
        for member in &handles {
            let mut args = vec![Value::string(name)];
            if let Some(p) = parent {
                args.push(Value::string(p));
            } else {
                args.push(Value::Null);
            }
            args.push(Value::string(documentation));
            match self.invoke_codb(member, "create_coalition", &args) {
                Ok(_) => {}
                Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                    system: false,
                    description,
                })) if description.contains("already exists") => {}
                Err(e) => return Err(e),
            }
            calls += 1;
            for other in &handles {
                match self.invoke_codb(
                    member,
                    "advertise",
                    &[Value::string(name), descriptor_to_value(&other.descriptor)],
                ) {
                    Ok(_) => {}
                    Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                        system: false,
                        description,
                    })) if description.contains("already a member") => {}
                    Err(e) => return Err(e),
                }
                calls += 1;
            }
        }
        Ok(calls)
    }

    /// A site joins an existing coalition: it learns the coalition and
    /// all current members; every current member learns the newcomer.
    pub fn join_coalition(
        &self,
        site: &str,
        coalition: &str,
        documentation: &str,
    ) -> WfResult<u64> {
        let _ = self.site(site)?; // validate the joiner exists
                                  // Find the current members by asking over the wire like a real
                                  // joiner would; union across co-databases because some hold only
                                  // a contact-member view.
        let mut calls = self.sites.read().len() as u64;
        let current = self.coalition_members(coalition)?;
        let member_refs: Vec<&str> = current.iter().map(String::as_str).collect();
        let mut all: Vec<&str> = member_refs.clone();
        all.push(site);
        calls += self.form_coalition(coalition, None, documentation, &all)?;
        Ok(calls)
    }

    /// A site leaves a coalition: every member's co-database (including
    /// its own) withdraws the advertisement.
    pub fn leave_coalition(&self, site: &str, coalition: &str) -> WfResult<u64> {
        let leaver = self.site(site)?;
        let mut calls = 0;
        // Snapshot the handles first: invoke_codb goes over IIOP, and
        // iterating `values()` directly would hold the sites read guard
        // across every one of those blocking calls.
        let handles: Vec<SiteHandle> = self.sites.read().values().cloned().collect();
        for s in &handles {
            calls += 1;
            match self.invoke_codb(
                s,
                "withdraw",
                &[Value::string(coalition), Value::string(&leaver.name)],
            ) {
                Ok(_) => {}
                Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                    system: false,
                    ..
                })) => {} // that co-database did not know the membership
                Err(e) => return Err(e),
            }
        }
        Ok(calls)
    }

    /// Members of a coalition endpoint, asked of the sites that know it.
    ///
    /// Some co-databases hold only a *minimal description* of a
    /// coalition (the contact member recorded by a service link), so no
    /// single answer can be trusted to be complete: take the union over
    /// every co-database that knows the coalition.
    pub fn coalition_members(&self, coalition: &str) -> WfResult<Vec<String>> {
        let mut union: Vec<String> = Vec::new();
        // Same discipline as leave_coalition: no guard across invokes.
        let handles: Vec<SiteHandle> = self.sites.read().values().cloned().collect();
        for s in &handles {
            if let Ok(m) = self.invoke_codb(s, "members", &[Value::string(coalition)]) {
                union.extend(crate::value_map::value_to_strings(&m)?);
            }
        }
        union.sort();
        union.dedup();
        Ok(union)
    }

    /// Record a service link in the co-databases of the sites that need
    /// to know it: all members of coalition endpoints, and the named
    /// sites of database endpoints.
    ///
    /// Per the paper, a service link carries only a *minimal description*
    /// of the other side — so in addition to the link record, each
    /// involved site learns the opposite coalition as a class documented
    /// with the link description plus one **contact member** (enough to
    /// reach the other side's metadata, nothing more). This is what
    /// makes multi-hop discovery traverse links without replicating full
    /// coalition state.
    pub fn add_service_link(&self, link: &ServiceLink) -> WfResult<u64> {
        use webfindit_codb::LinkEnd;
        // Per-endpoint: the sites that must record the link, and (for
        // coalitions) the contact descriptor offered to the other side.
        let mut involved_by_end: Vec<Vec<String>> = Vec::new();
        let mut contact_by_end: Vec<Option<(String, InformationSource)>> = Vec::new();
        for end in [&link.from, &link.to] {
            match end {
                LinkEnd::Database(name) => {
                    involved_by_end.push(vec![name.clone()]);
                    let contact = self
                        .site(name)
                        .ok()
                        .map(|h| (name.clone(), h.descriptor.clone()));
                    contact_by_end.push(contact);
                }
                LinkEnd::Coalition(coalition) => {
                    let members = self.coalition_members(coalition)?;
                    let contact = members
                        .first()
                        .and_then(|m| self.site(m).ok())
                        .map(|h| (coalition.clone(), h.descriptor.clone()));
                    involved_by_end.push(members);
                    contact_by_end.push(contact);
                }
            }
        }

        let ends = [&link.from, &link.to];
        let mut calls = 0;
        for (side, involved) in involved_by_end.iter().enumerate() {
            let other = 1 - side;
            for name in involved {
                let Ok(site) = self.site(name) else { continue };
                match self.invoke_codb(&site, "add_link", &[link_to_value(link)]) {
                    Ok(_) => calls += 1,
                    Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                        system: false,
                        description,
                    })) if description.contains("already exists") => {}
                    Err(e) => return Err(e),
                }
                // Minimal description of the opposite coalition.
                if let (LinkEnd::Coalition(other_coalition), Some((_, contact_desc))) =
                    (ends[other], &contact_by_end[other])
                {
                    match self.invoke_codb(
                        &site,
                        "create_coalition",
                        &[
                            Value::string(other_coalition.clone()),
                            Value::Null,
                            Value::string(link.description.clone()),
                        ],
                    ) {
                        Ok(_) => calls += 1,
                        Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                            system: false,
                            description,
                        })) if description.contains("already exists") => {}
                        Err(e) => return Err(e),
                    }
                    match self.invoke_codb(
                        &site,
                        "advertise",
                        &[
                            Value::string(other_coalition.clone()),
                            descriptor_to_value(contact_desc),
                        ],
                    ) {
                        Ok(_) => calls += 1,
                        Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                            system: false,
                            description,
                        })) if description.contains("already a member") => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(calls)
    }

    // ---- chaos: killing, restarting, degrading ------------------------

    /// The fault-control plane shared with every IIOP channel.
    pub fn chaos_registry(&self) -> Arc<ChaosRegistry> {
        self.domain.chaos_registry()
    }

    /// What a generated [`webfindit_orb::ChaosPlan`] may target in this
    /// deployment: every site, and every ORB's advertised endpoint.
    pub fn chaos_targets(&self) -> ChaosTargets {
        ChaosTargets {
            sites: self.site_names(),
            endpoints: self
                .orbs
                .read()
                .values()
                .map(|orb| orb.advertised_endpoint())
                .collect(),
        }
    }

    /// Kill an ORB: its server loop stops, its endpoint leaves the
    /// domain, every site it hosts goes dark. Returns `false` when the
    /// ORB is already down (kill is idempotent).
    pub fn kill_orb(&self, name: &str) -> WfResult<bool> {
        let orb = self.orb(name)?;
        if !self.downed_orbs.write().insert(name.to_owned()) {
            return Ok(false);
        }
        orb.shutdown();
        // A machine crash takes the hosted databases down with the ORB:
        // durable instances lose power mid-flight and stay Unavailable
        // until restart_orb runs recovery; in-memory instances report
        // false from crash_relational and keep their state, as before.
        for site in self.sites.read().values() {
            if site.orb_name != name {
                continue;
            }
            if let Some(parts) = webfindit_connect::parse_url(&site.url) {
                self.registry.crash_relational(parts.vendor, parts.instance);
            }
        }
        Ok(true)
    }

    /// Restart a killed ORB on its original advertised endpoint and
    /// re-activate the servants of every site it hosts. Existing IORs
    /// stay valid: they carry the advertised `(host, port)`, which now
    /// resolves to the new listener. Returns `false` when the ORB was
    /// not down.
    pub fn restart_orb(&self, name: &str) -> WfResult<bool> {
        let old = self.orb(name)?;
        if !self.downed_orbs.write().remove(name) {
            return Ok(false);
        }
        let (host, port) = old.advertised_endpoint();
        let orb = Orb::start(
            OrbConfig::new(name, host, port, old.byte_order()),
            Arc::clone(&self.domain),
        )?;
        for site in self.sites.read().values() {
            if site.orb_name != name {
                continue;
            }
            // Bring crashed durable databases back first: WAL replay +
            // loser rollback, so the re-activated ISI servant serves the
            // last committed state.
            if let Some(parts) = webfindit_connect::parse_url(&site.url) {
                let _ = self
                    .registry
                    .restart_relational(parts.vendor, parts.instance);
            }
            let codb_key = format!("codb/{}", site.name);
            orb.activate(
                codb_key.as_bytes().to_vec(),
                Arc::new(CoDatabaseServant::with_gate(
                    Arc::clone(&site.codb),
                    site.stall.clone(),
                )),
            );
            let isi_key = format!("isi/{}", site.name);
            orb.activate(
                isi_key.as_bytes().to_vec(),
                Arc::new(
                    IsiServant::with_metrics(
                        Arc::clone(&self.manager),
                        site.url.clone(),
                        orb.metrics_arc(),
                    )
                    .with_gate(site.isi_stall.clone()),
                ),
            );
        }
        self.orbs.write().insert(name.to_owned(), orb);
        Ok(true)
    }

    /// ORB names currently killed by [`Federation::kill_orb`].
    pub fn downed_orbs(&self) -> Vec<String> {
        self.downed_orbs.read().iter().cloned().collect()
    }

    /// Shut down every ORB (bootstrap last).
    pub fn shutdown(&self) {
        // Orb::shutdown pokes its own listener over TCP; collect the
        // handles so the orbs read guard is not held across that.
        let orbs: Vec<Arc<webfindit_orb::Orb>> = self.orbs.read().values().cloned().collect();
        for orb in orbs {
            orb.shutdown();
        }
        self.bootstrap_orb.shutdown();
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lets a [`webfindit_orb::ChaosPlan`] drive a live federation.
///
/// "Site" actions resolve through the site's hosting ORB: killing a
/// site kills its ORB's server loop (taking sibling sites down with it,
/// exactly as a machine crash would in the paper's deployment), and
/// stalls flip the site's servant-level [`StallGate`]. Unknown sites
/// and redundant kills report `false` so plans can log no-ops.
impl ChaosHost for Federation {
    fn kill_site(&self, site: &str) -> bool {
        let Ok(handle) = self.site(site) else {
            return false;
        };
        self.kill_orb(&handle.orb_name).unwrap_or(false)
    }

    fn restart_site(&self, site: &str) -> bool {
        let Ok(handle) = self.site(site) else {
            return false;
        };
        self.restart_orb(&handle.orb_name).unwrap_or(false)
    }

    fn stall_site(&self, site: &str, millis: u64) -> bool {
        let Ok(handle) = self.site(site) else {
            return false;
        };
        handle.stall.stall(millis);
        handle.isi_stall.stall(millis);
        true
    }

    fn unstall_site(&self, site: &str) -> bool {
        let Ok(handle) = self.site(site) else {
            return false;
        };
        handle.stall.clear();
        handle.isi_stall.clear();
        true
    }

    fn chaos_registry(&self) -> Arc<ChaosRegistry> {
        self.domain.chaos_registry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_site(name: &str, orb: &str) -> (SiteSpec, Database) {
        let spec = SiteSpec {
            name: name.to_owned(),
            orb: orb.to_owned(),
            vendor: SiteVendor::Relational(Dialect::Oracle),
            host: format!("{}.host.net", name.to_ascii_lowercase().replace(' ', "-")),
            information_type: "testing".into(),
            documentation_url: format!("http://docs/{name}"),
            interface: Vec::new(),
        };
        (spec, Database::new(name, Dialect::Oracle))
    }

    #[test]
    fn deploy_two_sites_and_propagate_a_coalition() {
        let fed = Federation::new().unwrap();
        fed.add_orb("Orbix", "orbix.net", 9000, ByteOrder::BigEndian)
            .unwrap();
        fed.add_orb("VisiBroker", "visi.net", 9001, ByteOrder::LittleEndian)
            .unwrap();
        let (spec_a, db_a) = simple_site("Alpha", "Orbix");
        let (spec_b, db_b) = simple_site("Beta", "VisiBroker");
        fed.add_relational_site(spec_a, db_a).unwrap();
        fed.add_relational_site(spec_b, db_b).unwrap();

        assert_eq!(fed.site_names(), vec!["Alpha", "Beta"]);

        let calls = fed
            .form_coalition("Research", None, "research things", &["Alpha", "Beta"])
            .unwrap();
        // 2 create_coalition + 2×2 advertise = 6 ORB invocations.
        assert_eq!(calls, 6);

        // Both co-databases know both members.
        for name in ["Alpha", "Beta"] {
            let site = fed.site(name).unwrap();
            assert_eq!(
                site.codb.read().members("Research").unwrap(),
                vec!["Alpha", "Beta"]
            );
        }
        fed.shutdown();
    }

    #[test]
    fn naming_binds_servants() {
        let fed = Federation::new().unwrap();
        fed.add_orb("Orbix", "orbix.net", 9000, ByteOrder::BigEndian)
            .unwrap();
        let (spec, db) = simple_site("Alpha", "Orbix");
        let handle = fed.add_relational_site(spec, db).unwrap();
        let nc = fed.naming_client();
        assert_eq!(nc.resolve("codb/Alpha").unwrap(), handle.codb_ior);
        assert_eq!(nc.resolve("isi/Alpha").unwrap(), handle.isi_ior);
        fed.shutdown();
    }

    #[test]
    fn join_and_leave() {
        let fed = Federation::new().unwrap();
        fed.add_orb("Orbix", "orbix.net", 9000, ByteOrder::BigEndian)
            .unwrap();
        for name in ["Alpha", "Beta", "Gamma"] {
            let (spec, db) = simple_site(name, "Orbix");
            fed.add_relational_site(spec, db).unwrap();
        }
        fed.form_coalition("Medical", None, "medicine", &["Alpha", "Beta"])
            .unwrap();
        fed.join_coalition("Gamma", "Medical", "medicine").unwrap();
        let site = fed.site("Alpha").unwrap();
        assert_eq!(
            site.codb.read().members("Medical").unwrap(),
            vec!["Alpha", "Beta", "Gamma"]
        );
        fed.leave_coalition("Beta", "Medical").unwrap();
        assert_eq!(
            site.codb.read().members("Medical").unwrap(),
            vec!["Alpha", "Gamma"]
        );
        fed.shutdown();
    }

    #[test]
    fn unknown_site_and_orb_errors() {
        let fed = Federation::new().unwrap();
        assert!(matches!(
            fed.site("Ghost"),
            Err(WebfinditError::UnknownSite(_))
        ));
        assert!(fed.orb("Ghost").is_err());
        let (spec, db) = simple_site("Alpha", "MissingOrb");
        assert!(fed.add_relational_site(spec, db).is_err());
        fed.shutdown();
    }
}
