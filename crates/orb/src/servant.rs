//! The servant trait — the server-side implementation of a CORBA object.
//!
//! In IDL-based CORBA a compiler generates a skeleton per interface; here
//! a servant is any type implementing [`Servant`], dispatching on the
//! operation name with self-describing [`Value`] arguments (the Dynamic
//! Skeleton Interface model, which is what 1990s database gateways used
//! too, since wrappers could not know the exported schema at compile
//! time).

use std::fmt;
use webfindit_wire::Value;

/// Errors a servant can raise; mapped onto GIOP reply statuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServantError {
    /// The servant does not implement the requested operation.
    /// Becomes a `BAD_OPERATION` system exception.
    UnknownOperation(String),
    /// Arguments did not match the operation's signature.
    /// Becomes a `BAD_PARAM` system exception.
    BadArguments(String),
    /// A declared, application-level failure (e.g. "no such coalition").
    /// Becomes a user exception.
    Application(String),
    /// The underlying resource (database, file) failed.
    /// Becomes a `PERSIST_STORE` system exception.
    Resource(String),
}

impl ServantError {
    /// Whether this error maps to a GIOP *system* exception.
    pub fn is_system(&self) -> bool {
        !matches!(self, ServantError::Application(_))
    }

    /// The exception description placed in the reply body.
    pub fn description(&self) -> String {
        match self {
            ServantError::UnknownOperation(op) => format!("BAD_OPERATION: {op}"),
            ServantError::BadArguments(msg) => format!("BAD_PARAM: {msg}"),
            ServantError::Application(msg) => msg.clone(),
            ServantError::Resource(msg) => format!("PERSIST_STORE: {msg}"),
        }
    }
}

impl fmt::Display for ServantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.description())
    }
}

impl std::error::Error for ServantError {}

/// Result alias for servant invocations.
pub type InvokeResult = Result<Value, ServantError>;

/// A server-side object implementation.
///
/// Implementations must be `Send + Sync`: the ORB dispatches requests
/// from multiple connection handler threads.
pub trait Servant: Send + Sync {
    /// The repository id of the interface this servant implements,
    /// e.g. `IDL:webfindit/CoDatabase:1.0`. Stored in IORs and checked
    /// by diagnostics, never used for dispatch.
    fn interface_id(&self) -> &str;

    /// Invoke `operation` with `args`, returning the result value.
    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult;

    /// Operations this servant understands, for `Display Access
    /// Information` style introspection. Default: unknown.
    fn operations(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A trivial servant used by tests and liveness probes: echoes its
/// arguments and reports a fixed interface id.
pub struct EchoServant;

impl Servant for EchoServant {
    fn interface_id(&self) -> &str {
        "IDL:webfindit/Echo:1.0"
    }

    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        match operation {
            "echo" => Ok(Value::Sequence(args.to_vec())),
            "ping" => Ok(Value::string("pong")),
            "fail_user" => Err(ServantError::Application("declared failure".into())),
            "fail_system" => Err(ServantError::Resource("backing store on fire".into())),
            other => Err(ServantError::UnknownOperation(other.to_owned())),
        }
    }

    fn operations(&self) -> Vec<String> {
        ["echo", "ping", "fail_user", "fail_system"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round() {
        let s = EchoServant;
        let out = s
            .invoke("echo", &[Value::Long(1), Value::string("x")])
            .unwrap();
        assert_eq!(
            out,
            Value::Sequence(vec![Value::Long(1), Value::string("x")])
        );
    }

    #[test]
    fn unknown_operation_is_system_exception() {
        let s = EchoServant;
        let err = s.invoke("nope", &[]).unwrap_err();
        assert!(err.is_system());
        assert!(err.description().contains("BAD_OPERATION"));
    }

    #[test]
    fn application_errors_are_user_exceptions() {
        let s = EchoServant;
        let err = s.invoke("fail_user", &[]).unwrap_err();
        assert!(!err.is_system());
    }
}
