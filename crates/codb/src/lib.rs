//! # webfindit-codb — co-databases, coalitions, and service links
//!
//! The heart of WebFINDIT's two-level organization (paper §2.1–2.2):
//! every participating database carries a **co-database**, an
//! object-oriented database describing
//!
//! * the **coalitions** (topic clusters) the database belongs to —
//!   represented as a *class lattice* whose instances are
//!   information-source descriptors;
//! * the **service links** — low-overhead sharing agreements between
//!   coalition↔coalition, database↔database, and coalition↔database;
//! * the **access information** of the database itself: documentation
//!   URL, location, wrapper URL, and the exported interface of types
//!   with attributes and access functions.
//!
//! [`CoDatabase`] builds that schema on a [`webfindit_oostore::ObjectStore`]
//! and offers the local operations the WebTassili processor needs:
//! `find_coalitions`, subclass/instance display, documentation and
//! access-info retrieval, plus the evolution operations (§2.1: "new
//! coalitions may form, old coalitions may be dissolved").

#![warn(missing_docs)]

pub mod descriptor;
pub mod evolution;
pub mod metadata;

pub use descriptor::{ExportedFunction, ExportedType, InformationSource};
pub use metadata::{topic_matches, CoDatabase, LinkEnd, ServiceLink};

use std::fmt;
use webfindit_oostore::OoError;

/// Errors from co-database operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodbError {
    /// The underlying object store failed.
    Oo(OoError),
    /// A referenced coalition does not exist in this co-database.
    NoSuchCoalition(String),
    /// A referenced information source is not advertised here.
    NoSuchSource(String),
    /// A coalition with this name already exists.
    CoalitionExists(String),
    /// The source is already a member of the coalition.
    AlreadyMember {
        /// The source.
        source: String,
        /// The coalition.
        coalition: String,
    },
    /// A service link with identical endpoints already exists.
    DuplicateLink,
}

impl fmt::Display for CodbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodbError::Oo(e) => write!(f, "object store: {e}"),
            CodbError::NoSuchCoalition(c) => write!(f, "no such coalition: {c}"),
            CodbError::NoSuchSource(s) => write!(f, "no such information source: {s}"),
            CodbError::CoalitionExists(c) => write!(f, "coalition already exists: {c}"),
            CodbError::AlreadyMember { source, coalition } => {
                write!(f, "{source} is already a member of {coalition}")
            }
            CodbError::DuplicateLink => write!(f, "service link already exists"),
        }
    }
}

impl std::error::Error for CodbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodbError::Oo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OoError> for CodbError {
    fn from(e: OoError) -> Self {
        CodbError::Oo(e)
    }
}

/// Result alias for co-database operations.
pub type CodbResult<T> = Result<T, CodbError>;
