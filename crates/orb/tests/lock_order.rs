//! Interleaving stress test for the concurrency-analysis pass: N
//! threads hammer the IOR cache, the per-endpoint circuit breaker, and
//! a counting servant through real IIOP while a seeded [`ChaosPlan`]
//! degrades the endpoint, then the test asserts the `deadlock-detect`
//! detector (when compiled in) saw zero violations and that no
//! acknowledged update was lost.
//!
//! The test also runs without the feature (the drain API returns an
//! empty list there), so the interleaving itself is exercised in every
//! CI configuration; the `analysis` CI job runs it with the detector on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use webfindit_base::sync::detect;
use webfindit_base::sync::Mutex;
use webfindit_orb::servant::{InvokeResult, Servant, ServantError};
use webfindit_orb::{
    CallOptions, ChaosAction, ChaosPlan, IorCache, NamingClient, NamingService, Orb, OrbConfig,
    OrbDomain, RetryPolicy,
};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::transport::Fault;
use webfindit_wire::Value;

/// A servant whose state is a counter behind a `base::sync` Mutex:
/// every successful `incr` must be visible in the final `get`.
struct CounterServant {
    count: Mutex<u64>,
}

impl Servant for CounterServant {
    fn interface_id(&self) -> &str {
        "IDL:test/Counter:1.0"
    }
    fn invoke(&self, operation: &str, _args: &[Value]) -> InvokeResult {
        match operation {
            "incr" => {
                let mut c = self.count.lock();
                *c += 1;
                Ok(Value::Long(*c as i32))
            }
            "get" => Ok(Value::Long(*self.count.lock() as i32)),
            other => Err(ServantError::UnknownOperation(other.into())),
        }
    }
}

#[test]
fn chaos_interleaving_has_no_detector_violations_and_no_lost_updates() {
    // Flush reports from other tests in this binary before the run.
    let _ = detect::take_violations();

    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("S", "stress.example", 11, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .expect("server orb starts");
    let client = Orb::start(
        OrbConfig::new("C", "stress-cl.example", 12, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .expect("client orb starts");

    let naming = NamingService::new();
    let naming_ior = server.activate(b"naming/root".to_vec(), naming);
    let counter_ior = server.activate(
        "counter",
        Arc::new(CounterServant {
            count: Mutex::new_labeled(0, "test::CounterServant.count"),
        }),
    );

    let cache = IorCache::new(Duration::from_millis(40));
    let nc = Arc::new(NamingClient::with_cache(
        Arc::clone(&client),
        naming_ior,
        Arc::clone(&cache),
    ));
    nc.bind("Counter", &counter_ior).expect("bind counter");

    // A seeded, replayable schedule of endpoint faults; steps are
    // applied by the main thread between barrier-free sleep windows
    // while the workers keep hammering.
    let mut plan = ChaosPlan::new(0xC0FFEE);
    plan.push(
        0,
        ChaosAction::EndpointFault {
            host: "stress.example".into(),
            port: 11,
            fault: Fault::DelayMs(2),
        },
    )
    .push(
        1,
        ChaosAction::RefuseConnections {
            host: "stress.example".into(),
            port: 11,
        },
    )
    .push(
        2,
        ChaosAction::AcceptConnections {
            host: "stress.example".into(),
            port: 11,
        },
    )
    .push(
        2,
        ChaosAction::ClearEndpoint {
            host: "stress.example".into(),
            port: 11,
        },
    );

    const THREADS: u64 = 8;
    const ITERS: u64 = 40;
    let acknowledged = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let nc = Arc::clone(&nc);
            let cache = Arc::clone(&cache);
            let client = Arc::clone(&client);
            let acknowledged = Arc::clone(&acknowledged);
            s.spawn(move || {
                let opts = CallOptions {
                    deadline: Some(Duration::from_millis(500)),
                    retry: RetryPolicy::never(),
                };
                for i in 0..ITERS {
                    // Resolve through the shared cache (hits and misses
                    // race with the TTL sweep and invalidations).
                    let ior = match nc.resolve("Counter") {
                        Ok(ior) => ior,
                        Err(_) => {
                            // Naming itself degraded under chaos; the
                            // cache entry may be stale — drop it.
                            nc.invalidate("Counter");
                            continue;
                        }
                    };
                    match client.invoke_with(&ior, "incr", &[], &opts) {
                        Ok(_) => {
                            acknowledged.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Breaker-open, refused, or dropped: the
                            // standard client reaction is to invalidate
                            // the cached reference and move on.
                            nc.invalidate("Counter");
                        }
                    }
                    if i % 16 == t % 16 {
                        cache.clear();
                    }
                }
            });
        }

        // Step the seeded plan against the live mesh while the workers
        // run: latency, refused connections, then full recovery.
        let registry = domain.chaos_registry();
        for step in 0..=plan.last_step() {
            for event in plan.events_at(step) {
                match &event.action {
                    ChaosAction::EndpointFault { host, port, fault } => {
                        registry.set_fault(host, *port, *fault)
                    }
                    ChaosAction::ClearEndpoint { host, port } => registry.clear_fault(host, *port),
                    ChaosAction::RefuseConnections { host, port } => registry.refuse(host, *port),
                    ChaosAction::AcceptConnections { host, port } => registry.accept(host, *port),
                    other => panic!("plan contains non-endpoint action {other:?}"),
                }
            }
            std::thread::sleep(Duration::from_millis(30));
        }
    });

    // Recovery: with faults cleared, calls succeed again (waiting out
    // the breaker cooldown if the refusal window tripped it).
    let final_count = (0..50)
        .find_map(|_| {
            match client.invoke_with(
                &counter_ior,
                "get",
                &[],
                &CallOptions::with_deadline(Duration::from_millis(500)),
            ) {
                Ok(Value::Long(n)) => Some(n as u64),
                _ => {
                    std::thread::sleep(Duration::from_millis(20));
                    None
                }
            }
        })
        .expect("endpoint recovers after chaos clears");

    // No lost updates: every acknowledged incr is in the final count.
    // (The count may exceed acknowledgements — an incr whose reply was
    // dropped executed without being acknowledged.)
    let acked = acknowledged.load(Ordering::Relaxed);
    assert!(
        final_count >= acked,
        "acknowledged {acked} updates but servant counted {final_count}"
    );
    assert!(acked > 0, "chaos was so severe no call ever succeeded");

    // The analysis verdict: a clean interleaving. With the feature off
    // the drain is trivially empty; with it on, this is the claim that
    // the lock discipline of cache + breaker + channel + servant holds.
    let violations = detect::take_violations();
    assert!(
        violations.is_empty(),
        "detector reported violations:\n{:#?}",
        violations
    );
    let metrics = client.metrics();
    metrics.sync_analysis();
    let snap = metrics.snapshot();
    assert_eq!(snap.analysis_lock_cycles, 0);
    assert_eq!(snap.analysis_blocking_violations, 0);

    server.shutdown();
    client.shutdown();
}
