//! The WebTassili statement AST.

use std::fmt;

/// A literal value in a WebTassili expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `Like`
    Like,
}

impl PredOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            PredOp::Eq => "=",
            PredOp::Ne => "<>",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
            PredOp::Like => "LIKE",
        }
    }
}

/// A predicate over exported attributes (used in access-function calls).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `Path op literal`, e.g. `ResearchProjects.Title = 'AIDS and drugs'`.
    Cmp {
        /// Dotted attribute path.
        path: String,
        /// Operator.
        op: PredOp,
        /// Literal operand.
        value: Literal,
    },
    /// `Path In (lit, lit, …)` — membership in a literal list. The
    /// federated executor synthesizes these to ship a semi-join's key
    /// set to the probe sites.
    InList {
        /// Dotted attribute path.
        path: String,
        /// The admitted values (at least one).
        values: Vec<Literal>,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

/// An argument to an access-function invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A dotted attribute reference, e.g. `ResearchProjects.Title`.
    AttrRef(String),
    /// A literal.
    Literal(Literal),
    /// A parenthesized predicate.
    Predicate(Predicate),
}

/// The member-set scope of a federated invocation: which sites a
/// coalition-wide query fans out to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedScope {
    /// `At Coalition <name>` — every member of the named coalition.
    Coalition(String),
    /// `At Sites With Information <topic>` — the members of every
    /// coalition discovery finds for the topic.
    Topic(String),
}

impl fmt::Display for FedScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedScope::Coalition(name) => write!(f, "At Coalition {name}"),
            FedScope::Topic(topic) => write!(f, "At Sites With Information {topic}"),
        }
    }
}

/// A semi-join clause on a federated invocation:
/// `Where <probe attr> In <BuildType>.<BuildAttr>(build args…)`.
///
/// The build side runs first over the sites exporting `build_type`; its
/// distinct values become the key set shipped (as an `In` predicate) to
/// the sites answering the probe side.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiJoin {
    /// Probe-side attribute the keys restrict (dotted path).
    pub probe_attr: String,
    /// Exported type of the build side.
    pub build_type: String,
    /// Attribute/function projected on the build side (the keys).
    pub build_attr: String,
    /// Arguments (predicates) pushed down to the build side.
    pub build_args: Vec<Arg>,
}

/// A service-link endpoint in management statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkTarget {
    /// `Coalition <name>`.
    Coalition(String),
    /// `Instance <name>` (a database).
    Instance(String),
}

impl LinkTarget {
    /// The endpoint name.
    pub fn name(&self) -> &str {
        match self {
            LinkTarget::Coalition(n) | LinkTarget::Instance(n) => n,
        }
    }
}

/// A parsed WebTassili statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `Find Coalitions With Information <topic>` — locate clusters.
    FindCoalitions {
        /// The requested information type.
        topic: String,
    },
    /// `Find Databases With Information <topic>` — locate sources
    /// directly.
    FindDatabases {
        /// The requested information type.
        topic: String,
    },
    /// `Connect To Coalition <name>` — obtain a point of entry.
    ConnectToCoalition {
        /// Target coalition.
        name: String,
    },
    /// `Display SubClasses of Class <name>` — refine within the lattice.
    DisplaySubclasses {
        /// The class to expand.
        class: String,
    },
    /// `Display Instances of Class <name>` — the member databases.
    DisplayInstances {
        /// The class whose instances to list.
        class: String,
    },
    /// `Display Document of Instance <name> [Of Class <class>]` — the
    /// documentation of an information source.
    DisplayDocument {
        /// Source name.
        instance: String,
        /// Optional class qualification (as in the paper's example).
        class: Option<String>,
    },
    /// `Display Access Information of Instance <name>` — location,
    /// wrapper, and exported interface summary.
    DisplayAccessInfo {
        /// Source name.
        instance: String,
    },
    /// `Display Interface of Instance <name>` — the full exported types.
    DisplayInterface {
        /// Source name.
        instance: String,
    },
    /// `Invoke <Type>.<Function>(args…) On Instance <name>` — call an
    /// exported access routine (translated to the native language).
    Invoke {
        /// Target source.
        instance: String,
        /// Exported type owning the function.
        type_name: String,
        /// Function name.
        function: String,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// `Submit Native '<query>' To Instance <name>` — pass a native
    /// query through unchanged (the Fetch button path of Figure 6).
    Native {
        /// Target source.
        instance: String,
        /// The native query text.
        query: String,
    },
    /// `Invoke <Type>.<Function>(args…) At Coalition <name>` (or
    /// `At Sites With Information <topic>`) — a federated access-function
    /// call fanned out to every member site exporting the type, merged
    /// as a union. An optional `Where <attr> In <T2>.<A2>(…)` clause
    /// adds a cross-site semi-join, and `Limit <n>` bounds the merged
    /// result (pushed to the members as a row cap).
    FedInvoke {
        /// Exported type owning the function.
        type_name: String,
        /// Function name (the projected column).
        function: String,
        /// Arguments (predicates are pushed down to every site).
        args: Vec<Arg>,
        /// Which member sites to fan out to.
        scope: FedScope,
        /// Optional cross-site semi-join.
        semi: Option<SemiJoin>,
        /// Optional row cap on the merged result.
        limit: Option<u64>,
    },
    /// `Explain <statement>` — render the execution plan instead of
    /// running the statement (federated invocations only).
    Explain(Box<Statement>),
    /// `Create Coalition <name> [Under <parent>] [Documentation '<d>']`.
    CreateCoalition {
        /// New coalition name.
        name: String,
        /// Optional parent in the lattice.
        parent: Option<String>,
        /// Optional documentation string.
        documentation: Option<String>,
    },
    /// `Dissolve Coalition <name>`.
    DissolveCoalition {
        /// Doomed coalition.
        name: String,
    },
    /// `Join Instance <db> To Coalition <c>` — membership change.
    Join {
        /// The joining source.
        instance: String,
        /// The coalition joined.
        coalition: String,
    },
    /// `Leave Instance <db> From Coalition <c>`.
    Leave {
        /// The leaving source.
        instance: String,
        /// The coalition left.
        coalition: String,
    },
    /// `Link <end> To <end> [Description '<d>']` — create a service link.
    AddLink {
        /// Offering end.
        from: LinkTarget,
        /// Consuming end.
        to: LinkTarget,
        /// Optional description of the shared information.
        description: Option<String>,
    },
}

impl fmt::Display for Statement {
    /// Canonical WebTassili rendering (parse ∘ display is identity on
    /// the AST — checked by property tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::FindCoalitions { topic } => {
                write!(f, "Find Coalitions With Information {topic};")
            }
            Statement::FindDatabases { topic } => {
                write!(f, "Find Databases With Information {topic};")
            }
            Statement::ConnectToCoalition { name } => {
                write!(f, "Connect To Coalition {name};")
            }
            Statement::DisplaySubclasses { class } => {
                write!(f, "Display SubClasses of Class {class};")
            }
            Statement::DisplayInstances { class } => {
                write!(f, "Display Instances of Class {class};")
            }
            Statement::DisplayDocument { instance, class } => match class {
                Some(c) => write!(f, "Display Document of Instance {instance} Of Class {c};"),
                None => write!(f, "Display Document of Instance {instance};"),
            },
            Statement::DisplayAccessInfo { instance } => {
                write!(f, "Display Access Information of Instance {instance};")
            }
            Statement::DisplayInterface { instance } => {
                write!(f, "Display Interface of Instance {instance};")
            }
            Statement::Invoke {
                instance,
                type_name,
                function,
                args,
            } => {
                let rendered: Vec<String> = args
                    .iter()
                    .map(|a| match a {
                        Arg::AttrRef(p) => p.clone(),
                        Arg::Literal(l) => l.to_string(),
                        Arg::Predicate(p) => format!("({})", render_pred(p)),
                    })
                    .collect();
                write!(
                    f,
                    "Invoke {type_name}.{function}({}) On Instance {instance};",
                    rendered.join(", ")
                )
            }
            Statement::Native { instance, query } => write!(
                f,
                "Submit Native '{}' To Instance {instance};",
                query.replace('\'', "''")
            ),
            Statement::FedInvoke {
                type_name,
                function,
                args,
                scope,
                semi,
                limit,
            } => {
                let rendered: Vec<String> = args
                    .iter()
                    .map(|a| match a {
                        Arg::AttrRef(p) => p.clone(),
                        Arg::Literal(l) => l.to_string(),
                        Arg::Predicate(p) => format!("({})", render_pred(p)),
                    })
                    .collect();
                write!(
                    f,
                    "Invoke {type_name}.{function}({}) {scope}",
                    rendered.join(", ")
                )?;
                if let Some(s) = semi {
                    let build_args: Vec<String> = s
                        .build_args
                        .iter()
                        .map(|a| match a {
                            Arg::AttrRef(p) => p.clone(),
                            Arg::Literal(l) => l.to_string(),
                            Arg::Predicate(p) => format!("({})", render_pred(p)),
                        })
                        .collect();
                    write!(
                        f,
                        " Where {} In {}.{}({})",
                        s.probe_attr,
                        s.build_type,
                        s.build_attr,
                        build_args.join(", ")
                    )?;
                }
                if let Some(n) = limit {
                    write!(f, " Limit {n}")?;
                }
                write!(f, ";")
            }
            Statement::Explain(inner) => write!(f, "Explain {inner}"),
            Statement::CreateCoalition {
                name,
                parent,
                documentation,
            } => {
                write!(f, "Create Coalition {name}")?;
                if let Some(p) = parent {
                    write!(f, " Under {p}")?;
                }
                if let Some(d) = documentation {
                    write!(f, " Documentation '{}'", d.replace('\'', "''"))?;
                }
                write!(f, ";")
            }
            Statement::DissolveCoalition { name } => {
                write!(f, "Dissolve Coalition {name};")
            }
            Statement::Join {
                instance,
                coalition,
            } => write!(f, "Join Instance {instance} To Coalition {coalition};"),
            Statement::Leave {
                instance,
                coalition,
            } => write!(f, "Leave Instance {instance} From Coalition {coalition};"),
            Statement::AddLink {
                from,
                to,
                description,
            } => {
                let render_end = |e: &LinkTarget| match e {
                    LinkTarget::Coalition(n) => format!("Coalition {n}"),
                    LinkTarget::Instance(n) => format!("Instance {n}"),
                };
                write!(f, "Link {} To {}", render_end(from), render_end(to))?;
                if let Some(d) = description {
                    write!(f, " Description '{}'", d.replace('\'', "''"))?;
                }
                write!(f, ";")
            }
        }
    }
}

/// Render a predicate in WebTassili/SQL-compatible syntax.
pub fn render_pred(p: &Predicate) -> String {
    match p {
        Predicate::Cmp { path, op, value } => format!("{path} {} {value}", op.sql()),
        Predicate::InList { path, values } => {
            let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!("{path} In ({})", vs.join(", "))
        }
        Predicate::And(a, b) => format!("({}) And ({})", render_pred(a), render_pred(b)),
        Predicate::Or(a, b) => format!("({}) Or ({})", render_pred(a), render_pred(b)),
        Predicate::Not(a) => format!("Not ({})", render_pred(a)),
    }
}
