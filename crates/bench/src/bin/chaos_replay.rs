//! Seeded chaos replay over the healthcare federation.
//!
//! Builds the 14-site deployment, generates a `ChaosPlan` from the seed
//! given on the command line (default 1999), executes it step by step,
//! and interleaves discovery queries, printing a fully deterministic
//! transcript: the plan digest, every applied event, and for each query
//! whether it found leads and which sites were degraded. The CI `chaos`
//! job runs this twice per seed and diffs the transcripts — any
//! nondeterminism in the schedule or in degradation behaviour shows up
//! as a diff.

use std::thread;
use std::time::Duration;
use webfindit::discovery::DiscoveryEngine;
use webfindit::orb::CallOptions;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;

/// Queries issued after every plan step: a start site and a topic whose
/// answer crosses ORB boundaries.
const QUERIES: &[(&str, &str)] = &[
    ("QUT Research", "Medical Insurance"),
    ("Medicare", "Medical Research"),
];

fn main() {
    let plan_seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(1999);

    header("Chaos replay", "seeded fault schedule against healthcare");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    // Bound every remote hop: a site whose replies are being dropped
    // must cost a deadline, not an indefinite hang.
    dep.fed
        .set_call_options(CallOptions::with_deadline(Duration::from_millis(80)));
    let engine = DiscoveryEngine::new(dep.fed.clone());

    let plan = dep.chaos_plan(plan_seed, 16);
    println!("plan seed: {plan_seed}");
    println!("plan digest: {:#018x}", plan.digest());
    println!("events: {}", plan.events().len());

    for step in 1..=plan.last_step() {
        for line in plan.apply_step(step, &*dep.fed) {
            println!("{line}");
        }
        // Let any breaker opened by a previous step finish its cooldown
        // so probe admission depends on endpoint health, not timing.
        thread::sleep(Duration::from_millis(60));
        for (start, topic) in QUERIES {
            let out = engine
                .find(start, topic)
                .expect("discovery itself never errors");
            let mut lost = out.degraded_sites();
            lost.sort_unstable();
            lost.dedup();
            println!(
                "  find {topic:?} from {start:?}: found={} complete={} degraded={lost:?}",
                out.found(),
                out.complete(),
            );
        }
    }

    // The generated schedule heals everything it inflicts, so the
    // closing state must be a whole federation again.
    thread::sleep(Duration::from_millis(60));
    for (start, topic) in QUERIES {
        let out = engine.find(start, topic).expect("final discovery");
        println!(
            "final {topic:?} from {start:?}: found={} complete={}",
            out.found(),
            out.complete(),
        );
        assert!(out.complete(), "healed federation must answer completely");
    }
    println!("replay of seed {plan_seed} complete");
    dep.fed.shutdown();
}
