//! Access routines: callable methods registered per class.
//!
//! The paper's exported interfaces include *functions* alongside
//! attributes — e.g. `Description(Patient.Name, Date)` "written in
//! Oracle's C interface", or `Funding(Title, Predicate)` which translates
//! to SQL. In the object store these are **access routines**: named
//! implementations registered against a class, dispatched dynamically,
//! and inherited by subclasses.

use crate::model::{OValue, Oid};
use crate::store::ObjectStore;
use crate::{OoError, OoResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The implementation signature of an access routine: it receives the
/// store, the receiver object (or `None` for class-level routines), and
/// the argument list.
pub type RoutineFn =
    Arc<dyn Fn(&ObjectStore, Option<Oid>, &[OValue]) -> OoResult<OValue> + Send + Sync>;

/// A registry of access routines, keyed by `(class, method)`.
///
/// Kept separate from [`ObjectStore`] so that stores stay `Clone` and
/// plain-data; a co-database pairs a store with its routine table.
#[derive(Default, Clone)]
pub struct MethodTable {
    routines: BTreeMap<(String, String), RoutineFn>,
}

impl MethodTable {
    /// Create an empty table.
    pub fn new() -> MethodTable {
        MethodTable::default()
    }

    /// Register `method` on `class`.
    pub fn register(
        &mut self,
        class: &str,
        method: &str,
        f: impl Fn(&ObjectStore, Option<Oid>, &[OValue]) -> OoResult<OValue> + Send + Sync + 'static,
    ) {
        self.routines.insert(
            (class.to_ascii_lowercase(), method.to_ascii_lowercase()),
            Arc::new(f),
        );
    }

    /// Names of the methods registered directly on `class`.
    pub fn methods_of(&self, class: &str) -> Vec<String> {
        let key = class.to_ascii_lowercase();
        self.routines
            .keys()
            .filter(|(c, _)| *c == key)
            .map(|(_, m)| m.clone())
            .collect()
    }

    /// Invoke `method` on an instance, walking up the inheritance chain
    /// until an implementation is found (dynamic dispatch).
    pub fn invoke(
        &self,
        store: &ObjectStore,
        receiver: Oid,
        method: &str,
        args: &[OValue],
    ) -> OoResult<OValue> {
        let class = store.object(receiver)?.class.clone();
        self.invoke_on_class(store, &class, Some(receiver), method, args)
    }

    /// Invoke `method` resolved against `class` (optionally with a
    /// receiver), searching the class and its ancestors breadth-first.
    pub fn invoke_on_class(
        &self,
        store: &ObjectStore,
        class: &str,
        receiver: Option<Oid>,
        method: &str,
        args: &[OValue],
    ) -> OoResult<OValue> {
        let m = method.to_ascii_lowercase();
        let mut frontier = vec![class.to_ascii_lowercase()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(c) = frontier.pop() {
            if !seen.insert(c.clone()) {
                continue;
            }
            if let Some(f) = self.routines.get(&(c.clone(), m.clone())) {
                return f(store, receiver, args);
            }
            for p in store.superclasses(&c)? {
                frontier.push(p.to_ascii_lowercase());
            }
        }
        Err(OoError::NoSuchMethod {
            class: class.to_owned(),
            method: method.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClassDef, OType};

    fn setup() -> (ObjectStore, MethodTable, Oid) {
        let mut s = ObjectStore::new("codb");
        s.define_class(
            ClassDef::root("Research")
                .attr("name", OType::Text)
                .attr("funding", OType::Double),
        )
        .unwrap();
        s.define_class(ClassDef::root("MedicalResearch").extends("Research"))
            .unwrap();
        let oid = s
            .create(
                "MedicalResearch",
                [
                    ("name".to_string(), OValue::from("AIDS and drugs")),
                    ("funding".to_string(), OValue::from(250_000.0)),
                ],
            )
            .unwrap();

        let mut mt = MethodTable::new();
        // The paper's Funding() access routine: returns the budget.
        mt.register("Research", "funding_of", |store, recv, _args| {
            let oid = recv.ok_or_else(|| OoError::MethodFailed("needs receiver".into()))?;
            Ok(store.object(oid)?.get("funding"))
        });
        mt.register("Research", "describe", |store, recv, args| {
            let oid = recv.ok_or_else(|| OoError::MethodFailed("needs receiver".into()))?;
            let prefix = args.first().and_then(OValue::as_text).unwrap_or("project");
            Ok(OValue::Text(format!(
                "{prefix}: {}",
                store.object(oid)?.get("name")
            )))
        });
        (s, mt, oid)
    }

    #[test]
    fn inherited_dispatch() {
        let (s, mt, oid) = setup();
        // Registered on Research, invoked on a MedicalResearch instance.
        let out = mt.invoke(&s, oid, "funding_of", &[]).unwrap();
        assert_eq!(out, OValue::Double(250_000.0));
    }

    #[test]
    fn arguments_are_passed() {
        let (s, mt, oid) = setup();
        let out = mt
            .invoke(&s, oid, "describe", &[OValue::from("grant")])
            .unwrap();
        assert_eq!(out.as_text(), Some("grant: AIDS and drugs"));
    }

    #[test]
    fn missing_method_reports_class() {
        let (s, mt, oid) = setup();
        match mt.invoke(&s, oid, "nope", &[]) {
            Err(OoError::NoSuchMethod { class, method }) => {
                assert_eq!(class, "MedicalResearch");
                assert_eq!(method, "nope");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subclass_overrides_win() {
        let (s, mut mt, oid) = setup();
        mt.register("MedicalResearch", "funding_of", |_s, _r, _a| {
            Ok(OValue::Double(0.0))
        });
        let out = mt.invoke(&s, oid, "funding_of", &[]).unwrap();
        assert_eq!(out, OValue::Double(0.0));
    }

    #[test]
    fn class_level_invocation() {
        let (s, mt, _) = setup();
        // No receiver: routines that need one fail gracefully.
        assert!(matches!(
            mt.invoke_on_class(&s, "Research", None, "funding_of", &[]),
            Err(OoError::MethodFailed(_))
        ));
    }

    #[test]
    fn methods_of_lists_direct_only() {
        let (_, mt, _) = setup();
        assert_eq!(mt.methods_of("Research").len(), 2);
        assert!(mt.methods_of("MedicalResearch").is_empty());
    }
}
