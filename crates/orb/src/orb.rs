//! The ORB runtime: listener, dispatcher, client stubs, connection pool.
//!
//! Each [`Orb`] models one vendor ORB instance from the paper's Figure 2
//! (`Orbix`, `OrbixWeb`, `VisiBroker`). An ORB:
//!
//! * binds a loopback TCP listener (its IIOP endpoint) and registers its
//!   advertised `(host, port)` with the shared [`OrbDomain`];
//! * serves GIOP Requests arriving on that endpoint by dispatching into
//!   its [`ObjectAdapter`];
//! * acts as a client: [`Orb::invoke`] marshals a Request, ships it over
//!   a pooled connection, and unmarshals the Reply. Invocations whose
//!   target lives on this same ORB short-circuit through the adapter
//!   (counted separately — collocated calls were a selling point of
//!   1990s ORBs too);
//! * keeps [`OrbMetrics`] so experiments can count round-trips and bytes.
//!
//! Vendor flavor: each ORB is configured with a preferred byte order, so
//! an "Orbix" (big-endian) really does exchange differently-ordered CDR
//! with a "VisiBroker" (little-endian) — the receiver honors the header
//! flag, which is the CORBA 2.0 interoperability story in miniature.

use crate::adapter::ObjectAdapter;
use crate::domain::OrbDomain;
use crate::metrics::OrbMetrics;
use crate::servant::Servant;
use crate::{OrbError, OrbResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{self, GiopMessage, LocateStatus, ReplyStatus};
use webfindit_wire::transport::{FramedTcp, Transport};
use webfindit_wire::{Ior, Value, WireError};

/// Static configuration of an ORB instance.
#[derive(Debug, Clone)]
pub struct OrbConfig {
    /// Vendor-flavored instance name, e.g. `"Orbix"`.
    pub name: String,
    /// Hostname advertised inside IORs, e.g. `"dba.icis.qut.edu.au"`.
    pub advertised_host: String,
    /// Port advertised inside IORs (decoupled from the real socket).
    pub advertised_port: u16,
    /// Byte order this ORB marshals with (receivers adapt via the GIOP
    /// header flag).
    pub byte_order: ByteOrder,
}

impl OrbConfig {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        advertised_host: impl Into<String>,
        advertised_port: u16,
        byte_order: ByteOrder,
    ) -> Self {
        OrbConfig {
            name: name.into(),
            advertised_host: advertised_host.into(),
            advertised_port,
            byte_order,
        }
    }
}

/// Client connection pool: advertised endpoint → shared framed stream.
type ConnectionPool = HashMap<(String, u16), Arc<Mutex<FramedTcp>>>;

/// A running ORB instance.
pub struct Orb {
    config: OrbConfig,
    domain: Arc<OrbDomain>,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    listener_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Streams of accepted server-side connections, kept so `shutdown`
    /// can force blocked reader threads to exit.
    server_streams: Arc<Mutex<Vec<TcpStream>>>,
    /// Client connection pool keyed by advertised endpoint.
    pool: Mutex<ConnectionPool>,
    next_request_id: AtomicU32,
    listener_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Orb {
    /// Start an ORB: bind a loopback listener, register the endpoint in
    /// the domain, and begin serving requests.
    pub fn start(config: OrbConfig, domain: Arc<OrbDomain>) -> OrbResult<Arc<Orb>> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(WireError::Io)?;
        let listener_addr = listener.local_addr().map_err(WireError::Io)?;
        domain.register_endpoint(
            config.advertised_host.clone(),
            config.advertised_port,
            listener_addr,
        );
        domain.register_orb(config.name.clone());

        let orb = Arc::new(Orb {
            config,
            domain,
            adapter: Arc::new(ObjectAdapter::new()),
            metrics: Arc::new(OrbMetrics::default()),
            listener_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            server_streams: Arc::new(Mutex::new(Vec::new())),
            pool: Mutex::new(HashMap::new()),
            next_request_id: AtomicU32::new(1),
            listener_handle: Mutex::new(None),
        });

        let accept_orb = Arc::clone(&orb);
        let handle = std::thread::Builder::new()
            .name(format!("orb-{}-accept", orb.config.name))
            .spawn(move || accept_loop(accept_orb, listener))
            .expect("spawning ORB accept thread");
        *orb.listener_handle.lock() = Some(handle);
        Ok(orb)
    }

    /// This ORB's instance name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The advertised (IOR-visible) endpoint.
    pub fn advertised_endpoint(&self) -> (String, u16) {
        (
            self.config.advertised_host.clone(),
            self.config.advertised_port,
        )
    }

    /// The ORB's object adapter.
    pub fn adapter(&self) -> &ObjectAdapter {
        &self.adapter
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &OrbMetrics {
        &self.metrics
    }

    /// The domain this ORB participates in.
    pub fn domain(&self) -> &Arc<OrbDomain> {
        &self.domain
    }

    /// The byte order this ORB marshals with.
    pub fn byte_order(&self) -> ByteOrder {
        self.config.byte_order
    }

    /// Activate `servant` under `key` and mint an IOR for it.
    pub fn activate(
        &self,
        key: impl Into<Vec<u8>>,
        servant: Arc<dyn Servant>,
    ) -> Ior {
        let key = key.into();
        let type_id = servant.interface_id().to_owned();
        self.adapter.activate(key.clone(), servant);
        Ior::new_iiop(
            type_id,
            self.config.advertised_host.clone(),
            self.config.advertised_port,
            key,
        )
    }

    /// Build an IOR for an already-activated key.
    pub fn ior_for(&self, key: impl Into<Vec<u8>>, type_id: impl Into<String>) -> Ior {
        Ior::new_iiop(
            type_id,
            self.config.advertised_host.clone(),
            self.config.advertised_port,
            key,
        )
    }

    fn is_local(&self, host: &str, port: u16) -> bool {
        host == self.config.advertised_host && port == self.config.advertised_port
    }

    /// Invoke `operation(args)` on the object `ior` refers to.
    ///
    /// Collocated targets dispatch directly through the adapter; remote
    /// targets marshal through GIOP over pooled TCP connections.
    pub fn invoke(&self, ior: &Ior, operation: &str, args: &[Value]) -> OrbResult<Value> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(OrbError::ShutDown);
        }
        let profile = ior.iiop_profile().ok_or(OrbError::NoEndpoint)?;
        if self.is_local(&profile.host, profile.port) {
            self.metrics
                .add(&self.metrics.local_dispatches, 1);
            return self
                .adapter
                .dispatch(&profile.object_key, operation, args)
                .map_err(|e| OrbError::RemoteException {
                    system: e.is_system(),
                    description: e.description(),
                });
        }
        self.invoke_remote(&profile.host, profile.port, &profile.object_key, operation, args)
    }

    fn invoke_remote(
        &self,
        host: &str,
        port: u16,
        object_key: &[u8],
        operation: &str,
        args: &[Value],
    ) -> OrbResult<Value> {
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let msg = giop::request(request_id, object_key.to_vec(), operation, args.to_vec());
        let frame = msg.encode(self.config.byte_order)?;

        // One retry with a fresh connection if a pooled one went stale.
        let mut attempt = 0;
        loop {
            attempt += 1;
            let conn = self.pooled_connection(host, port)?;
            let mut guard = conn.lock();
            let result = (|| -> OrbResult<Value> {
                guard.send_frame(&frame)?;
                self.metrics.add(&self.metrics.bytes_sent, frame.len() as u64);
                self.metrics.add(&self.metrics.requests_sent, 1);
                let reply_frame = guard.recv_frame()?;
                self.metrics
                    .add(&self.metrics.bytes_received, reply_frame.len() as u64);
                match GiopMessage::decode_frame(&reply_frame)? {
                    GiopMessage::Reply {
                        request_id: rid,
                        status,
                        body,
                        ..
                    } => {
                        if rid != request_id {
                            return Err(OrbError::RemoteException {
                                system: true,
                                description: format!(
                                    "reply id {rid} does not match request id {request_id}"
                                ),
                            });
                        }
                        match status {
                            ReplyStatus::NoException => Ok(body),
                            ReplyStatus::UserException | ReplyStatus::SystemException => {
                                let description = body
                                    .field("exception")
                                    .and_then(Value::as_str)
                                    .unwrap_or("unknown exception")
                                    .to_owned();
                                Err(OrbError::RemoteException {
                                    system: status == ReplyStatus::SystemException,
                                    description,
                                })
                            }
                            ReplyStatus::LocationForward => match body {
                                Value::ObjectRef(fwd) => self.invoke(&fwd, operation, args),
                                _ => Err(OrbError::RemoteException {
                                    system: true,
                                    description: "malformed LocationForward body".into(),
                                }),
                            },
                        }
                    }
                    GiopMessage::CloseConnection => Err(OrbError::Wire(WireError::Closed)),
                    other => Err(OrbError::RemoteException {
                        system: true,
                        description: format!("unexpected message kind {:?}", other.kind()),
                    }),
                }
            })();
            drop(guard);
            match &result {
                Err(OrbError::Wire(WireError::Closed)) | Err(OrbError::Wire(WireError::Io(_)))
                    if attempt == 1 =>
                {
                    // Stale pooled connection: evict and retry once.
                    self.pool.lock().remove(&(host.to_owned(), port));
                    continue;
                }
                _ => return result,
            }
        }
    }

    /// Probe where an object lives (GIOP LocateRequest).
    pub fn locate(&self, ior: &Ior) -> OrbResult<LocateStatus> {
        let profile = ior.iiop_profile().ok_or(OrbError::NoEndpoint)?;
        if self.is_local(&profile.host, profile.port) {
            return Ok(if self.adapter.contains(&profile.object_key) {
                LocateStatus::ObjectHere
            } else {
                LocateStatus::UnknownObject
            });
        }
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let msg = GiopMessage::LocateRequest {
            request_id,
            object_key: profile.object_key.clone(),
        };
        let conn = self.pooled_connection(&profile.host, profile.port)?;
        let mut guard = conn.lock();
        guard.send_message(&msg, self.config.byte_order)?;
        match guard.recv_message()? {
            GiopMessage::LocateReply { status, .. } => Ok(status),
            other => Err(OrbError::RemoteException {
                system: true,
                description: format!("unexpected locate reply {:?}", other.kind()),
            }),
        }
    }

    fn pooled_connection(&self, host: &str, port: u16) -> OrbResult<Arc<Mutex<FramedTcp>>> {
        let key = (host.to_owned(), port);
        if let Some(conn) = self.pool.lock().get(&key) {
            return Ok(Arc::clone(conn));
        }
        let addr = self
            .domain
            .resolve(host, port)
            .ok_or_else(|| OrbError::UnknownHost {
                host: host.to_owned(),
                port,
            })?;
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        let conn = Arc::new(Mutex::new(FramedTcp::new(stream)));
        self.pool.lock().insert(key, Arc::clone(&conn));
        Ok(conn)
    }

    /// Shut the ORB down: stop accepting, sever server connections,
    /// unregister the endpoint, and drop pooled client connections.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already down
        }
        // Unblock the accept loop by poking the listener.
        let _ = TcpStream::connect(self.listener_addr);
        if let Some(handle) = self.listener_handle.lock().take() {
            let _ = handle.join();
        }
        for stream in self.server_streams.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.domain
            .unregister_endpoint(&self.config.advertised_host, self.config.advertised_port);
        self.pool.lock().clear();
    }
}

impl Drop for Orb {
    fn drop(&mut self) {
        // Only effective if the caller forgot to shut down; harmless
        // otherwise. (Arc cycles are avoided: handler threads hold only
        // the adapter/metrics Arcs, not the Orb itself.)
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.listener_addr);
        }
    }
}

fn accept_loop(orb: Arc<Orb>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => break,
        };
        if orb.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            orb.server_streams.lock().push(clone);
        }
        let adapter = Arc::clone(&orb.adapter);
        let metrics = Arc::clone(&orb.metrics);
        let order = orb.config.byte_order;
        let name = orb.config.name.clone();
        let _ = std::thread::Builder::new()
            .name(format!("orb-{name}-conn"))
            .spawn(move || serve_connection(stream, adapter, metrics, order));
    }
}

/// Serve one inbound IIOP connection until it closes or errors.
fn serve_connection(
    stream: TcpStream,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    order: ByteOrder,
) {
    let _ = stream.set_nodelay(true);
    let mut transport = FramedTcp::new(stream);
    loop {
        let frame = match transport.recv_frame() {
            Ok(f) => f,
            Err(WireError::Closed) => break,
            Err(_) => {
                // Protocol garbage: tell the peer and drop the connection,
                // as GIOP requires.
                let _ = transport.send_message(&GiopMessage::MessageError, order);
                break;
            }
        };
        metrics.add(&metrics.bytes_received, frame.len() as u64);
        let msg = match GiopMessage::decode_frame(&frame) {
            Ok(m) => m,
            Err(_) => {
                let _ = transport.send_message(&GiopMessage::MessageError, order);
                break;
            }
        };
        match msg {
            GiopMessage::Request { header, args } => {
                metrics.add(&metrics.requests_served, 1);
                // A servant bug must become a system exception for this
                // one request, not a dead connection: isolate panics.
                let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || adapter.dispatch(&header.object_key, &header.operation, &args),
                ));
                let reply = match dispatched {
                    Ok(Ok(value)) => giop::reply_ok(header.request_id, value),
                    Ok(Err(e)) => {
                        metrics.add(&metrics.exceptions_sent, 1);
                        giop::reply_exception(header.request_id, e.is_system(), &e.description())
                    }
                    Err(panic) => {
                        metrics.add(&metrics.exceptions_sent, 1);
                        let what = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic".into());
                        giop::reply_exception(
                            header.request_id,
                            true,
                            &format!("UNKNOWN: servant panicked: {what}"),
                        )
                    }
                };
                if header.response_expected {
                    match reply.encode(order) {
                        Ok(frame) => {
                            metrics.add(&metrics.bytes_sent, frame.len() as u64);
                            if transport.send_frame(&frame).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            GiopMessage::LocateRequest {
                request_id,
                object_key,
            } => {
                metrics.add(&metrics.locates_served, 1);
                let status = if adapter.contains(&object_key) {
                    LocateStatus::ObjectHere
                } else {
                    LocateStatus::UnknownObject
                };
                let reply = GiopMessage::LocateReply {
                    request_id,
                    status,
                    forward: None,
                };
                if transport.send_message(&reply, order).is_err() {
                    break;
                }
            }
            GiopMessage::CancelRequest { .. } => {
                // Dispatch here is synchronous; by the time a cancel
                // arrives the request has already been answered. Ignore.
            }
            GiopMessage::CloseConnection => break,
            GiopMessage::MessageError => break,
            GiopMessage::Reply { .. } | GiopMessage::LocateReply { .. } => {
                // Clients do not send replies; protocol violation.
                let _ = transport.send_message(&GiopMessage::MessageError, order);
                break;
            }
            GiopMessage::Fragment { .. } => {
                // Fragmentation is not negotiated by this implementation.
                let _ = transport.send_message(&GiopMessage::MessageError, order);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::EchoServant;

    fn two_orbs() -> (Arc<Orb>, Arc<Orb>, Arc<OrbDomain>) {
        let domain = OrbDomain::new();
        let orbix = Orb::start(
            OrbConfig::new("Orbix", "orbix.qut.edu.au", 9000, ByteOrder::BigEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let visi = Orb::start(
            OrbConfig::new(
                "VisiBroker",
                "visi.qut.edu.au",
                9001,
                ByteOrder::LittleEndian,
            ),
            Arc::clone(&domain),
        )
        .unwrap();
        (orbix, visi, domain)
    }

    #[test]
    fn cross_orb_invocation_over_iiop() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));

        // VisiBroker (little-endian) calls a servant hosted on Orbix
        // (big-endian): a genuine cross-vendor IIOP round-trip.
        let out = visi
            .invoke(&ior, "echo", &[Value::Long(5), Value::string("hi")])
            .unwrap();
        assert_eq!(
            out,
            Value::Sequence(vec![Value::Long(5), Value::string("hi")])
        );

        let visi_m = visi.metrics().snapshot();
        let orbix_m = orbix.metrics().snapshot();
        assert_eq!(visi_m.requests_sent, 1);
        assert_eq!(visi_m.local_dispatches, 0);
        assert_eq!(orbix_m.requests_served, 1);
        assert!(visi_m.bytes_sent > 12);

        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn collocated_invocation_short_circuits() {
        let (orbix, _visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        let out = orbix.invoke(&ior, "ping", &[]).unwrap();
        assert_eq!(out, Value::string("pong"));
        let m = orbix.metrics().snapshot();
        assert_eq!(m.local_dispatches, 1);
        assert_eq!(m.requests_sent, 0);
        orbix.shutdown();
    }

    #[test]
    fn user_and_system_exceptions_propagate() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));

        match visi.invoke(&ior, "fail_user", &[]) {
            Err(OrbError::RemoteException {
                system: false,
                description,
            }) => assert_eq!(description, "declared failure"),
            other => panic!("expected user exception, got {other:?}"),
        }
        match visi.invoke(&ior, "fail_system", &[]) {
            Err(OrbError::RemoteException { system: true, .. }) => {}
            other => panic!("expected system exception, got {other:?}"),
        }
        match visi.invoke(&ior, "no_such_op", &[]) {
            Err(OrbError::RemoteException {
                system: true,
                description,
            }) => assert!(description.contains("BAD_OPERATION")),
            other => panic!("expected BAD_OPERATION, got {other:?}"),
        }
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn unknown_object_key_is_object_not_exist() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.ior_for("ghost", "IDL:X:1.0");
        match visi.invoke(&ior, "ping", &[]) {
            Err(OrbError::RemoteException {
                system: true,
                description,
            }) => assert!(description.contains("OBJECT_NOT_EXIST")),
            other => panic!("expected OBJECT_NOT_EXIST, got {other:?}"),
        }
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn locate_probe() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        assert_eq!(visi.locate(&ior).unwrap(), LocateStatus::ObjectHere);
        let ghost = orbix.ior_for("ghost", "IDL:X:1.0");
        assert_eq!(visi.locate(&ghost).unwrap(), LocateStatus::UnknownObject);
        // Local probe too.
        assert_eq!(orbix.locate(&ior).unwrap(), LocateStatus::ObjectHere);
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn unknown_host_fails_fast() {
        let (_orbix, visi, _domain) = two_orbs();
        let ior = Ior::new_iiop("IDL:X:1.0", "nowhere.example", 1234, b"k".to_vec());
        assert!(matches!(
            visi.invoke(&ior, "ping", &[]),
            Err(OrbError::UnknownHost { .. })
        ));
    }

    #[test]
    fn nil_reference_rejected() {
        let (_orbix, visi, _domain) = two_orbs();
        assert!(matches!(
            visi.invoke(&Ior::nil(), "ping", &[]),
            Err(OrbError::NoEndpoint)
        ));
    }

    #[test]
    fn shutdown_then_invoke_errors() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        visi.invoke(&ior, "ping", &[]).unwrap();
        orbix.shutdown();
        // The endpoint is gone from the domain and the connection severed;
        // either way the call must fail, not hang.
        assert!(visi.invoke(&ior, "ping", &[]).is_err());
        visi.shutdown();
    }

    #[test]
    fn pool_reuses_connections() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        for _ in 0..10 {
            visi.invoke(&ior, "ping", &[]).unwrap();
        }
        assert_eq!(visi.pool.lock().len(), 1);
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn concurrent_invocations() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        let mut handles = Vec::new();
        for i in 0..8 {
            let visi = Arc::clone(&visi);
            let ior = ior.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..25 {
                    let v = visi
                        .invoke(&ior, "echo", &[Value::Long(i * 100 + j)])
                        .unwrap();
                    assert_eq!(v, Value::Sequence(vec![Value::Long(i * 100 + j)]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(visi.metrics().snapshot().requests_sent, 200);
        orbix.shutdown();
        visi.shutdown();
    }
}
