//! Ground truth of the medical world (the paper's Figure 1 and §4).
//!
//! Fourteen databases, five coalitions, nine service links. DBMS and
//! ORB assignments follow Figure 2 and §4: "ObjectStore databases are
//! connected to Orbix. The Ontos database is connected to OrbixWeb.
//! […] Oracle databases are connected to VisiBroker, whereas mSQL and
//! DB2 are connected to OrbixWeb."

use webfindit_codb::{LinkEnd, ServiceLink};

/// The five DBMS products of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dbms {
    /// Oracle (relational).
    Oracle,
    /// mSQL (relational, minimal feature set).
    MSql,
    /// DB2 (relational).
    Db2,
    /// ObjectStore (object-oriented, C++ interface).
    ObjectStore,
    /// Ontos (object-oriented, reached over JNI).
    Ontos,
}

impl Dbms {
    /// Product name.
    pub fn name(&self) -> &'static str {
        match self {
            Dbms::Oracle => "Oracle",
            Dbms::MSql => "mSQL",
            Dbms::Db2 => "DB2",
            Dbms::ObjectStore => "ObjectStore",
            Dbms::Ontos => "Ontos",
        }
    }

    /// The ORB hosting this product's proxies (Figure 2).
    pub fn orb(&self) -> OrbName {
        match self {
            Dbms::Oracle => OrbName::VisiBroker,
            Dbms::MSql | Dbms::Db2 | Dbms::Ontos => OrbName::OrbixWeb,
            Dbms::ObjectStore => OrbName::Orbix,
        }
    }
}

/// The three ORB instances of the prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrbName {
    /// Orbix (C++ servers; hosts ObjectStore proxies).
    Orbix,
    /// OrbixWeb (Java servers; hosts mSQL, DB2, and Ontos proxies).
    OrbixWeb,
    /// VisiBroker for Java (hosts Oracle proxies).
    VisiBroker,
}

impl OrbName {
    /// Instance name string.
    pub fn as_str(&self) -> &'static str {
        match self {
            OrbName::Orbix => "Orbix",
            OrbName::OrbixWeb => "OrbixWeb",
            OrbName::VisiBroker => "VisiBroker",
        }
    }
}

/// Static description of one participating database.
#[derive(Debug, Clone)]
pub struct DatabaseInfo {
    /// Database name as used in the paper.
    pub name: &'static str,
    /// DBMS product.
    pub dbms: Dbms,
    /// Advertised host.
    pub host: &'static str,
    /// Advertised information type.
    pub information_type: &'static str,
    /// Documentation URL.
    pub documentation_url: &'static str,
}

/// The fourteen databases (§4).
pub fn databases() -> Vec<DatabaseInfo> {
    vec![
        DatabaseInfo {
            name: "Royal Brisbane Hospital",
            dbms: Dbms::Oracle,
            host: "dba.icis.qut.edu.au",
            information_type: "Research and Medical",
            documentation_url: "http://www.medicine.uq.edu.au/RBH",
        },
        DatabaseInfo {
            name: "QUT Research",
            dbms: Dbms::Oracle,
            host: "research.qut.edu.au",
            information_type: "Medical Research",
            documentation_url: "http://docs.webfindit.net/QUT_Research",
        },
        DatabaseInfo {
            name: "Medicare",
            dbms: Dbms::Oracle,
            host: "medicare.gov.au",
            information_type: "Medicare claims and coverage",
            documentation_url: "http://docs.webfindit.net/Medicare",
        },
        DatabaseInfo {
            name: "Medibank",
            dbms: Dbms::Oracle,
            host: "medibank.com.au",
            information_type: "Medical Insurance memberships",
            documentation_url: "http://docs.webfindit.net/Medibank",
        },
        DatabaseInfo {
            name: "Centre Link",
            dbms: Dbms::MSql,
            host: "centrelink.gov.au",
            information_type: "welfare payments",
            documentation_url: "http://docs.webfindit.net/Centre_Link",
        },
        DatabaseInfo {
            name: "State Government Funding",
            dbms: Dbms::MSql,
            host: "funding.qld.gov.au",
            information_type: "state health funding",
            documentation_url: "http://docs.webfindit.net/State_Government_Funding",
        },
        DatabaseInfo {
            name: "RBH Workers Union",
            dbms: Dbms::MSql,
            host: "union.rbh.org.au",
            information_type: "Medical Workers Union membership",
            documentation_url: "http://docs.webfindit.net/RBH_Workers_Union",
        },
        DatabaseInfo {
            name: "Australian Taxation Office",
            dbms: Dbms::Db2,
            host: "ato.gov.au",
            information_type: "taxation records",
            documentation_url: "http://docs.webfindit.net/Australian_Taxation_Office",
        },
        DatabaseInfo {
            name: "MBF",
            dbms: Dbms::Db2,
            host: "mbf.com.au",
            information_type: "Medical Insurance policies",
            documentation_url: "http://docs.webfindit.net/MBF",
        },
        DatabaseInfo {
            name: "RMIT Medical Research",
            dbms: Dbms::ObjectStore,
            host: "research.rmit.edu.au",
            information_type: "Medical Research projects",
            documentation_url: "http://docs.webfindit.net/RMIT_Medical_Research",
        },
        DatabaseInfo {
            name: "Queensland Cancer Fund",
            dbms: Dbms::ObjectStore,
            host: "qldcancer.org.au",
            information_type: "cancer Research funding",
            documentation_url: "http://docs.webfindit.net/Queensland_Cancer_Fund",
        },
        DatabaseInfo {
            name: "Ambulance",
            dbms: Dbms::ObjectStore,
            host: "ambulance.qld.gov.au",
            information_type: "emergency transport",
            documentation_url: "http://docs.webfindit.net/Ambulance",
        },
        DatabaseInfo {
            name: "AMP",
            dbms: Dbms::ObjectStore,
            host: "amp.com.au",
            information_type: "Superannuation investment",
            documentation_url: "http://docs.webfindit.net/AMP",
        },
        DatabaseInfo {
            name: "Prince Charles Hospital",
            dbms: Dbms::Ontos,
            host: "pch.health.qld.gov.au",
            information_type: "Medical treatment",
            documentation_url: "http://docs.webfindit.net/Prince_Charles_Hospital",
        },
    ]
}

/// The five coalitions with their member databases (Figure 1).
pub fn coalitions() -> Vec<(&'static str, &'static str, Vec<&'static str>)> {
    vec![
        (
            "Research",
            "medical research conducted in hospitals and universities",
            vec![
                "QUT Research",
                "RMIT Medical Research",
                "Queensland Cancer Fund",
                "Royal Brisbane Hospital",
            ],
        ),
        (
            "Medical",
            "hospitals and medical service providers",
            vec![
                "Royal Brisbane Hospital",
                "Prince Charles Hospital",
                "Medicare",
            ],
        ),
        (
            "Medical Insurance",
            "medical insurance providers",
            vec!["Medibank", "MBF"],
        ),
        ("Superannuation", "superannuation funds", vec!["AMP"]),
        (
            "Medical Workers Union",
            "medical workers unions",
            vec!["RBH Workers Union"],
        ),
    ]
}

/// The nine service links (Figure 1).
pub fn service_links() -> Vec<ServiceLink> {
    let c = |n: &str| LinkEnd::Coalition(n.to_owned());
    let d = |n: &str| LinkEnd::Database(n.to_owned());
    vec![
        ServiceLink {
            from: d("State Government Funding"),
            to: d("Medicare"),
            description: "state funding flows to Medicare".into(),
        },
        ServiceLink {
            from: d("Australian Taxation Office"),
            to: d("Medicare"),
            description: "levy collection for Medicare".into(),
        },
        ServiceLink {
            from: d("State Government Funding"),
            to: c("Medical"),
            description: "state health funding for Medical providers".into(),
        },
        ServiceLink {
            from: d("Australian Taxation Office"),
            to: c("Medical"),
            description: "taxation data for Medical providers".into(),
        },
        ServiceLink {
            from: c("Superannuation"),
            to: c("Medical"),
            description: "superannuation cover for Medical staff".into(),
        },
        ServiceLink {
            from: d("Centre Link"),
            to: c("Medical"),
            description: "welfare entitlements for Medical patients".into(),
        },
        ServiceLink {
            from: c("Medical Workers Union"),
            to: c("Medical"),
            description: "union coverage of Medical staff".into(),
        },
        ServiceLink {
            from: d("Ambulance"),
            to: c("Medical"),
            description: "emergency transport for Medical providers".into(),
        },
        ServiceLink {
            from: c("Medical"),
            to: c("Medical Insurance"),
            description: "Medical Insurance information for providers".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_paper() {
        assert_eq!(databases().len(), 14);
        assert_eq!(coalitions().len(), 5);
        assert_eq!(service_links().len(), 9);
    }

    #[test]
    fn five_dbms_products_are_used() {
        let mut products: Vec<&str> = databases().iter().map(|d| d.dbms.name()).collect();
        products.sort();
        products.dedup();
        assert_eq!(
            products,
            vec!["DB2", "ObjectStore", "Ontos", "Oracle", "mSQL"]
        );
    }

    #[test]
    fn rbh_is_in_research_and_medical() {
        let memberships: Vec<&str> = coalitions()
            .iter()
            .filter(|(_, _, m)| m.contains(&"Royal Brisbane Hospital"))
            .map(|(n, _, _)| *n)
            .collect();
        assert_eq!(memberships, vec!["Research", "Medical"]);
    }

    #[test]
    fn orb_assignment_follows_figure_2() {
        for db in databases() {
            let expected = match db.dbms {
                Dbms::Oracle => OrbName::VisiBroker,
                Dbms::MSql | Dbms::Db2 | Dbms::Ontos => OrbName::OrbixWeb,
                Dbms::ObjectStore => OrbName::Orbix,
            };
            assert_eq!(db.dbms.orb(), expected, "{}", db.name);
        }
    }

    #[test]
    fn every_coalition_member_is_a_database() {
        let names: Vec<&str> = databases().iter().map(|d| d.name).collect();
        for (coalition, _, members) in coalitions() {
            for m in members {
                assert!(names.contains(&m), "{m} of {coalition} is not a database");
            }
        }
    }

    #[test]
    fn every_link_endpoint_exists() {
        let db_names: Vec<&str> = databases().iter().map(|d| d.name).collect();
        let coalition_names: Vec<&str> = coalitions().iter().map(|(n, _, _)| *n).collect();
        for link in service_links() {
            for end in [&link.from, &link.to] {
                match end {
                    LinkEnd::Database(n) => {
                        assert!(db_names.contains(&n.as_str()), "{n} unknown")
                    }
                    LinkEnd::Coalition(n) => {
                        assert!(coalition_names.contains(&n.as_str()), "{n} unknown")
                    }
                }
            }
        }
    }
}
