//! Circuit-breaker integration tests: a client ORB calling a real
//! server ORB through the chaos control plane.
//!
//! The breaker contract under test is the one DESIGN.md §5 promises:
//! three consecutive failures open the breaker, an open breaker rejects
//! without touching the wire, and after the cooldown a single half-open
//! probe either closes it (endpoint healed) or snaps it back open
//! (endpoint still dark).

use std::sync::Arc;
use std::thread;
use std::time::Duration;
use webfindit_orb::servant::{InvokeResult, Servant, ServantError};
use webfindit_orb::{BreakerState, CallOptions, Orb, OrbConfig, OrbDomain, OrbError, RetryPolicy};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::transport::Fault;
use webfindit_wire::{Ior, Value};

struct EchoServant;

impl Servant for EchoServant {
    fn interface_id(&self) -> &str {
        "IDL:test/Echo:1.0"
    }
    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        match operation {
            "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
            other => Err(ServantError::UnknownOperation(other.into())),
        }
    }
}

/// A server ORB exporting an echo servant, and a client in the same
/// domain. Returns (domain, server, client, echo IOR).
fn mesh() -> (Arc<OrbDomain>, Arc<Orb>, Arc<Orb>, Ior) {
    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("S", "server.example", 1, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .expect("server orb starts");
    let client = Orb::start(
        OrbConfig::new("C", "client.example", 2, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .expect("client orb starts");
    let ior = server.activate("echo", Arc::new(EchoServant));
    (domain, server, client, ior)
}

/// One attempt, no transparent retries, so each invoke maps to exactly
/// one breaker admission.
fn one_shot() -> CallOptions {
    CallOptions {
        deadline: Some(Duration::from_millis(100)),
        retry: RetryPolicy::never(),
    }
}

#[test]
fn breaker_opens_after_three_failures_and_rejects_without_dialing() {
    let (domain, server, client, ior) = mesh();
    let (host, port) = server.advertised_endpoint();
    let chaos = domain.chaos_registry();
    chaos.refuse(&host, port);

    for i in 0..3 {
        let err = client
            .invoke_with(&ior, "echo", &[Value::string("x")], &one_shot())
            .expect_err("refusing endpoint must fail");
        assert!(
            !matches!(err, OrbError::CircuitOpen { .. }),
            "attempt {i} should reach the dial path, got {err}"
        );
    }
    assert_eq!(client.breaker_state(&host, port), Some(BreakerState::Open));

    // The fourth call is shed by the breaker itself.
    match client.invoke_with(&ior, "echo", &[Value::string("x")], &one_shot()) {
        Err(OrbError::CircuitOpen { host: h, port: p }) => {
            assert_eq!((h.as_str(), p), (host.as_str(), port));
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }

    let snap = client.metrics().snapshot();
    assert_eq!(snap.breaker_opened, 1);
    assert_eq!(snap.breaker_rejections, 1);

    server.shutdown();
    client.shutdown();
}

#[test]
fn half_open_probe_closes_breaker_once_endpoint_heals() {
    let (domain, server, client, ior) = mesh();
    let (host, port) = server.advertised_endpoint();
    let chaos = domain.chaos_registry();

    chaos.refuse(&host, port);
    for _ in 0..3 {
        let _ = client.invoke_with(&ior, "echo", &[Value::Null], &one_shot());
    }
    assert_eq!(client.breaker_state(&host, port), Some(BreakerState::Open));

    // Heal the endpoint and wait out the cooldown (default 50 ms).
    chaos.accept(&host, port);
    thread::sleep(Duration::from_millis(60));

    let got = client
        .invoke_with(&ior, "echo", &[Value::string("recovered")], &one_shot())
        .expect("half-open probe succeeds against the healed endpoint");
    assert_eq!(got.as_str(), Some("recovered"));
    assert_eq!(
        client.breaker_state(&host, port),
        Some(BreakerState::Closed)
    );

    let snap = client.metrics().snapshot();
    assert!(snap.breaker_probes >= 1, "{snap:?}");
    assert!(snap.breaker_closed >= 1, "{snap:?}");

    // Steady state: traffic flows normally again.
    let again = client
        .invoke(&ior, "echo", &[Value::string("steady")])
        .unwrap();
    assert_eq!(again.as_str(), Some("steady"));

    server.shutdown();
    client.shutdown();
}

#[test]
fn failed_probe_snaps_the_breaker_back_open() {
    let (domain, server, client, ior) = mesh();
    let (host, port) = server.advertised_endpoint();
    let chaos = domain.chaos_registry();

    chaos.refuse(&host, port);
    for _ in 0..3 {
        let _ = client.invoke_with(&ior, "echo", &[Value::Null], &one_shot());
    }
    assert_eq!(client.breaker_state(&host, port), Some(BreakerState::Open));

    // Cooldown elapses but the endpoint is still refusing: the one
    // half-open probe fails and the breaker reopens immediately.
    thread::sleep(Duration::from_millis(60));
    let err = client
        .invoke_with(&ior, "echo", &[Value::Null], &one_shot())
        .expect_err("probe against a still-dark endpoint fails");
    assert!(
        !matches!(err, OrbError::CircuitOpen { .. }),
        "the probe itself must reach the dial path, got {err}"
    );
    assert_eq!(client.breaker_state(&host, port), Some(BreakerState::Open));

    let snap = client.metrics().snapshot();
    assert!(snap.breaker_probes >= 1, "{snap:?}");
    assert_eq!(snap.breaker_closed, 0, "{snap:?}");

    server.shutdown();
    client.shutdown();
}

#[test]
fn registry_faults_reach_live_connections_and_trip_the_breaker() {
    let (domain, server, client, ior) = mesh();
    let (host, port) = server.advertised_endpoint();
    let chaos = domain.chaos_registry();

    // Prove the connection is up first.
    let ok = client
        .invoke(&ior, "echo", &[Value::string("pre")])
        .unwrap();
    assert_eq!(ok.as_str(), Some("pre"));

    // Drop every frame on the already-established connection: calls now
    // time out at their deadline instead of being answered.
    chaos.set_fault(&host, port, Fault::DropFrames);
    let short = CallOptions {
        deadline: Some(Duration::from_millis(20)),
        retry: RetryPolicy::never(),
    };
    for _ in 0..3 {
        let err = client
            .invoke_with(&ior, "echo", &[Value::Null], &short)
            .expect_err("dropped frames must miss the deadline");
        assert!(
            matches!(err, OrbError::DeadlineExpired { .. }),
            "expected deadline expiry, got {err}"
        );
    }
    assert_eq!(client.breaker_state(&host, port), Some(BreakerState::Open));

    // Clearing the fault and waiting out the cooldown restores service.
    chaos.clear_fault(&host, port);
    thread::sleep(Duration::from_millis(60));
    let back = client
        .invoke_with(&ior, "echo", &[Value::string("post")], &one_shot())
        .expect("healed endpoint serves the probe");
    assert_eq!(back.as_str(), Some("post"));
    assert_eq!(
        client.breaker_state(&host, port),
        Some(BreakerState::Closed)
    );

    server.shutdown();
    client.shutdown();
}
