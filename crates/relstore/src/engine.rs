//! The database engine: catalog, statement execution, transactions.
//!
//! A [`Database`] is one simulated vendor instance (the paper's "Oracle
//! database at RBH", "mSQL database at CentreLink", …). It owns its
//! tables, enforces its [`Dialect`]'s feature set, and executes parsed
//! statements with:
//!
//! * **statement atomicity** — a multi-row `INSERT` that fails half-way
//!   undoes the rows it already wrote;
//! * **explicit transactions** — `BEGIN`/`COMMIT`/`ROLLBACK` backed by an
//!   undo log of inverse slot operations.

use crate::dialect::Dialect;
use crate::exec::{execute_select_with_metrics, ExecMetrics, ResultSet};
use crate::expr::{eval, EvalContext, Expr};
use crate::sql::ast::Statement;
use crate::sql::parse_statement;
use crate::storage::Table;
use crate::types::{Datum, Row};
use crate::{RelError, RelResult};
use std::collections::HashMap;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A query produced rows.
    Rows(ResultSet),
    /// DML affected this many rows.
    Count(usize),
    /// DDL or transaction control completed.
    Done,
}

impl ExecOutcome {
    /// The result set, if this outcome carries one.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            ExecOutcome::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// The affected-row count, if this outcome carries one.
    pub fn count(&self) -> Option<usize> {
        match self {
            ExecOutcome::Count(n) => Some(*n),
            _ => None,
        }
    }
}

/// Inverse operations recorded while a transaction is open.
#[derive(Debug)]
enum UndoOp {
    /// Undo an insert: delete the slot.
    Insert { table: String, slot: usize },
    /// Undo a delete: restore the row into its slot.
    Delete {
        table: String,
        slot: usize,
        row: Row,
    },
    /// Undo an update: put the old row back.
    Update {
        table: String,
        slot: usize,
        old: Row,
    },
    /// Undo CREATE TABLE: drop it.
    CreateTable { name: String },
    /// Undo DROP TABLE: put the whole table back.
    DropTable { name: String, table: Box<Table> },
}

/// Cumulative execution statistics (read by the experiments).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Statements successfully executed.
    pub statements: u64,
    /// Rows returned by queries.
    pub rows_returned: u64,
    /// Rows written (inserted + updated + deleted).
    pub rows_written: u64,
    /// Rows read from table heaps by query pipelines.
    pub rows_scanned: u64,
    /// Index entries hit by point lookups, range scans, and probes.
    pub index_hits: u64,
    /// Rows materialized by blocking operators (sort, aggregation).
    pub rows_spilled: u64,
}

/// One simulated relational database instance.
#[derive(Debug)]
pub struct Database {
    name: String,
    dialect: Dialect,
    tables: HashMap<String, Table>,
    txn: Option<Vec<UndoOp>>,
    stats: DbStats,
    last_exec: Option<ExecMetrics>,
}

/// Evaluation context rejecting all column references (INSERT values).
struct ConstOnly;

impl EvalContext for ConstOnly {
    fn resolve_column(&self, _t: Option<&str>, name: &str) -> RelResult<Datum> {
        Err(RelError::Unsupported(format!(
            "column reference {name} in a constant context"
        )))
    }
}

impl Database {
    /// Create an empty database named `name` speaking `dialect`.
    pub fn new(name: impl Into<String>, dialect: Dialect) -> Database {
        Database {
            name: name.into(),
            dialect,
            tables: HashMap::new(),
            txn: None,
            stats: DbStats::default(),
            last_exec: None,
        }
    }

    /// The instance name (e.g. `"Royal Brisbane Hospital"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The vendor dialect this instance enforces.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Execution metrics from the most recent SELECT, if any.
    pub fn last_exec_metrics(&self) -> Option<&ExecMetrics> {
        self.last_exec.as_ref()
    }

    /// Borrow the whole catalog (read-only), e.g. for planning or for
    /// running the naive reference executor against live tables.
    pub fn tables(&self) -> &HashMap<String, Table> {
        &self.tables
    }

    /// Run a SELECT through the retained naive reference executor.
    ///
    /// Differential tests and the E10 benchmark use this as the
    /// semantic baseline for the planned pipeline.
    pub fn query_naive(&self, sql: &str) -> RelResult<ResultSet> {
        match parse_statement(sql)? {
            Statement::Select(s) => crate::exec::execute_select_naive(&s, &self.tables),
            other => Err(RelError::Unsupported(format!(
                "query_naive only runs SELECT, got {other:?}"
            ))),
        }
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Borrow a table's metadata.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Bulk-create a table and load rows into it, bypassing SQL parsing.
    ///
    /// Used by gateway compensation (staging remote tables locally) and
    /// by the healthcare data generators. Rows are validated against the
    /// schema exactly as `INSERT` would.
    pub fn import_table(
        &mut self,
        schema: crate::schema::TableSchema,
        rows: Vec<Row>,
    ) -> RelResult<usize> {
        if self.tables.contains_key(&schema.name) {
            return Err(RelError::TableExists(schema.name));
        }
        let mut table = Table::new(schema.clone());
        let mut n = 0;
        for row in rows {
            table.insert(row)?;
            n += 1;
        }
        self.tables.insert(schema.name, table);
        self.stats.rows_written += n as u64;
        Ok(n)
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> RelResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute an already-parsed statement.
    pub fn execute_stmt(&mut self, stmt: &Statement) -> RelResult<ExecOutcome> {
        self.dialect.check(stmt)?;
        let outcome = match stmt {
            Statement::Select(s) => {
                let (rs, m) = execute_select_with_metrics(s, &self.tables)?;
                self.stats.rows_returned += rs.rows.len() as u64;
                self.stats.rows_scanned += m.rows_scanned;
                self.stats.index_hits += m.index_hits;
                self.stats.rows_spilled += m.rows_spilled;
                self.last_exec = Some(m);
                ExecOutcome::Rows(rs)
            }
            Statement::Explain(s) => {
                let plan = crate::exec::explain_select(s, &self.tables)?;
                ExecOutcome::Rows(crate::exec::ResultSet {
                    columns: vec!["plan".to_string()],
                    rows: plan
                        .into_iter()
                        .map(|line| vec![Datum::Text(line)])
                        .collect(),
                })
            }
            Statement::CreateTable(schema) => {
                if self.tables.contains_key(&schema.name) {
                    return Err(RelError::TableExists(schema.name.clone()));
                }
                self.tables
                    .insert(schema.name.clone(), Table::new(schema.clone()));
                if let Some(log) = &mut self.txn {
                    log.push(UndoOp::CreateTable {
                        name: schema.name.clone(),
                    });
                }
                ExecOutcome::Done
            }
            Statement::DropTable { name, if_exists } => {
                let lower = name.to_ascii_lowercase();
                match self.tables.remove(&lower) {
                    Some(t) => {
                        if let Some(log) = &mut self.txn {
                            log.push(UndoOp::DropTable {
                                name: lower,
                                table: Box::new(t),
                            });
                        }
                        ExecOutcome::Done
                    }
                    None if *if_exists => ExecOutcome::Done,
                    None => return Err(RelError::NoSuchTable(lower)),
                }
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                let lower = table.to_ascii_lowercase();
                let t = self
                    .tables
                    .get_mut(&lower)
                    .ok_or(RelError::NoSuchTable(lower))?;
                let (ci, _) = t.schema.column(column)?;
                t.create_index(name, ci)?;
                ExecOutcome::Done
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(table, columns.as_deref(), rows)?,
            Statement::Update {
                table,
                assignments,
                filter,
            } => self.run_update(table, assignments, filter.as_ref())?,
            Statement::Delete { table, filter } => self.run_delete(table, filter.as_ref())?,
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(RelError::TransactionState(
                        "transaction already open".into(),
                    ));
                }
                self.txn = Some(Vec::new());
                ExecOutcome::Done
            }
            Statement::Commit => {
                if self.txn.take().is_none() {
                    return Err(RelError::TransactionState("no open transaction".into()));
                }
                ExecOutcome::Done
            }
            Statement::Rollback => {
                let log = self
                    .txn
                    .take()
                    .ok_or(RelError::TransactionState("no open transaction".into()))?;
                self.apply_undo(log);
                ExecOutcome::Done
            }
        };
        self.stats.statements += 1;
        Ok(outcome)
    }

    fn apply_undo(&mut self, log: Vec<UndoOp>) {
        for op in log.into_iter().rev() {
            match op {
                UndoOp::Insert { table, slot } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.delete_slot(slot);
                    }
                }
                UndoOp::Delete { table, slot, row } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.restore_slot(slot, row);
                    }
                }
                UndoOp::Update { table, slot, old } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        let _ = t.update_slot(slot, old);
                    }
                }
                UndoOp::CreateTable { name } => {
                    self.tables.remove(&name);
                }
                UndoOp::DropTable { name, table } => {
                    self.tables.insert(name, *table);
                }
            }
        }
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        value_rows: &[Vec<Expr>],
    ) -> RelResult<ExecOutcome> {
        let lower = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&lower)
            .ok_or(RelError::NoSuchTable(lower.clone()))?;

        // Map written columns to schema positions.
        let positions: Vec<usize> = match columns {
            Some(cols) => {
                let mut ps = Vec::with_capacity(cols.len());
                for c in cols {
                    ps.push(t.schema.column(c)?.0);
                }
                ps
            }
            None => (0..t.schema.arity()).collect(),
        };

        let mut inserted: Vec<usize> = Vec::new();
        let mut insert_all = || -> RelResult<()> {
            for exprs in value_rows {
                if exprs.len() != positions.len() {
                    return Err(RelError::ArityMismatch {
                        expected: positions.len(),
                        found: exprs.len(),
                    });
                }
                let mut row = vec![Datum::Null; t.schema.arity()];
                for (i, e) in exprs.iter().enumerate() {
                    row[positions[i]] = eval(e, &ConstOnly)?;
                }
                inserted.push(t.insert(row)?);
            }
            Ok(())
        };
        match insert_all() {
            Ok(()) => {
                let n = inserted.len();
                if let Some(log) = &mut self.txn {
                    for slot in inserted {
                        log.push(UndoOp::Insert {
                            table: lower.clone(),
                            slot,
                        });
                    }
                }
                self.stats.rows_written += n as u64;
                Ok(ExecOutcome::Count(n))
            }
            Err(e) => {
                // Statement atomicity: roll back this statement's rows.
                for slot in inserted {
                    t.delete_slot(slot);
                }
                Err(e)
            }
        }
    }

    fn run_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> RelResult<ExecOutcome> {
        let lower = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&lower)
            .ok_or(RelError::NoSuchTable(lower.clone()))?;
        let columns = t.schema.column_names();

        // Resolve assignment targets first.
        let mut targets = Vec::with_capacity(assignments.len());
        for (col, e) in assignments {
            targets.push((t.schema.column(col)?.0, e));
        }

        // Phase 1: decide which slots match and compute the new rows.
        let mut changes: Vec<(usize, Row)> = Vec::new();
        for (slot, row) in t.scan() {
            let ctx = crate::expr::SingleRow {
                columns: &columns,
                row,
            };
            let keep = match filter {
                None => true,
                Some(f) => matches!(eval(f, &ctx)?, Datum::Bool(true)),
            };
            if !keep {
                continue;
            }
            let mut new_row = row.clone();
            for (pos, e) in &targets {
                new_row[*pos] = eval(e, &ctx)?;
            }
            changes.push((slot, new_row));
        }

        // Phase 2: apply, undoing on mid-statement failure.
        let mut applied: Vec<(usize, Row)> = Vec::new();
        for (slot, new_row) in changes {
            match t.update_slot(slot, new_row) {
                Ok(old) => applied.push((slot, old)),
                Err(e) => {
                    for (s, old) in applied.into_iter().rev() {
                        let _ = t.update_slot(s, old);
                    }
                    return Err(e);
                }
            }
        }
        let n = applied.len();
        if let Some(log) = &mut self.txn {
            for (slot, old) in applied {
                log.push(UndoOp::Update {
                    table: lower.clone(),
                    slot,
                    old,
                });
            }
        }
        self.stats.rows_written += n as u64;
        Ok(ExecOutcome::Count(n))
    }

    fn run_delete(&mut self, table: &str, filter: Option<&Expr>) -> RelResult<ExecOutcome> {
        let lower = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&lower)
            .ok_or(RelError::NoSuchTable(lower.clone()))?;
        let columns = t.schema.column_names();

        let mut victims: Vec<usize> = Vec::new();
        for (slot, row) in t.scan() {
            let ctx = crate::expr::SingleRow {
                columns: &columns,
                row,
            };
            let doomed = match filter {
                None => true,
                Some(f) => matches!(eval(f, &ctx)?, Datum::Bool(true)),
            };
            if doomed {
                victims.push(slot);
            }
        }
        let mut n = 0;
        for slot in victims {
            if let Some(row) = t.delete_slot(slot) {
                n += 1;
                if let Some(log) = &mut self.txn {
                    log.push(UndoOp::Delete {
                        table: lower.clone(),
                        slot,
                        row,
                    });
                }
            }
        }
        self.stats.rows_written += n as u64;
        Ok(ExecOutcome::Count(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital_db() -> Database {
        let mut db = Database::new("RBH", Dialect::Oracle);
        db.execute(
            "CREATE TABLE medical_students (student_id INT PRIMARY KEY, \
             name TEXT NOT NULL, course TEXT, year INT)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO medical_students VALUES \
             (1, 'J. Chen', 'MBBS', 3), (2, 'A. Patel', 'MBBS', 5), (3, 'T. Nguyen', 'Nursing', 2)",
        )
        .unwrap();
        db
    }

    #[test]
    fn the_papers_section5_query() {
        let mut db = hospital_db();
        let out = db.execute("select * from medical_students").unwrap();
        let rs = out.rows().unwrap();
        assert_eq!(rs.columns, vec!["student_id", "name", "course", "year"]);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn insert_returns_count_and_updates_stats() {
        let mut db = hospital_db();
        let out = db
            .execute("INSERT INTO medical_students VALUES (4, 'New', 'MBBS', 1)")
            .unwrap();
        assert_eq!(out.count(), Some(1));
        assert_eq!(db.stats().rows_written, 4); // 3 seed + 1
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let mut db = hospital_db();
        // Second row collides with pk 1 → whole statement rolls back.
        let err = db
            .execute("INSERT INTO medical_students VALUES (9, 'X', 'c', 1), (1, 'Dup', 'c', 1)")
            .unwrap_err();
        assert!(matches!(err, RelError::DuplicateKey(_)));
        let rs = db.execute("SELECT COUNT(*) FROM medical_students").unwrap();
        assert_eq!(rs.rows().unwrap().rows[0][0], Datum::Int(3));
    }

    #[test]
    fn update_with_self_reference() {
        let mut db = hospital_db();
        let out = db
            .execute("UPDATE medical_students SET year = year + 1 WHERE course = 'MBBS'")
            .unwrap();
        assert_eq!(out.count(), Some(2));
        let rs = db
            .execute("SELECT year FROM medical_students WHERE student_id = 1")
            .unwrap();
        assert_eq!(rs.rows().unwrap().rows[0][0], Datum::Int(4));
    }

    #[test]
    fn delete_with_filter() {
        let mut db = hospital_db();
        let out = db
            .execute("DELETE FROM medical_students WHERE year < 3")
            .unwrap();
        assert_eq!(out.count(), Some(1));
        assert_eq!(db.table("medical_students").unwrap().len(), 2);
    }

    #[test]
    fn transaction_rollback_restores_everything() {
        let mut db = hospital_db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO medical_students VALUES (10, 'Tmp', 'c', 1)")
            .unwrap();
        db.execute("UPDATE medical_students SET year = 99").unwrap();
        db.execute("DELETE FROM medical_students WHERE student_id = 2")
            .unwrap();
        db.execute("CREATE TABLE scratch (x INT)").unwrap();
        db.execute("ROLLBACK").unwrap();

        assert!(db.table("scratch").is_none());
        let rs = db
            .execute("SELECT student_id, year FROM medical_students ORDER BY student_id")
            .unwrap();
        let rows = &rs.rows().unwrap().rows;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Datum::Int(1), Datum::Int(3)]);
        assert_eq!(rows[1], vec![Datum::Int(2), Datum::Int(5)]);
    }

    #[test]
    fn transaction_commit_keeps_changes() {
        let mut db = hospital_db();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM medical_students").unwrap();
        db.execute("COMMIT").unwrap();
        assert_eq!(db.table("medical_students").unwrap().len(), 0);
        assert!(!db.in_transaction());
    }

    #[test]
    fn rollback_of_drop_table_restores_data() {
        let mut db = hospital_db();
        db.execute("BEGIN").unwrap();
        db.execute("DROP TABLE medical_students").unwrap();
        assert!(db.table("medical_students").is_none());
        db.execute("ROLLBACK").unwrap();
        assert_eq!(db.table("medical_students").unwrap().len(), 3);
    }

    #[test]
    fn transaction_state_errors() {
        let mut db = hospital_db();
        assert!(matches!(
            db.execute("COMMIT"),
            Err(RelError::TransactionState(_))
        ));
        db.execute("BEGIN").unwrap();
        assert!(matches!(
            db.execute("BEGIN"),
            Err(RelError::TransactionState(_))
        ));
    }

    #[test]
    fn dialect_gating_applies() {
        let mut db = Database::new("CentreLink", Dialect::MSql);
        db.execute("CREATE TABLE t (x INT)").unwrap();
        assert!(matches!(
            db.execute("SELECT COUNT(*) FROM t"),
            Err(RelError::Unsupported(_))
        ));
        // Canonical engine runs it fine.
        let mut db2 = Database::new("x", Dialect::Canonical);
        db2.execute("CREATE TABLE t (x INT)").unwrap();
        db2.execute("SELECT COUNT(*) FROM t").unwrap();
    }

    #[test]
    fn create_index_and_use() {
        let mut db = hospital_db();
        db.execute("CREATE INDEX ms_course ON medical_students (course)")
            .unwrap();
        assert!(matches!(
            db.execute("CREATE INDEX ms_course ON medical_students (course)"),
            Err(RelError::IndexExists(_))
        ));
        let rs = db
            .execute("SELECT name FROM medical_students WHERE course = 'MBBS' ORDER BY name")
            .unwrap();
        assert_eq!(rs.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn insert_with_column_subset_fills_nulls() {
        let mut db = Database::new("x", Dialect::Canonical);
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        let rs = db.execute("SELECT * FROM t").unwrap();
        assert_eq!(
            rs.rows().unwrap().rows[0],
            vec![Datum::Int(1), Datum::Null, Datum::Null]
        );
    }

    #[test]
    fn insert_values_must_be_constant() {
        let mut db = Database::new("x", Dialect::Canonical);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (b)").is_err());
    }
}
