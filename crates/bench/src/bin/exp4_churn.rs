//! E4 — the cost of coalition churn (§2.1's dynamics) as federation
//! size grows: joining a coalition, leaving it, forming a new one, and
//! dissolving it, measured in ORB invocations; compared with what the
//! same changes cost under a centralized index (every change must also
//! update the center).

use webfindit::baselines::CentralIndex;
use webfindit::synth::{build, SynthConfig};
use webfindit_bench::header;

fn main() {
    header(
        "Experiment E4",
        "Coalition churn cost (ORB invocations per membership change)",
    );
    println!(
        "\n{:>5} | {:>10} {:>10} {:>10} {:>10} | {:>16}",
        "N", "form(4)", "join", "leave", "dissolve", "central rebuild"
    );
    println!("{}", "-".repeat(80));

    for &n in &[8usize, 16, 32, 64, 128] {
        let synth = build(&SynthConfig {
            databases: n,
            coalition_size: 4,
            orbs: 4,
            extra_links: 0,
            ring_links: true,
            seed: 2024,
        })
        .expect("synthetic federation");
        let fed = &synth.fed;

        // Form a brand-new coalition of 4 existing sites.
        let members: Vec<&str> = synth.sites.iter().take(4).map(String::as_str).collect();
        let form = fed
            .form_coalition("Churn", None, "churn-topic information", &members)
            .expect("form");

        // A fifth site joins.
        let join = fed
            .join_coalition(&synth.sites[4], "Churn", "churn-topic information")
            .expect("join");

        // One member leaves. (Leaving requires notifying every
        // co-database that might hold the advertisement.)
        let leave = fed
            .leave_coalition(&synth.sites[0], "Churn")
            .expect("leave");

        // Dissolve everywhere.
        let mut dissolve = 0u64;
        for site in fed.site_names() {
            let handle = fed.site(&site).expect("site");
            let removed = handle.codb.write().dissolve_coalition("Churn").is_ok();
            if removed {
                dissolve += 1;
            }
        }

        // What the centralized alternative pays just to exist: a full
        // rebuild after the churn (incremental maintenance would be one
        // call per change *plus* serialization through one site).
        let central = CentralIndex::build(synth.fed.clone()).expect("central");

        println!(
            "{:>5} | {:>10} {:>10} {:>10} {:>10} | {:>16}",
            n, form, join, leave, dissolve, central.registration_calls
        );
        synth.fed.shutdown();
    }

    println!(
        "\nReading: forming a coalition costs O(|C|^2) in its own size and is\n\
         independent of N. Join = member discovery (our joiner asks around,\n\
         O(N); a sponsor introduction makes it O(1)) + propagation O(|C|).\n\
         Leave notifies the co-databases that may hold the advertisement.\n\
         The centralized rebuild scales with the total number of\n\
         advertisements in the federation and funnels through one site."
    );
}
