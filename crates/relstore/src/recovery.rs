//! Recovery manager: checkpoint snapshots, meta slots, and the
//! ARIES-style open-time replay.
//!
//! On-"disk" layout of a durable database (all files live on one
//! [`Vfs`]):
//!
//! ```text
//! meta.0 / meta.1   two alternating superblock slots; the valid slot
//!                   with the highest epoch wins. Points at the active
//!                   snapshot generation and the WAL watermark.
//! snap.0 / snap.1   double-buffered checkpoint snapshots, stored as
//!                   checksummed pages written through the BufferPool.
//!                   A checkpoint always writes the INACTIVE generation
//!                   and then flips meta, so the active snapshot is
//!                   never overwritten in place.
//! wal               the write-ahead log (see [`crate::wal`]).
//! ```
//!
//! [`recover`] repeats history: load the active snapshot (a
//! transaction-consistent image — checkpoints only run at commit
//! boundaries), REDO every WAL record past the watermark in log order,
//! then UNDO the loser transactions (no commit record) in reverse. A
//! torn WAL tail is detected by frame checksum and truncated; a torn
//! last page of a snapshot is detected by page checksum and recovery
//! falls back to the other meta slot rather than panicking.

use crate::buffer::BufferPool;
use crate::file_mgr::{fnv1a64, PageFileMgr, Vfs, PAGE_CAPACITY};
use crate::storage::Table;
use crate::wal::{dec_table_image, enc_table_image, Dec, Enc, LogMgr, TableImage, WalRecord};
use crate::{RelError, RelResult};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The WAL file name on a database Vfs.
pub const WAL_FILE: &str = "wal";

/// Meta slot file name for slot 0/1.
pub fn meta_file(slot: u8) -> String {
    format!("meta.{}", slot & 1)
}

/// Snapshot file name for generation 0/1.
pub fn snap_file(gen: u8) -> String {
    format!("snap.{}", gen & 1)
}

const META_MAGIC: u32 = 0x5746_4d31; // "WFM1"

/// The superblock: which snapshot is live and where WAL replay starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Monotonic write counter; the higher of the two slots is current.
    pub epoch: u64,
    /// Active snapshot generation (0 or 1).
    pub active_gen: u8,
    /// WAL byte offset the active snapshot already reflects.
    pub watermark: u64,
    /// Next transaction id to hand out.
    pub next_tx: u64,
}

impl Meta {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(META_MAGIC);
        e.u64(self.epoch);
        e.u8(self.active_gen);
        e.u64(self.watermark);
        e.u64(self.next_tx);
        let mut framed = Enc::new();
        framed.u32(e.0.len() as u32);
        framed.u64(fnv1a64(&e.0));
        framed.0.extend_from_slice(&e.0);
        framed.0
    }

    fn decode(buf: &[u8]) -> Option<Meta> {
        let mut d = Dec::new(buf);
        let len = d.u32().ok()? as usize;
        let sum = d.u64().ok()?;
        if buf.len() < 12 + len {
            return None;
        }
        let payload = &buf[12..12 + len];
        if fnv1a64(payload) != sum {
            return None;
        }
        let mut p = Dec::new(payload);
        if p.u32().ok()? != META_MAGIC {
            return None;
        }
        Some(Meta {
            epoch: p.u64().ok()?,
            active_gen: p.u8().ok()? & 1,
            watermark: p.u64().ok()?,
            next_tx: p.u64().ok()?,
        })
    }
}

/// Write `meta` into slot `epoch % 2` and sync it. Alternating slots
/// mean a crash mid-write can only corrupt the slot being replaced,
/// never the currently valid one.
pub fn write_meta(vfs: &Arc<dyn Vfs>, meta: &Meta) -> RelResult<()> {
    let file = meta_file((meta.epoch % 2) as u8);
    let bytes = meta.encode();
    vfs.truncate(&file, 0)?;
    vfs.write_at(&file, 0, &bytes)?;
    vfs.sync(&file)?;
    Ok(())
}

fn read_meta_slot(vfs: &Arc<dyn Vfs>, slot: u8) -> Option<Meta> {
    let file = meta_file(slot);
    let len = vfs.len(&file).ok()?;
    if len == 0 || len > 4096 {
        return None;
    }
    let mut buf = vec![0u8; len as usize];
    let n = vfs.read_at(&file, 0, &mut buf).ok()?;
    buf.truncate(n);
    Meta::decode(&buf)
}

/// Both decodable meta slots, best (highest epoch) first.
pub fn read_metas(vfs: &Arc<dyn Vfs>) -> Vec<Meta> {
    let mut metas: Vec<Meta> = [0u8, 1]
        .iter()
        .filter_map(|&s| read_meta_slot(vfs, s))
        .collect();
    metas.sort_by_key(|m| std::cmp::Reverse(m.epoch));
    metas
}

// ---- snapshots ----------------------------------------------------------

/// Serialize the full table catalog + heaps into one byte stream:
/// `[u64 body length][u32 table count][table images...]`.
pub fn encode_snapshot(tables: &HashMap<String, Table>) -> Vec<u8> {
    let mut body = Enc::new();
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    body.u32(names.len() as u32);
    for name in names {
        body.str(name);
        enc_table_image(&mut body, &TableImage::of(&tables[name]));
    }
    let mut out = Enc::new();
    out.u64(body.0.len() as u64);
    out.0.extend_from_slice(&body.0);
    out.0
}

fn decode_snapshot(bytes: &[u8]) -> RelResult<HashMap<String, Table>> {
    let mut d = Dec::new(bytes);
    let n = d.u32()? as usize;
    if n > 1 << 16 {
        return Err(RelError::Corrupt(format!("absurd table count {n}")));
    }
    let mut tables = HashMap::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let img = dec_table_image(&mut d)?;
        tables.insert(name, img.restore());
    }
    Ok(tables)
}

/// Write `stream` as checksummed pages through `pool`, invoking
/// `between_pages` after each page write-back (the mid-page-flush
/// crash point). The pool's file is cleared first so stale pages from
/// a previous, larger snapshot cannot trail the new one.
pub fn write_snapshot(
    pool: &mut BufferPool,
    stream: &[u8],
    mut between_pages: impl FnMut() -> RelResult<()>,
) -> RelResult<()> {
    pool.mgr().clear()?;
    pool.invalidate();
    let chunks: Vec<&[u8]> = if stream.is_empty() {
        vec![&[]]
    } else {
        stream.chunks(PAGE_CAPACITY).collect()
    };
    for (no, chunk) in chunks.iter().enumerate() {
        let frame = pool.pin_new(no as u64, chunk.to_vec())?;
        pool.flush_page(no as u64)?;
        pool.unpin(frame);
        between_pages()?;
    }
    pool.mgr().sync()
}

/// Load a snapshot previously written by [`write_snapshot`], pinning
/// pages through `pool`. Errors with [`RelError::Corrupt`] on a
/// missing or checksum-failing page.
pub fn load_snapshot(pool: &mut BufferPool) -> RelResult<HashMap<String, Table>> {
    let first = pool.pin(0)?;
    let mut bytes = pool.payload(first).to_vec();
    pool.unpin(first);
    if bytes.len() < 8 {
        return Err(RelError::Corrupt("snapshot header short".into()));
    }
    let body_len = u64::from_le_bytes(bytes[0..8].try_into().expect("8")) as usize;
    let total = body_len + 8;
    let mut no = 1u64;
    while bytes.len() < total {
        let frame = pool.pin(no)?;
        bytes.extend_from_slice(pool.payload(frame));
        pool.unpin(frame);
        no += 1;
    }
    if bytes.len() < total {
        return Err(RelError::Corrupt("snapshot body short".into()));
    }
    decode_snapshot(&bytes[8..total])
}

// ---- recovery -----------------------------------------------------------

/// What one [`recover`] pass did (folded into storage stats).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Op records re-applied during REDO.
    pub redo: u64,
    /// Op records reversed during UNDO (loser transactions).
    pub undo: u64,
    /// 1 when a torn WAL tail was truncated.
    pub torn_tail_truncations: u64,
    /// 1 when the active snapshot was unreadable and recovery fell
    /// back to the older meta slot (or an empty state).
    pub snapshot_fallbacks: u64,
}

/// The state [`recover`] hands back to the engine.
#[derive(Debug)]
pub struct Recovered {
    /// The reconstructed table catalog.
    pub tables: HashMap<String, Table>,
    /// First unused transaction id.
    pub next_tx: u64,
    /// WAL tail after torn-tail truncation (the next LSN).
    pub wal_tail: u64,
    /// Epoch of the meta slot recovery trusted (0 when none).
    pub epoch: u64,
    /// Active snapshot generation recovery trusted.
    pub active_gen: u8,
    /// Replay counters.
    pub stats: RecoveryStats,
}

/// REDO one record (repeat history). Defensive against impossible
/// states: a redo onto unexpected state applies the after-image rather
/// than panicking.
fn redo(tables: &mut HashMap<String, Table>, rec: &WalRecord) -> bool {
    match rec {
        WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Abort { .. } => false,
        WalRecord::Insert {
            table, slot, row, ..
        } => {
            if let Some(t) = tables.get_mut(table) {
                let slot = *slot as usize;
                if t.row(slot).is_some() {
                    t.delete_slot(slot);
                }
                t.force_restore(slot, row.clone());
            }
            true
        }
        WalRecord::Delete { table, slot, .. } => {
            if let Some(t) = tables.get_mut(table) {
                t.delete_slot(*slot as usize);
            }
            true
        }
        WalRecord::Update {
            table, slot, new, ..
        } => {
            if let Some(t) = tables.get_mut(table) {
                let slot = *slot as usize;
                t.delete_slot(slot);
                t.force_restore(slot, new.clone());
            }
            true
        }
        WalRecord::CreateTable { schema, .. } => {
            tables
                .entry(schema.name.clone())
                .or_insert_with(|| Table::new(schema.clone()));
            true
        }
        WalRecord::DropTable { table, .. } => {
            tables.remove(&table.schema.name);
            true
        }
        WalRecord::CreateIndex {
            table,
            name,
            column,
            ..
        } => {
            if let Some(t) = tables.get_mut(table) {
                let _ = t.create_index(name, *column as usize);
            }
            true
        }
    }
}

/// UNDO one record (loser transactions, reverse log order).
fn undo(tables: &mut HashMap<String, Table>, rec: &WalRecord) -> bool {
    match rec {
        WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Abort { .. } => false,
        WalRecord::Insert { table, slot, .. } => {
            if let Some(t) = tables.get_mut(table) {
                t.delete_slot(*slot as usize);
            }
            true
        }
        WalRecord::Delete {
            table, slot, row, ..
        } => {
            if let Some(t) = tables.get_mut(table) {
                t.force_restore(*slot as usize, row.clone());
            }
            true
        }
        WalRecord::Update {
            table, slot, old, ..
        } => {
            if let Some(t) = tables.get_mut(table) {
                let slot = *slot as usize;
                t.delete_slot(slot);
                t.force_restore(slot, old.clone());
            }
            true
        }
        WalRecord::CreateTable { schema, .. } => {
            tables.remove(&schema.name);
            true
        }
        WalRecord::DropTable { table, .. } => {
            tables.insert(table.schema.name.clone(), table.restore());
            true
        }
        WalRecord::CreateIndex { table, name, .. } => {
            if let Some(t) = tables.get_mut(table) {
                t.drop_index(name);
            }
            true
        }
    }
}

/// Recover the database on `vfs` to its last committed state.
///
/// `pool_capacity` sizes the buffer pool used to read snapshot pages.
/// The WAL is truncated past its last valid record as a side effect
/// (so a reopened log manager can append immediately).
pub fn recover(vfs: &Arc<dyn Vfs>, pool_capacity: usize) -> RelResult<Recovered> {
    let mut stats = RecoveryStats::default();

    // 1. Superblock: best meta slot first; each candidate names a
    // snapshot generation and watermark. The empty-state candidate
    // (replay the whole log) is the final fallback.
    let mut candidates: Vec<(Option<Meta>, u8, u64)> = read_metas(vfs)
        .into_iter()
        .map(|m| (Some(m), m.active_gen, m.watermark))
        .collect();
    candidates.push((None, 0, 0));

    let mut chosen: Option<(Option<Meta>, HashMap<String, Table>, u64)> = None;
    for (meta, gen, watermark) in candidates.iter() {
        let tables = if meta.is_some() {
            let mgr = PageFileMgr::new(Arc::clone(vfs), snap_file(*gen));
            let mut pool = BufferPool::new(mgr, pool_capacity);
            match load_snapshot(&mut pool) {
                Ok(t) => t,
                Err(_) => {
                    stats.snapshot_fallbacks += 1;
                    continue;
                }
            }
        } else {
            HashMap::new()
        };
        chosen = Some((*meta, tables, *watermark));
        break;
    }
    let (meta, mut tables, watermark) = chosen.expect("empty-state candidate always loads");

    // 2. WAL scan from the watermark; truncate a torn tail.
    let wal_len = vfs.len(WAL_FILE)?;
    let start = watermark.min(wal_len);
    let scan = LogMgr::scan(vfs, WAL_FILE, start)?;
    if scan.torn_tail {
        stats.torn_tail_truncations += 1;
        let mut log = LogMgr::new(Arc::clone(vfs), WAL_FILE, scan.valid_end);
        log.truncate_to(scan.valid_end)?;
    }

    // 3. Analysis: winners have a commit record.
    let mut committed: HashSet<u64> = HashSet::new();
    let mut max_tx = 0u64;
    for (_, rec) in &scan.records {
        max_tx = max_tx.max(rec.tx());
        if let WalRecord::Commit { tx } = rec {
            committed.insert(*tx);
        }
    }

    // 4. REDO: repeat history in log order.
    for (_, rec) in &scan.records {
        if redo(&mut tables, rec) {
            stats.redo += 1;
        }
    }

    // 5. UNDO losers in reverse log order. The engine buffers a
    // transaction's records and appends them only at COMMIT, so the
    // only losers that can exist are a torn tail batch (crash between
    // the batch append and the commit fsync) — never followed by a
    // committed record, which is what makes this physical slot-level
    // undo sound.
    for (_, rec) in scan.records.iter().rev() {
        if !committed.contains(&rec.tx()) && undo(&mut tables, rec) {
            stats.undo += 1;
        }
    }

    let next_tx = meta.map(|m| m.next_tx).unwrap_or(1).max(max_tx + 1).max(1);
    Ok(Recovered {
        tables,
        next_tx,
        wal_tail: scan.valid_end,
        epoch: meta.map(|m| m.epoch).unwrap_or(0),
        active_gen: meta.map(|m| m.active_gen).unwrap_or(0),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_mgr::SimVfs;
    use crate::schema::{Column, TableSchema};
    use crate::types::{DataType, Datum};

    fn dyn_vfs() -> (Arc<SimVfs>, Arc<dyn Vfs>) {
        let v = SimVfs::new();
        let d = Arc::clone(&v) as Arc<dyn Vfs>;
        (v, d)
    }

    fn beds_table(rows: i64) -> Table {
        let mut t = Table::new(TableSchema::new(
            "beds",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("loc", DataType::Text),
            ],
        ));
        for i in 0..rows {
            t.insert(vec![Datum::Int(i), Datum::Text(format!("w{i}"))])
                .unwrap();
        }
        t
    }

    #[test]
    fn meta_slots_alternate_and_highest_epoch_wins() {
        let (_v, vfs) = dyn_vfs();
        let m1 = Meta {
            epoch: 1,
            active_gen: 0,
            watermark: 0,
            next_tx: 1,
        };
        let m2 = Meta {
            epoch: 2,
            active_gen: 1,
            watermark: 99,
            next_tx: 7,
        };
        write_meta(&vfs, &m1).unwrap();
        write_meta(&vfs, &m2).unwrap();
        let metas = read_metas(&vfs);
        assert_eq!(metas, vec![m2, m1]);
        // Corrupting the newest slot falls back to the older.
        vfs.write_at(&meta_file(0), 15, &[0xba, 0xad]).unwrap();
        vfs.sync(&meta_file(0)).unwrap();
        assert_eq!(read_metas(&vfs), vec![m1]);
    }

    #[test]
    fn snapshot_roundtrips_through_pages() {
        let (_v, vfs) = dyn_vfs();
        let mut tables = HashMap::new();
        tables.insert("beds".to_string(), beds_table(500));
        let stream = encode_snapshot(&tables);
        assert!(stream.len() > PAGE_CAPACITY, "multi-page snapshot");
        let mgr = PageFileMgr::new(Arc::clone(&vfs), snap_file(0));
        let mut pool = BufferPool::new(mgr, 2);
        write_snapshot(&mut pool, &stream, || Ok(())).unwrap();

        let mgr2 = PageFileMgr::new(Arc::clone(&vfs), snap_file(0));
        let mut pool2 = BufferPool::new(mgr2, 2);
        let loaded = load_snapshot(&mut pool2).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["beds"].len(), 500);
        assert_eq!(
            loaded["beds"].row(123).unwrap()[1],
            Datum::Text("w123".into())
        );
    }

    #[test]
    fn recover_from_nothing_is_empty() {
        let (_v, vfs) = dyn_vfs();
        let r = recover(&vfs, 4).unwrap();
        assert!(r.tables.is_empty());
        assert_eq!(r.next_tx, 1);
        assert_eq!(r.wal_tail, 0);
    }

    #[test]
    fn committed_survive_and_losers_roll_back() {
        let (_v, vfs) = dyn_vfs();
        let schema = TableSchema::new(
            "beds",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("loc", DataType::Text),
            ],
        );
        let mut log = LogMgr::new(Arc::clone(&vfs), WAL_FILE, 0);
        // tx1 commits: create table + one insert. tx2 loses: one
        // insert + one update of tx1's row + one delete of its own.
        for rec in [
            WalRecord::Begin { tx: 1 },
            WalRecord::CreateTable {
                tx: 1,
                schema: schema.clone(),
            },
            WalRecord::Insert {
                tx: 1,
                table: "beds".into(),
                slot: 0,
                row: vec![Datum::Int(1), Datum::Text("a".into())],
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::Begin { tx: 2 },
            WalRecord::Insert {
                tx: 2,
                table: "beds".into(),
                slot: 1,
                row: vec![Datum::Int(2), Datum::Text("b".into())],
            },
            WalRecord::Update {
                tx: 2,
                table: "beds".into(),
                slot: 0,
                old: vec![Datum::Int(1), Datum::Text("a".into())],
                new: vec![Datum::Int(1), Datum::Text("hijacked".into())],
            },
        ] {
            log.append(&rec).unwrap();
        }
        log.flush().unwrap();

        let r = recover(&vfs, 4).unwrap();
        let beds = &r.tables["beds"];
        assert_eq!(beds.len(), 1, "loser insert rolled back");
        assert_eq!(
            beds.row(0).unwrap(),
            &vec![Datum::Int(1), Datum::Text("a".into())],
            "loser update reversed to the committed image"
        );
        assert!(r.stats.redo >= 4);
        assert!(r.stats.undo >= 2);
        assert_eq!(r.next_tx, 3);
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        let (_v, vfs) = dyn_vfs();
        let mut log = LogMgr::new(Arc::clone(&vfs), WAL_FILE, 0);
        log.append(&WalRecord::Begin { tx: 1 }).unwrap();
        log.append(&WalRecord::Commit { tx: 1 }).unwrap();
        let good = log.tail();
        log.append(&WalRecord::Begin { tx: 2 }).unwrap();
        log.flush().unwrap();
        let full = vfs.len(WAL_FILE).unwrap();
        vfs.truncate(WAL_FILE, full - 5).unwrap();
        vfs.sync(WAL_FILE).unwrap();

        let r = recover(&vfs, 4).unwrap();
        assert_eq!(r.stats.torn_tail_truncations, 1);
        assert_eq!(r.wal_tail, good);
        assert_eq!(vfs.len(WAL_FILE).unwrap(), good, "tail physically dropped");
        assert_eq!(r.next_tx, 2);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_meta() {
        let (sim, vfs) = dyn_vfs();
        // Gen 0 snapshot with 3 rows (older), gen 1 with 5 (newer).
        for (gen, rows, epoch) in [(0u8, 3i64, 1u64), (1, 5, 2)] {
            let mut tables = HashMap::new();
            tables.insert("beds".to_string(), beds_table(rows));
            let mgr = PageFileMgr::new(Arc::clone(&vfs), snap_file(gen));
            let mut pool = BufferPool::new(mgr, 4);
            write_snapshot(&mut pool, &encode_snapshot(&tables), || Ok(())).unwrap();
            write_meta(
                &vfs,
                &Meta {
                    epoch,
                    active_gen: gen,
                    watermark: 0,
                    next_tx: 10,
                },
            )
            .unwrap();
        }
        // Intact: newest meta wins.
        let r = recover(&vfs, 4).unwrap();
        assert_eq!(r.tables["beds"].len(), 5);
        assert_eq!(r.stats.snapshot_fallbacks, 0);
        // Corrupt gen 1's pages: recovery falls back to gen 0.
        sim.corrupt(&snap_file(1), 30, &[0xde, 0xad]);
        let r = recover(&vfs, 4).unwrap();
        assert_eq!(r.tables["beds"].len(), 3);
        assert_eq!(r.stats.snapshot_fallbacks, 1);
    }
}
