//! xlint — the workspace's concurrency lint.
//!
//! The runtime detector in `webfindit_base::sync::detect` catches lock
//! misuse that actually executes; xlint catches it at the source level,
//! in CI, before an interleaving ever has to go wrong. It is a
//! deliberately small token-level analyser (no syn, no external deps —
//! the build is offline) that scrubs comments and string literals,
//! tracks brace depth, and applies five rules to every `crates/*/src`
//! file:
//!
//! * `guard-across-blocking` — a lock guard bound with `.lock()` /
//!   `.read()` / `.write()` is still live when a blocking token
//!   (`.invoke(`, `.send_frame(`, `TcpStream::connect`, …) appears.
//!   Holding a lock across an IIOP round-trip is the workspace's
//!   cardinal concurrency sin: one slow peer stalls every thread that
//!   wants the lock.
//! * `std-sync-direct` — `std::sync::Mutex` / `std::sync::RwLock` used
//!   instead of the instrumented `webfindit_base::sync` wrappers. Locks
//!   that bypass the wrappers are invisible to the deadlock detector.
//! * `lock-order-cycle` — two lock sites acquired in both orders within
//!   one file (an intra-file acquired-before graph with a cycle check).
//! * `lock-unwrap` — `.lock().unwrap()` and friends in non-test code:
//!   the workspace wrappers are poison-free and return guards directly,
//!   so an `unwrap()`/`expect()` there means a raw std lock leaked in.
//! * `thread-spawn-dispatch` — `std::thread::spawn` /
//!   `Builder::new().spawn` in the ORB's server dispatch path
//!   (`crates/orb/src`, excluding the reactor module). Servant work
//!   belongs on the reactor's bounded worker pool; ad-hoc
//!   thread-per-request spawning is what the reactor replaced, and the
//!   few deliberate spawns (threaded-core fallback, client reader
//!   threads) are allowlisted by hand.
//!
//! Findings print as `file:line: [rule] message`. Deliberate violations
//! are suppressed through the plain-text allowlist `xlint.toml` (one
//! entry per line: `rule path "snippet" justification`); entries that no
//! longer match anything are *stale* and fail the run, so the allowlist
//! can only shrink to fit the code.
//!
//! Exit codes: 0 clean, 1 findings, 2 stale allowlist entries.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Method calls after which the receiver's guard (or a temporary guard)
/// is considered "acquired".
const ACQUIRE_CALLS: [&str; 3] = ["lock", "read", "write"];

/// Tokens that mark a potentially long blocking operation: IIOP
/// invocations, frame I/O, connection establishment. A live guard at
/// one of these is a `guard-across-blocking` finding.
const BLOCKING_TOKENS: [&str; 14] = [
    ".invoke(",
    ".invoke_with(",
    "invoke_codb(",
    "send_request(",
    "recv_reply(",
    ".send_frame(",
    ".recv_frame(",
    ".send_message(",
    ".recv_message(",
    "TcpStream::connect",
    ".locate(",
    ".call(",
    ".sync_all(",
    ".sync_data(",
];

/// Files the `thread-spawn-dispatch` rule applies to: the ORB crate's
/// request/connection handling. The reactor module is excluded by
/// construction — it IS the sanctioned worker pool, so its spawns
/// (the reactor thread and the pool workers) are the rule's fixed
/// point, not violations of it.
fn dispatch_path(file: &Path) -> bool {
    let rel = file.to_string_lossy().replace('\\', "/");
    rel.starts_with("crates/orb/src/") && !rel.ends_with("/reactor.rs")
}

/// One lint hit, before allowlist filtering.
#[derive(Debug, Clone)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// One `xlint.toml` line: `rule path "snippet" justification`.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    snippet: String,
    justification: String,
    line: usize,
    used: std::cell::Cell<bool>,
}

impl AllowEntry {
    /// Does this entry suppress `finding` (whose source text is
    /// `source_line`)?
    fn matches(&self, finding: &Finding, source_line: &str) -> bool {
        self.rule == finding.rule
            && finding.file.to_string_lossy().ends_with(&self.path)
            && source_line.contains(&self.snippet)
    }
}

fn parse_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(Vec::new()), // no allowlist is a valid (strict) state
    };
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (rule, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
            format!(
                "xlint.toml:{}: expected `rule path \"snippet\" why`",
                idx + 1
            )
        })?;
        let (file, rest) = rest
            .trim_start()
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("xlint.toml:{}: missing snippet", idx + 1))?;
        let rest = rest.trim_start();
        let inner = rest
            .strip_prefix('"')
            .and_then(|r| r.split_once('"'))
            .ok_or_else(|| format!("xlint.toml:{}: snippet must be double-quoted", idx + 1))?;
        let (snippet, justification) = inner;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!(
                "xlint.toml:{}: every allowed site needs a justification",
                idx + 1
            ));
        }
        entries.push(AllowEntry {
            rule: rule.to_owned(),
            path: file.to_owned(),
            snippet: snippet.to_owned(),
            justification: justification.to_owned(),
            line: idx + 1,
            used: std::cell::Cell::new(false),
        });
    }
    Ok(entries)
}

/// Blank out comments, string literals, char literals, and lifetime
/// ticks, preserving every newline (so byte offsets keep their line
/// numbers) and leaving all other characters in place.
fn scrub(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Ordinary string literal (raw strings are handled below
                // via the `r` prefix case before we ever see the quote).
                out.push(b' ');
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i < bytes.len() {
                            out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                            i += 1;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                out.push(b' ');
                i += 1;
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
            {
                // Raw string r"…", r#"…"#, r##"…"##, …
                let mut hashes = 0;
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.extend(std::iter::repeat_n(b' ', j - i + 1));
                    let mut k = j + 1;
                    'raw: while k < bytes.len() {
                        if bytes[k] == b'"' {
                            let mut h = 0;
                            while bytes.get(k + 1 + h) == Some(&b'#') && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(if bytes[k] == b'\n' { b'\n' } else { b' ' });
                        k += 1;
                    }
                    i = k;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. `'a` (lifetime) has no
                // closing quote nearby; `'x'` / `'\n'` do.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes.get(i + 3) == Some(&b'\'') || bytes.get(i + 4) == Some(&b'\'')
                } else {
                    bytes.get(i + 2) == Some(&b'\'')
                };
                if close {
                    let end = if bytes.get(i + 1) == Some(&b'\\') {
                        if bytes.get(i + 3) == Some(&b'\'') {
                            i + 3
                        } else {
                            i + 4
                        }
                    } else {
                        i + 2
                    };
                    out.extend(std::iter::repeat_n(b' ', end - i + 1));
                    i = end + 1;
                } else {
                    out.push(b' '); // lifetime tick
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The identifier immediately before byte offset `end` in `text`
/// (used to name the lock site: `self.entries.lock()` → `entries`).
fn ident_before(text: &str, end: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut j = end;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    if j == end {
        return None;
    }
    Some(text[j..end].to_owned())
}

/// A live guard inside the scope stack.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name, or `<temporary>` for construct-header guards.
    name: String,
    /// Lock-site label (final field/variable before the acquire call).
    site: String,
    /// Brace depth at which the guard dies.
    depth: usize,
    /// Line it was acquired on.
    line: usize,
}

/// Per-file scan state and output.
struct FileScan<'a> {
    file: &'a Path,
    findings: Vec<Finding>,
    /// Intra-file acquired-before edges: (held_site, then_site) → first line.
    edges: BTreeMap<(String, String), usize>,
}

impl<'a> FileScan<'a> {
    fn push(&mut self, line: usize, rule: &'static str, message: String) {
        self.findings.push(Finding {
            file: self.file.to_path_buf(),
            line,
            rule,
            message,
        });
    }
}

/// Find `.lock()` / `.read()` / `.write()` call sites in `stmt`
/// (scrubbed text), returning `(offset, call, site)` triples. Only
/// zero-argument calls count — `file.read(&mut buf)` is I/O, not a lock.
fn acquire_sites(stmt: &str) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    for call in ACQUIRE_CALLS {
        let needle = format!(".{call}()");
        let mut from = 0;
        while let Some(pos) = stmt[from..].find(&needle) {
            let at = from + pos;
            if let Some(site) = ident_before(stmt, at) {
                out.push((at, call, site));
            }
            from = at + needle.len();
        }
    }
    out.sort_by_key(|(at, _, _)| *at);
    out
}

/// True when the statement is a `let` whose right-hand side *ends* with
/// an acquire call — i.e. the binding IS the guard. `let n = *m.lock();`
/// dereferences and copies, so the guard dies with the statement.
fn let_guard(stmt: &str) -> Option<(String, String)> {
    let trimmed = stmt.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name_end = rest.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    let name = &rest[..name_end];
    if name.is_empty() {
        return None;
    }
    let eq = stmt.find('=')?;
    let rhs = stmt[eq + 1..]
        .trim_start()
        .trim_end()
        .trim_end_matches(';')
        .trim_end();
    if rhs.starts_with('*') || rhs.starts_with('&') && rhs.contains('*') {
        return None;
    }
    for call in ACQUIRE_CALLS {
        let suffix = format!(".{call}()");
        if rhs.ends_with(&suffix) {
            let site = ident_before(rhs, rhs.len() - suffix.len())?;
            return Some((name.to_owned(), site));
        }
    }
    None
}

/// Scan one scrubbed file. Findings inside `#[cfg(test)]` modules are
/// still emitted here; the caller drops them via [`test_line_ranges`].
fn scan_file(_file: &Path, scrubbed: &str, scan: &mut FileScan<'_>) {
    let mut depth: usize = 0;
    let mut guards: Vec<Guard> = Vec::new();

    // Statement accumulator: we process text between `;`, `{`, `}`
    // boundaries so multi-line expressions are seen whole.
    let mut stmt = String::new();
    let mut stmt_line = 1;
    let mut line = 1;
    let mut in_stmt = false;

    for c in scrubbed.chars() {
        match c {
            '\n' => {
                line += 1;
                stmt.push(' ');
            }
            '{' => {
                let construct_header = {
                    let t = stmt.trim_start();
                    t.starts_with("for ")
                        || t.starts_with("if ")
                        || t.starts_with("while ")
                        || t.starts_with("match ")
                        || t.starts_with("else if ")
                };
                process_statement(scan, &stmt, stmt_line, depth, &mut guards, construct_header);
                depth += 1;
                stmt.clear();
                in_stmt = false;
            }
            '}' => {
                process_statement(scan, &stmt, stmt_line, depth, &mut guards, false);
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt.clear();
                in_stmt = false;
            }
            ';' => {
                stmt.push(';');
                process_statement(scan, &stmt, stmt_line, depth, &mut guards, false);
                stmt.clear();
                in_stmt = false;
            }
            _ => {
                if !in_stmt && !c.is_whitespace() {
                    in_stmt = true;
                    stmt_line = line;
                }
                stmt.push(c);
            }
        }
    }
}

/// Process `stmt` for guard bindings, acquisitions, blocking tokens,
/// ordering edges, and unwrap-on-lock. `construct_header` marks a
/// `for`/`if`/`while`/`match` header whose temporaries outlive the
/// statement (they live until the construct's closing brace).
fn process_statement(
    scan: &mut FileScan<'_>,
    stmt: &str,
    stmt_line: usize,
    depth: usize,
    guards: &mut Vec<Guard>,
    construct_header: bool,
) {
    if stmt.trim().is_empty() {
        return;
    }

    // R4: unwrap/expect directly on an acquire call.
    for call in ACQUIRE_CALLS {
        for bad in ["unwrap", "expect"] {
            let needle = format!(".{call}().{bad}(");
            let mut from = 0;
            while let Some(pos) = stmt[from..].find(&needle) {
                let at = from + pos;
                scan.push(
                    stmt_line,
                    "lock-unwrap",
                    format!(
                        "`.{call}().{bad}()` — workspace locks are poison-free \
                         `webfindit_base::sync` wrappers; a raw std lock has leaked in"
                    ),
                );
                from = at + needle.len();
            }
        }
    }

    // R2: direct std::sync lock types. A following identifier byte
    // means a different type (`std::sync::MutexGuard`), not the lock.
    for ty in ["Mutex", "RwLock"] {
        let qualified = format!("std::sync::{ty}");
        let mut from = 0;
        while let Some(pos) = stmt[from..].find(&qualified) {
            let at = from + pos;
            let end = at + qualified.len();
            if !stmt.as_bytes().get(end).copied().is_some_and(is_ident_byte) {
                scan.push(
                    stmt_line,
                    "std-sync-direct",
                    format!(
                        "`{qualified}` used directly — use `webfindit_base::sync::{ty}` so the \
                         deadlock detector can see this lock"
                    ),
                );
            }
            from = end;
        }
    }
    if let Some(rest) = stmt
        .trim_start()
        .strip_prefix("use std::sync::")
        .or_else(|| stmt.trim_start().strip_prefix("pub use std::sync::"))
    {
        for ty in ["Mutex", "RwLock"] {
            // `MutexGuard`/`RwLockReadGuard` in an import list are fine
            // only alongside the raw types, so flag the types themselves.
            let listed = rest
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|tok| tok == ty);
            if listed {
                scan.push(
                    stmt_line,
                    "std-sync-direct",
                    format!(
                        "`std::sync::{ty}` imported — use `webfindit_base::sync::{ty}` so the \
                         deadlock detector can see this lock"
                    ),
                );
            }
        }
    }

    // R5: raw thread spawns in the server dispatch path. Matches both
    // `thread::spawn(` (also via `std::`) and the `.spawn(` tail of a
    // `Builder::new()` chain; `reactor::spawn(` matches neither.
    if dispatch_path(scan.file) {
        for needle in ["thread::spawn(", ".spawn("] {
            let mut from = 0;
            while let Some(pos) = stmt[from..].find(needle) {
                let at = from + pos;
                scan.push(
                    stmt_line,
                    "thread-spawn-dispatch",
                    format!(
                        "`{}` in the server dispatch path — servant work belongs on the \
                         reactor's bounded worker pool, not ad-hoc threads",
                        needle.trim_matches(['.', '('])
                    ),
                );
                from = at + needle.len();
            }
        }
    }

    // Explicit guard death.
    if let Some(rest) = stmt.trim_start().strip_prefix("drop(") {
        if let Some(name) = rest.split(')').next() {
            let name = name.trim();
            guards.retain(|g| g.name != name);
        }
    }

    let acquires = acquire_sites(stmt);

    // R3: ordering edges — every acquisition in this statement happens
    // while the currently-live guards are held.
    for (_, _, site) in &acquires {
        for held in guards.iter() {
            if &held.site != site {
                scan.edges
                    .entry((held.site.clone(), site.clone()))
                    .or_insert(stmt_line);
            }
        }
    }

    // R1: blocking token with a guard live (including one acquired
    // earlier in this same statement via a construct header — those are
    // pushed below, so check order matters: a header like
    // `for s in self.sites.read().values()` that ALSO contains `.invoke(`
    // is caught by the in-statement check here).
    for token in BLOCKING_TOKENS {
        let mut from = 0;
        while let Some(pos) = stmt[from..].find(token) {
            let at = from + pos;
            for g in guards.iter() {
                scan.push(
                    stmt_line,
                    "guard-across-blocking",
                    format!(
                        "blocking `{}` while guard `{}` (site `{}`, acquired line {}) is held",
                        token.trim_matches(['.', '(']),
                        g.name,
                        g.site,
                        g.line
                    ),
                );
            }
            // Guard acquired earlier in this very statement?
            for (aq_at, call, site) in &acquires {
                if *aq_at < at {
                    scan.push(
                        stmt_line,
                        "guard-across-blocking",
                        format!(
                            "blocking `{}` in the same expression as `.{}()` on `{}` — \
                             the guard temporary is still live",
                            token.trim_matches(['.', '(']),
                            call,
                            site
                        ),
                    );
                }
            }
            from = at + token.len();
        }
    }

    // New guards, live until their scope (or construct) closes.
    if let Some((name, site)) = let_guard(stmt) {
        guards.push(Guard {
            name,
            site,
            depth,
            line: stmt_line,
        });
    } else if construct_header {
        for (_, _, site) in &acquires {
            guards.push(Guard {
                name: "<temporary>".into(),
                site: site.clone(),
                // The construct is about to open a brace; its guard
                // temporaries die when that brace closes, i.e. when
                // depth returns to the current value.
                depth: depth + 1,
                line: stmt_line,
            });
        }
    }
}

/// After a file scan, report site pairs acquired in both orders.
fn cycle_findings(scan: &mut FileScan<'_>) {
    let edges = std::mem::take(&mut scan.edges);
    let mut reported = Vec::new();
    for ((a, b), line) in &edges {
        if a < b {
            if let Some(rev_line) = edges.get(&(b.clone(), a.clone())) {
                reported.push((a.clone(), b.clone(), *line, *rev_line));
            }
        }
    }
    for (a, b, l1, l2) in reported {
        scan.push(
            l1.min(l2),
            "lock-order-cycle",
            format!(
                "sites `{a}` and `{b}` are acquired in both orders \
                 (lines {l1} and {l2}) — pick one order"
            ),
        );
    }
}

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return files;
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut files);
        }
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Files the lint does not apply to: the detector's own internals (its
/// raw std locks are the instrument, not a subject) and xlint itself
/// (its source *names* the forbidden tokens).
fn exempt_file(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let rel = rel.to_string_lossy().replace('\\', "/");
    rel.starts_with("crates/base/src/sync/") || rel.starts_with("crates/xlint/")
}

/// Re-scan a file recording which line ranges belong to `#[cfg(test)]`
/// modules, so findings inside them can be dropped. (The statement
/// scanner tracks this for `;`-statements; brace-punctuated constructs
/// are easier to filter by range after the fact.)
fn test_line_ranges(scrubbed: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut pending = false;
    let mut open: Option<(usize, usize)> = None; // (depth, start_line)
    let mut window = String::new();
    for c in scrubbed.chars() {
        match c {
            '\n' => {
                line += 1;
                if window.contains("#[cfg(test") || window.contains("#[cfg(all(test") {
                    pending = true;
                } else if !window.trim().is_empty() && !window.trim_start().starts_with("#[") {
                    // A non-attribute line between the cfg and the mod
                    // cancels the pending flag unless it opens the mod.
                    if !window.contains("mod ") {
                        pending = false;
                    }
                }
                window.clear();
            }
            '{' => {
                if pending && window.contains("mod ") && open.is_none() {
                    open = Some((depth, line));
                    pending = false;
                }
                depth += 1;
                window.clear();
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if let Some((d, start)) = open {
                    if depth == d {
                        ranges.push((start, line));
                        open = None;
                    }
                }
                window.clear();
            }
            _ => window.push(c),
        }
    }
    if let Some((_, start)) = open {
        ranges.push((start, line));
    }
    ranges
}

fn main() -> ExitCode {
    let root = workspace_root();
    let files = collect_rs_files(&root);
    if files.is_empty() {
        eprintln!(
            "xlint: no crates/*/src files found under {}",
            root.display()
        );
        return ExitCode::from(2);
    }

    let allowlist = match parse_allowlist(&root.join("xlint.toml")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut findings: Vec<(Finding, String)> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        if exempt_file(&root, file) {
            continue;
        }
        scanned += 1;
        let Ok(src) = std::fs::read_to_string(file) else {
            continue;
        };
        let scrubbed = scrub(&src);
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        let mut scan = FileScan {
            file: &rel,
            findings: Vec::new(),
            edges: BTreeMap::new(),
        };
        scan_file(&rel, &scrubbed, &mut scan);
        cycle_findings(&mut scan);
        let test_ranges = test_line_ranges(&scrubbed);
        let source_lines: Vec<&str> = src.lines().collect();
        for f in scan.findings {
            if test_ranges
                .iter()
                .any(|(s, e)| f.line >= *s && f.line <= *e)
            {
                continue;
            }
            let source_line = source_lines
                .get(f.line.saturating_sub(1))
                .copied()
                .unwrap_or("")
                .to_owned();
            findings.push((f, source_line));
        }
    }

    let mut real: Vec<&Finding> = Vec::new();
    let mut suppressed: Vec<(&Finding, &AllowEntry)> = Vec::new();
    for (finding, source_line) in &findings {
        match allowlist
            .iter()
            .find(|entry| entry.matches(finding, source_line))
        {
            Some(entry) => {
                entry.used.set(true);
                suppressed.push((finding, entry));
            }
            None => real.push(finding),
        }
    }

    println!(
        "xlint: scanned {scanned} files, {} findings, {} allowlisted",
        real.len(),
        suppressed.len()
    );
    for (finding, entry) in &suppressed {
        println!("  allowed: {finding} — {}", entry.justification);
    }
    for finding in &real {
        println!("{finding}");
    }

    let stale: Vec<&AllowEntry> = allowlist.iter().filter(|e| !e.used.get()).collect();
    for entry in &stale {
        eprintln!(
            "xlint.toml:{}: stale allowlist entry ({} {} \"{}\") matches nothing — remove it",
            entry.line, entry.rule, entry.path, entry.snippet
        );
    }

    if !stale.is_empty() {
        ExitCode::from(2)
    } else if !real.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn workspace_root() -> PathBuf {
    // `cargo run -p xlint` sets CARGO_MANIFEST_DIR to crates/xlint; a
    // direct binary invocation falls back to the current directory,
    // walking up until a directory with `crates/` appears.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings_preserving_lines() {
        let src = "let a = \"x.lock()\"; // .invoke(\nlet b = 1; /* .read() */ let c = 'x';";
        let s = scrub(src);
        assert!(!s.contains("x.lock()"));
        assert!(!s.contains(".invoke("));
        assert!(!s.contains(".read()"));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
        assert!(s.contains("let b = 1;"));
    }

    #[test]
    fn scrub_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"a.lock()\"#; }";
        let s = scrub(src);
        assert!(!s.contains("a.lock()"));
        assert!(s.contains("fn f"));
    }

    #[test]
    fn let_guard_recognises_bindings_not_copies() {
        assert_eq!(
            let_guard("let g = self.entries.lock();"),
            Some(("g".into(), "entries".into()))
        );
        assert_eq!(
            let_guard("let mut g = map.write();"),
            Some(("g".into(), "map".into()))
        );
        assert_eq!(let_guard("let n = *self.count.lock();"), None);
        assert_eq!(let_guard("let x = compute();"), None);
        assert_eq!(let_guard("self.entries.lock().clear();"), None);
    }

    fn run_rule(src: &str) -> Vec<Finding> {
        run_rule_at("crates/x/src/lib.rs", src)
    }

    fn run_rule_at(path: &str, src: &str) -> Vec<Finding> {
        let scrubbed = scrub(src);
        let rel = PathBuf::from(path);
        let mut scan = FileScan {
            file: &rel,
            findings: Vec::new(),
            edges: BTreeMap::new(),
        };
        scan_file(&rel, &scrubbed, &mut scan);
        cycle_findings(&mut scan);
        let ranges = test_line_ranges(&scrubbed);
        scan.findings
            .into_iter()
            .filter(|f| !ranges.iter().any(|(s, e)| f.line >= *s && f.line <= *e))
            .collect()
    }

    #[test]
    fn guard_across_blocking_fires_on_live_binding() {
        let src = "fn f(&self) {\n    let g = self.cache.lock();\n    self.orb.invoke(&ior, op, args);\n}\n";
        let hits = run_rule(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "guard-across-blocking");
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn guard_released_before_blocking_is_clean() {
        let src = "fn f(&self) {\n    { let g = self.cache.lock(); }\n    self.orb.invoke(&ior, op, args);\n}\n";
        assert!(run_rule(src).is_empty());
        let dropped = "fn f(&self) {\n    let g = self.cache.lock();\n    drop(g);\n    self.orb.invoke(&ior, op, args);\n}\n";
        assert!(run_rule(dropped).is_empty());
    }

    #[test]
    fn for_header_guard_temporary_lives_through_the_loop() {
        let src = "fn f(&self) {\n    for s in self.sites.read().values() {\n        s.orb.invoke(&s.ior, op, args);\n    }\n}\n";
        let hits = run_rule(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "guard-across-blocking");
    }

    #[test]
    fn same_expression_guard_and_blocking_call_is_flagged() {
        let src = "fn f(&self) { self.conns.lock().iter().for_each(|c| c.send_frame(f)); }\n";
        let hits = run_rule(src);
        assert!(
            hits.iter().any(|h| h.rule == "guard-across-blocking"),
            "{hits:?}"
        );
    }

    #[test]
    fn std_sync_direct_flags_raw_locks_but_not_atomics() {
        let src = "use std::sync::Mutex;\nuse std::sync::atomic::AtomicU64;\nstatic X: std::sync::RwLock<u8> = std::sync::RwLock::new(0);\n";
        let hits = run_rule(src);
        let rules: Vec<_> = hits.iter().map(|h| h.rule).collect();
        assert!(rules.iter().all(|r| *r == "std-sync-direct"), "{hits:?}");
        assert!(hits.len() >= 2, "{hits:?}");
        let clean = "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\n";
        assert!(run_rule(clean).is_empty());
    }

    #[test]
    fn lock_order_cycle_detected_intra_file() {
        let src = "fn a(&self) {\n    let g = self.alpha.lock();\n    let h = self.beta.lock();\n}\nfn b(&self) {\n    let h = self.beta.lock();\n    let g = self.alpha.lock();\n}\n";
        let hits = run_rule(src);
        assert_eq!(
            hits.iter().filter(|h| h.rule == "lock-order-cycle").count(),
            1,
            "{hits:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn a(&self) {\n    let g = self.alpha.lock();\n    let h = self.beta.lock();\n}\nfn b(&self) {\n    let g = self.alpha.lock();\n    let h = self.beta.lock();\n}\n";
        assert!(run_rule(src).iter().all(|h| h.rule != "lock-order-cycle"));
    }

    #[test]
    fn lock_unwrap_flagged_outside_tests_only() {
        let src = "fn f(m: &std::sync::Mutex<u8>) { let g = m.lock().unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g(m: &std::sync::Mutex<u8>) { let g = m.lock().unwrap(); }\n}\n";
        let hits = run_rule(src);
        assert_eq!(
            hits.iter().filter(|h| h.rule == "lock-unwrap").count(),
            1,
            "{hits:?}"
        );
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let src =
            "fn f(mut s: TcpStream) { let n = s.read(&mut buf).unwrap(); s.send_frame(x); }\n";
        assert!(run_rule(src)
            .iter()
            .all(|h| h.rule != "guard-across-blocking" && h.rule != "lock-unwrap"));
    }

    #[test]
    fn thread_spawn_flagged_in_dispatch_path_only() {
        let bare = "fn f() { std::thread::spawn(move || serve(x)); }\n";
        let builder = "fn f() {\n    std::thread::Builder::new()\n        .name(n)\n        .spawn(move || serve(x))\n        .expect(\"spawn\");\n}\n";
        for src in [bare, builder] {
            let hits = run_rule_at("crates/orb/src/orb.rs", src);
            assert_eq!(
                hits.iter()
                    .filter(|h| h.rule == "thread-spawn-dispatch")
                    .count(),
                1,
                "{hits:?}"
            );
            // The reactor module and other crates are out of scope.
            assert!(run_rule_at("crates/orb/src/reactor.rs", src).is_empty());
            assert!(run_rule_at("crates/relstore/src/lib.rs", src).is_empty());
        }
    }

    #[test]
    fn reactor_spawn_call_is_not_a_thread_spawn() {
        let src = "fn f() { let core = crate::reactor::spawn(name, listener); }\n";
        assert!(run_rule_at("crates/orb/src/orb.rs", src).is_empty());
    }

    #[test]
    fn allowlist_lines_parse_and_match() {
        let entry = AllowEntry {
            rule: "guard-across-blocking".into(),
            path: "crates/orb/src/channel.rs".into(),
            snippet: "writer.lock()".into(),
            justification: "whole-frame writes".into(),
            line: 1,
            used: std::cell::Cell::new(false),
        };
        let finding = Finding {
            file: PathBuf::from("crates/orb/src/channel.rs"),
            line: 10,
            rule: "guard-across-blocking",
            message: String::new(),
        };
        assert!(entry.matches(&finding, "let w = self.writer.lock();"));
        assert!(!entry.matches(&finding, "let w = self.pending.lock();"));
    }
}
