//! Vendor dialect profiles.
//!
//! The paper's deployment spans Oracle, mSQL, DB2, and Sybase. What made
//! that heterogeneity *matter* was that the products disagreed about SQL:
//! different concatenation operators, different (or missing) row-limit
//! syntax, and — for mSQL, a deliberately minimal engine — no aggregates
//! or GROUP BY at all. WebFINDIT's wrappers absorb those differences.
//!
//! Each simulated database instance carries a [`Dialect`]. The profile
//! does two jobs:
//!
//! 1. **Feature gating** — [`Dialect::check`] rejects statements the
//!    vendor could not execute (e.g. `GROUP BY` on mSQL), forcing the
//!    connectivity layer to compensate exactly as a 1999 wrapper had to.
//! 2. **Rendering** — [`Dialect::render_select`] prints a SELECT the way
//!    that vendor would spell it (`ROWNUM`, `FETCH FIRST`, `TOP`, `+`
//!    concatenation), which is what appears in wrapper traces.

use crate::expr::{BinOp, Expr};
use crate::sql::ast::{JoinKind, SelectItem, SelectStmt, Statement};
use crate::{RelError, RelResult};
use std::fmt;

/// The vendors the paper deploys (plus the engine's canonical form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// The engine's own canonical SQL (used by co-simulation tooling).
    Canonical,
    /// Oracle 8-era SQL: `ROWNUM` pseudo-column instead of LIMIT,
    /// `TO_DATE` literals.
    Oracle,
    /// mSQL (Mini SQL) 2.x: no aggregates, no GROUP BY, no outer joins;
    /// has LIMIT.
    MSql,
    /// DB2 UDB 5-era: `FETCH FIRST n ROWS ONLY`, no plain LIMIT.
    Db2,
    /// Sybase ASE 11-era: `SELECT TOP n`, `+` string concatenation.
    Sybase,
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Dialect {
    /// The vendor's product name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::Canonical => "canonical",
            Dialect::Oracle => "Oracle",
            Dialect::MSql => "mSQL",
            Dialect::Db2 => "DB2",
            Dialect::Sybase => "Sybase",
        }
    }

    /// Whether the vendor supports aggregate functions and GROUP BY.
    pub fn supports_aggregates(&self) -> bool {
        !matches!(self, Dialect::MSql)
    }

    /// Whether the vendor supports LEFT OUTER JOIN.
    pub fn supports_outer_join(&self) -> bool {
        !matches!(self, Dialect::MSql)
    }

    /// Whether the vendor accepts a row limit natively (in any spelling).
    pub fn supports_row_limit(&self) -> bool {
        true // every profile has *some* spelling; see render_select
    }

    /// The string concatenation operator.
    pub fn concat_op(&self) -> &'static str {
        match self {
            Dialect::Sybase => "+",
            _ => "||",
        }
    }

    /// Validate that this vendor can execute `stmt`; the wrapper layer
    /// catches [`RelError::Unsupported`] and compensates client-side.
    pub fn check(&self, stmt: &Statement) -> RelResult<()> {
        if let Statement::Select(s) = stmt {
            if !self.supports_aggregates() {
                let uses_agg = s.items.iter().any(
                    |i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
                ) || !s.group_by.is_empty()
                    || s.having.is_some();
                if uses_agg {
                    return Err(RelError::Unsupported(format!(
                        "{} does not support aggregates/GROUP BY",
                        self.name()
                    )));
                }
            }
            if !self.supports_outer_join() && s.joins.iter().any(|j| j.kind == JoinKind::Left) {
                return Err(RelError::Unsupported(format!(
                    "{} does not support OUTER JOIN",
                    self.name()
                )));
            }
        }
        Ok(())
    }

    /// Render a SELECT in this vendor's spelling. The output is for
    /// traces and demonstrations; the engine executes the canonical AST.
    pub fn render_select(&self, s: &SelectStmt) -> String {
        let mut out = String::from("SELECT ");
        if s.distinct {
            out.push_str("DISTINCT ");
        }
        if let (Dialect::Sybase, Some(n)) = (self, s.limit) {
            out.push_str(&format!("TOP {n} "));
        }
        let items: Vec<String> = s
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::QualifiedWildcard(t) => format!("{t}.*"),
                SelectItem::Expr { expr, alias } => {
                    let e = self.render_expr(expr);
                    match alias {
                        Some(a) => format!("{e} AS {a}"),
                        None => e,
                    }
                }
            })
            .collect();
        out.push_str(&items.join(", "));
        out.push_str(" FROM ");
        out.push_str(&s.from.name);
        if let Some(a) = &s.from.alias {
            out.push(' ');
            out.push_str(a);
        }
        for j in &s.joins {
            match j.kind {
                JoinKind::Cross => {
                    out.push_str(", ");
                    out.push_str(&j.table.name);
                }
                JoinKind::Inner => {
                    out.push_str(" JOIN ");
                    out.push_str(&j.table.name);
                }
                JoinKind::Left => {
                    out.push_str(" LEFT JOIN ");
                    out.push_str(&j.table.name);
                }
            }
            if let Some(a) = &j.table.alias {
                out.push(' ');
                out.push_str(a);
            }
            if let Some(on) = &j.on {
                out.push_str(" ON ");
                out.push_str(&self.render_expr(on));
            }
        }
        // WHERE, folding Oracle's ROWNUM limit in as a conjunct.
        let mut where_parts: Vec<String> = Vec::new();
        if let Some(f) = &s.filter {
            where_parts.push(self.render_expr(f));
        }
        if let (Dialect::Oracle, Some(n)) = (self, s.limit) {
            where_parts.push(format!("ROWNUM <= {n}"));
        }
        if !where_parts.is_empty() {
            out.push_str(" WHERE ");
            out.push_str(&where_parts.join(" AND "));
        }
        if !s.group_by.is_empty() {
            out.push_str(" GROUP BY ");
            let gs: Vec<String> = s.group_by.iter().map(|g| self.render_expr(g)).collect();
            out.push_str(&gs.join(", "));
        }
        if let Some(h) = &s.having {
            out.push_str(" HAVING ");
            out.push_str(&self.render_expr(h));
        }
        if !s.order_by.is_empty() {
            out.push_str(" ORDER BY ");
            let ks: Vec<String> = s
                .order_by
                .iter()
                .map(|k| {
                    let mut e = self.render_expr(&k.expr);
                    if k.desc {
                        e.push_str(" DESC");
                    }
                    e
                })
                .collect();
            out.push_str(&ks.join(", "));
        }
        if let Some(n) = s.limit {
            match self {
                Dialect::Canonical | Dialect::MSql => out.push_str(&format!(" LIMIT {n}")),
                Dialect::Db2 => out.push_str(&format!(" FETCH FIRST {n} ROWS ONLY")),
                Dialect::Oracle | Dialect::Sybase => {} // already folded in
            }
        }
        out
    }

    /// Render an expression, substituting the vendor concat operator and
    /// date-literal form.
    pub fn render_expr(&self, e: &Expr) -> String {
        match e {
            Expr::Binary {
                op: BinOp::Concat,
                left,
                right,
            } => format!(
                "({} {} {})",
                self.render_expr(left),
                self.concat_op(),
                self.render_expr(right)
            ),
            Expr::Binary { op, left, right } => format!(
                "({} {} {})",
                self.render_expr(left),
                op.symbol(),
                self.render_expr(right)
            ),
            Expr::Unary { op, expr } => match op {
                crate::expr::UnaryOp::Not => format!("NOT ({})", self.render_expr(expr)),
                crate::expr::UnaryOp::Neg => format!("-({})", self.render_expr(expr)),
            },
            Expr::IsNull { expr, negated } => format!(
                "({} IS {}NULL)",
                self.render_expr(expr),
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| self.render_expr(e)).collect();
                format!(
                    "({} {}IN ({}))",
                    self.render_expr(expr),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "({} {}BETWEEN {} AND {})",
                self.render_expr(expr),
                if *negated { "NOT " } else { "" },
                self.render_expr(low),
                self.render_expr(high)
            ),
            Expr::Literal(crate::types::Datum::Date(d)) => {
                let iso = crate::types::format_date(*d);
                match self {
                    Dialect::Oracle => format!("TO_DATE('{iso}', 'YYYY-MM-DD')"),
                    _ => format!("'{iso}'"),
                }
            }
            other => other.to_sql(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_statement;

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limit_spellings_differ_by_vendor() {
        let s = select("SELECT name FROM patient LIMIT 5");
        assert_eq!(
            Dialect::Oracle.render_select(&s),
            "SELECT name FROM patient WHERE ROWNUM <= 5"
        );
        assert_eq!(
            Dialect::Db2.render_select(&s),
            "SELECT name FROM patient FETCH FIRST 5 ROWS ONLY"
        );
        assert_eq!(
            Dialect::Sybase.render_select(&s),
            "SELECT TOP 5 name FROM patient"
        );
        assert_eq!(
            Dialect::MSql.render_select(&s),
            "SELECT name FROM patient LIMIT 5"
        );
    }

    #[test]
    fn oracle_limit_folds_into_existing_where() {
        let s = select("SELECT name FROM patient WHERE gender = 'F' LIMIT 3");
        assert_eq!(
            Dialect::Oracle.render_select(&s),
            "SELECT name FROM patient WHERE (gender = 'F') AND ROWNUM <= 3"
        );
    }

    #[test]
    fn sybase_concat_operator() {
        let s = select("SELECT first || last FROM t");
        let rendered = Dialect::Sybase.render_select(&s);
        assert!(rendered.contains("(first + last)"), "{rendered}");
        let o = Dialect::Oracle.render_select(&s);
        assert!(o.contains("(first || last)"), "{o}");
    }

    #[test]
    fn oracle_date_literals() {
        let s = select("SELECT * FROM t WHERE d = DATE '1999-06-15'");
        let rendered = Dialect::Oracle.render_select(&s);
        assert!(
            rendered.contains("TO_DATE('1999-06-15', 'YYYY-MM-DD')"),
            "{rendered}"
        );
    }

    #[test]
    fn msql_rejects_aggregates_and_outer_joins() {
        let agg = parse_statement("SELECT COUNT(*) FROM t").unwrap();
        assert!(matches!(
            Dialect::MSql.check(&agg),
            Err(RelError::Unsupported(_))
        ));
        let grp = parse_statement("SELECT x FROM t GROUP BY x").unwrap();
        assert!(Dialect::MSql.check(&grp).is_err());
        let oj = parse_statement("SELECT * FROM a LEFT JOIN b ON a.x = b.y").unwrap();
        assert!(Dialect::MSql.check(&oj).is_err());
        // Plain select fine.
        let ok = parse_statement("SELECT * FROM t WHERE x = 1").unwrap();
        assert!(Dialect::MSql.check(&ok).is_ok());
    }

    #[test]
    fn other_vendors_accept_aggregates() {
        let agg = parse_statement("SELECT COUNT(*) FROM t GROUP BY x").unwrap();
        for d in [
            Dialect::Oracle,
            Dialect::Db2,
            Dialect::Sybase,
            Dialect::Canonical,
        ] {
            assert!(d.check(&agg).is_ok(), "{d} should accept aggregates");
        }
    }

    #[test]
    fn join_rendering() {
        let s = select("SELECT * FROM a x JOIN b y ON x.i = y.i WHERE x.v > 1");
        let r = Dialect::Db2.render_select(&s);
        assert_eq!(
            r,
            "SELECT * FROM a x JOIN b y ON (x.i = y.i) WHERE (x.v > 1)"
        );
    }
}
