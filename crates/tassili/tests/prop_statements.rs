//! Property-based tests for WebTassili: display ∘ parse is the identity
//! on statement ASTs, and the SQL translation of random predicates is
//! always parseable by the relational engine's grammar shape (checked
//! structurally: balanced quoting via re-parse of the rendered
//! predicate inside a WebTassili statement).

use webfindit_base::prop::{self, string_from, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_tassili::ast::{
    render_pred, Arg, FedScope, LinkTarget, Literal, PredOp, Predicate, SemiJoin,
};
use webfindit_tassili::{parse, Statement};

const UPPER: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const IDENT_TAIL: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
const STR_CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '%_.-";
const NATIVE_CHARS: &str =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 =*<>_.,-";
const DOC_CHARS: &str = "abcdefghijklmnopqrstuvwxyz ";

fn name_word_is_keyword(w: &str) -> bool {
    matches!(
        w.to_ascii_lowercase().as_str(),
        "of" | "to"
            | "from"
            | "under"
            | "on"
            | "with"
            | "and"
            | "or"
            | "not"
            | "class"
            | "instance"
            | "coalition"
            | "description"
            | "documentation"
            | "find"
            | "display"
            | "connect"
            | "join"
            | "leave"
            | "link"
            | "invoke"
            | "submit"
            | "native"
            | "create"
            | "dissolve"
            | "is"
            | "null"
            | "like"
            | "information"
            | "true"
            | "false"
            | "access"
            | "interface"
            | "document"
            | "instances"
            | "subclasses"
            | "coalitions"
            | "databases"
            | "at"
            | "in"
            | "where"
            | "limit"
            | "sites"
            | "explain"
    )
}

/// Multi-word names like the paper's ("Royal Brisbane Hospital"),
/// avoiding WebTassili keywords as words.
fn arb_name(rng: &mut StdRng) -> String {
    loop {
        let n_words = rng.gen_range(1..4usize);
        let words: Vec<String> = (0..n_words)
            .map(|_| {
                let mut w = string_from(rng, UPPER, 1);
                let tail = rng.gen_range(1usize..9);
                w.push_str(&string_from(rng, LOWER, tail));
                w
            })
            .collect();
        if !words.iter().any(|w| name_word_is_keyword(w)) {
            return words.join(" ");
        }
    }
}

fn arb_ident(rng: &mut StdRng) -> String {
    loop {
        let mut s = string_from(rng, UPPER, 1);
        let tail = rng.gen_range(0usize..11);
        s.push_str(&string_from(rng, IDENT_TAIL, tail));
        if !matches!(
            s.to_ascii_lowercase().as_str(),
            "on" | "and" | "or" | "not" | "is" | "null" | "like" | "true" | "false"
        ) {
            return s;
        }
    }
}

fn arb_literal(rng: &mut StdRng) -> Literal {
    match rng.gen_range(0..3) {
        0 => Literal::Int(rng.gen_range(0i64..1_000_000)),
        1 => {
            let len = rng.gen_range(0usize..17);
            Literal::Str(string_from(rng, STR_CHARS, len))
        }
        _ => Literal::Bool(rng.gen_bool(0.5)),
    }
}

fn arb_op(rng: &mut StdRng) -> PredOp {
    [
        PredOp::Eq,
        PredOp::Ne,
        PredOp::Lt,
        PredOp::Le,
        PredOp::Gt,
        PredOp::Ge,
    ][rng.gen_range(0..6usize)]
}

fn arb_pred(rng: &mut StdRng, depth: u32) -> Predicate {
    let pick = if depth == 0 { 0 } else { rng.gen_range(0..7) };
    match pick {
        1 => Predicate::And(
            Box::new(arb_pred(rng, depth - 1)),
            Box::new(arb_pred(rng, depth - 1)),
        ),
        2 => Predicate::Or(
            Box::new(arb_pred(rng, depth - 1)),
            Box::new(arb_pred(rng, depth - 1)),
        ),
        3 => Predicate::Not(Box::new(arb_pred(rng, depth - 1))),
        4 => {
            let (t, a) = (arb_ident(rng), arb_ident(rng));
            Predicate::InList {
                path: format!("{t}.{a}"),
                values: vec_of(rng, 1..4, arb_literal),
            }
        }
        _ => {
            let (t, a) = (arb_ident(rng), arb_ident(rng));
            Predicate::Cmp {
                path: format!("{t}.{a}"),
                op: arb_op(rng),
                value: arb_literal(rng),
            }
        }
    }
}

fn arb_args(rng: &mut StdRng) -> Vec<Arg> {
    vec_of(rng, 0..3, |r| {
        if r.gen_bool(0.5) {
            Arg::Predicate(arb_pred(r, 3))
        } else {
            let (t, a) = (arb_ident(r), arb_ident(r));
            Arg::AttrRef(format!("{t}.{a}"))
        }
    })
}

fn arb_fed_invoke(rng: &mut StdRng) -> Statement {
    Statement::FedInvoke {
        type_name: arb_ident(rng),
        function: arb_ident(rng),
        args: arb_args(rng),
        scope: if rng.gen_bool(0.5) {
            FedScope::Coalition(arb_name(rng))
        } else {
            FedScope::Topic(arb_name(rng))
        },
        semi: if rng.gen_bool(0.5) {
            let (pt, pa) = (arb_ident(rng), arb_ident(rng));
            Some(SemiJoin {
                probe_attr: format!("{pt}.{pa}"),
                build_type: arb_ident(rng),
                build_attr: arb_ident(rng),
                build_args: arb_args(rng),
            })
        } else {
            None
        },
        limit: if rng.gen_bool(0.5) {
            Some(rng.gen_range(0i64..1_000) as u64)
        } else {
            None
        },
    }
}

fn arb_statement(rng: &mut StdRng) -> Statement {
    match rng.gen_range(0..17) {
        0 => Statement::FindCoalitions {
            topic: arb_name(rng),
        },
        1 => Statement::FindDatabases {
            topic: arb_name(rng),
        },
        2 => Statement::ConnectToCoalition {
            name: arb_name(rng),
        },
        3 => Statement::DisplaySubclasses {
            class: arb_name(rng),
        },
        4 => Statement::DisplayInstances {
            class: arb_name(rng),
        },
        5 => Statement::DisplayDocument {
            instance: arb_name(rng),
            class: if rng.gen_bool(0.5) {
                Some(arb_name(rng))
            } else {
                None
            },
        },
        6 => Statement::DisplayAccessInfo {
            instance: arb_name(rng),
        },
        7 => Statement::DisplayInterface {
            instance: arb_name(rng),
        },
        8 => Statement::Native {
            instance: arb_name(rng),
            query: {
                let len = rng.gen_range(1usize..41);
                string_from(rng, NATIVE_CHARS, len)
            },
        },
        9 => Statement::CreateCoalition {
            name: arb_name(rng),
            parent: if rng.gen_bool(0.5) {
                Some(arb_name(rng))
            } else {
                None
            },
            documentation: if rng.gen_bool(0.5) {
                Some({
                    let len = rng.gen_range(1usize..21);
                    string_from(rng, DOC_CHARS, len)
                })
            } else {
                None
            },
        },
        10 => Statement::DissolveCoalition {
            name: arb_name(rng),
        },
        11 => Statement::Join {
            instance: arb_name(rng),
            coalition: arb_name(rng),
        },
        12 => Statement::Leave {
            instance: arb_name(rng),
            coalition: arb_name(rng),
        },
        13 => {
            let (a, b) = (arb_name(rng), arb_name(rng));
            let (ca, cb) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
            Statement::AddLink {
                from: if ca {
                    LinkTarget::Coalition(a)
                } else {
                    LinkTarget::Instance(a)
                },
                to: if cb {
                    LinkTarget::Coalition(b)
                } else {
                    LinkTarget::Instance(b)
                },
                description: None,
            }
        }
        14 => arb_fed_invoke(rng),
        15 => Statement::Explain(Box::new(arb_fed_invoke(rng))),
        _ => Statement::Invoke {
            instance: arb_name(rng),
            type_name: arb_ident(rng),
            function: arb_ident(rng),
            args: arb_args(rng),
        },
    }
}

#[test]
fn display_parse_roundtrip() {
    prop::cases(256, |rng| {
        let stmt = arb_statement(rng);
        let text = stmt.to_string();
        let reparsed = parse(&text);
        assert!(reparsed.is_ok(), "failed to reparse {text:?}: {reparsed:?}");
        assert_eq!(reparsed.unwrap(), stmt, "roundtrip of {text}");
    });
}

#[test]
fn rendered_predicates_reparse() {
    prop::cases(256, |rng| {
        let p = arb_pred(rng, 3);
        let text = format!("Invoke T.F(({})) On Instance D;", render_pred(&p));
        let stmt = parse(&text);
        assert!(stmt.is_ok(), "predicate rendering unparseable: {text}");
    });
}

#[test]
fn parser_never_panics_on_noise() {
    prop::cases(256, |rng| {
        // Printable ASCII noise (space through tilde).
        let len = rng.gen_range(0..80usize);
        let s: String = (0..len)
            .map(|_| rng.gen_range(0x20u8..0x7f) as char)
            .collect();
        let _ = parse(&s);
    });
}
