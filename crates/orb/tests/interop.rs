//! Cross-ORB interoperability tests: panic isolation, value fidelity
//! across mixed byte orders, many-ORB meshes, and location probing
//! under churn.

use std::sync::Arc;
use webfindit_base::prop::{self, string_of, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_orb::servant::{InvokeResult, Servant, ServantError};
use webfindit_orb::{Orb, OrbConfig, OrbDomain, OrbError};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::Value;

struct PanickyServant;

impl Servant for PanickyServant {
    fn interface_id(&self) -> &str {
        "IDL:test/Panicky:1.0"
    }
    fn invoke(&self, operation: &str, _args: &[Value]) -> InvokeResult {
        match operation {
            "boom" => panic!("servant bug #42"),
            "ok" => Ok(Value::string("fine")),
            other => Err(ServantError::UnknownOperation(other.into())),
        }
    }
}

#[test]
fn servant_panic_becomes_system_exception_and_connection_survives() {
    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("S", "s.net", 1, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .unwrap();
    let client = Orb::start(
        OrbConfig::new("C", "c.net", 2, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .unwrap();
    let ior = server.activate("p", Arc::new(PanickyServant));

    match client.invoke(&ior, "boom", &[]) {
        Err(OrbError::RemoteException {
            system: true,
            description,
        }) => {
            assert!(description.contains("servant bug #42"), "{description}");
        }
        other => panic!("expected system exception, got {other:?}"),
    }
    // Same pooled connection still works afterwards.
    assert_eq!(
        client.invoke(&ior, "ok", &[]).unwrap(),
        Value::string("fine")
    );
    server.shutdown();
    client.shutdown();
}

#[test]
fn three_orb_mesh_full_interop() {
    // Every ORB can call servants on every other ORB, mixed byte orders.
    let domain = OrbDomain::new();
    let orders = [
        ByteOrder::BigEndian,
        ByteOrder::LittleEndian,
        ByteOrder::BigEndian,
    ];
    let orbs: Vec<Arc<Orb>> = (0..3)
        .map(|i| {
            Orb::start(
                OrbConfig::new(
                    format!("O{i}"),
                    format!("o{i}.net"),
                    10 + i as u16,
                    orders[i],
                ),
                Arc::clone(&domain),
            )
            .unwrap()
        })
        .collect();
    let iors: Vec<_> = orbs
        .iter()
        .enumerate()
        .map(|(i, orb)| {
            orb.activate(
                format!("echo{i}"),
                Arc::new(webfindit_orb::servant::EchoServant),
            )
        })
        .collect();
    for caller in &orbs {
        for ior in &iors {
            let out = caller
                .invoke(ior, "echo", &[Value::Long(7), Value::string("mesh")])
                .unwrap();
            assert_eq!(
                out,
                Value::Sequence(vec![Value::Long(7), Value::string("mesh")])
            );
        }
    }
    for orb in &orbs {
        orb.shutdown();
    }
}

const ALNUM_SPACE: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

fn arb_value(rng: &mut StdRng, depth: u32) -> Value {
    let pick = if depth == 0 {
        rng.gen_range(0..5)
    } else {
        rng.gen_range(0..8)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::LongLong(rng.next_u64() as i64),
        3 => Value::Double(rng.gen_range(-1e9f64..1e9)),
        4 => Value::Str(string_of(rng, ALNUM_SPACE, 0..25)),
        n if n < 7 => Value::Sequence(vec_of(rng, 0..4, |r| arb_value(r, depth - 1))),
        _ => Value::Struct(vec_of(rng, 0..4, |r| {
            (string_of(r, LOWER, 1..7), arb_value(r, depth - 1))
        })),
    }
}

#[test]
fn values_cross_the_wire_unchanged() {
    prop::cases(24, |rng| {
        let values = vec_of(rng, 0..4, |r| arb_value(r, 2));
        let domain = OrbDomain::new();
        let server = Orb::start(
            OrbConfig::new("S", "sp.net", 1, ByteOrder::BigEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let client = Orb::start(
            OrbConfig::new("C", "cp.net", 2, ByteOrder::LittleEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let ior = server.activate("echo", Arc::new(webfindit_orb::servant::EchoServant));
        let out = client.invoke(&ior, "echo", &values).unwrap();
        assert_eq!(out, Value::Sequence(values));
        server.shutdown();
        client.shutdown();
    });
}

#[test]
fn deactivation_is_visible_to_remote_locate() {
    use webfindit_wire::giop::LocateStatus;
    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("S", "sd.net", 1, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .unwrap();
    let client = Orb::start(
        OrbConfig::new("C", "cd.net", 2, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .unwrap();
    let ior = server.activate("e", Arc::new(webfindit_orb::servant::EchoServant));
    assert_eq!(client.locate(&ior).unwrap(), LocateStatus::ObjectHere);
    server.adapter().deactivate(b"e");
    assert_eq!(client.locate(&ior).unwrap(), LocateStatus::UnknownObject);
    server.shutdown();
    client.shutdown();
}

#[test]
fn pooled_connection_survives_server_restart() {
    // A client with a stale pooled connection must evict and retry when
    // the server comes back at the same advertised endpoint.
    let domain = OrbDomain::new();
    let client = Orb::start(
        OrbConfig::new("C", "cr.net", 2, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .unwrap();

    let server1 = Orb::start(
        OrbConfig::new("S", "sr.net", 1, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .unwrap();
    let ior = server1.activate("e", Arc::new(webfindit_orb::servant::EchoServant));
    assert_eq!(
        client.invoke(&ior, "ping", &[]).unwrap(),
        Value::string("pong")
    );

    // Restart: same advertised endpoint, new socket.
    server1.shutdown();
    let server2 = Orb::start(
        OrbConfig::new("S", "sr.net", 1, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .unwrap();
    server2.activate("e", Arc::new(webfindit_orb::servant::EchoServant));

    // The pooled connection is dead; the retry path must reconnect.
    assert_eq!(
        client.invoke(&ior, "ping", &[]).unwrap(),
        Value::string("pong")
    );
    server2.shutdown();
    client.shutdown();
}
