//! xlint binary: analyze the workspace, apply `xlint.toml`, report.
//!
//! Exit codes: 0 clean, 1 findings, 2 allowlist problems (stale entry,
//! wrong-rule entry, or witness-path mismatch — each with its own
//! diagnostic). See the crate docs in `lib.rs` for the pipeline.

use std::process::ExitCode;
use xlint::{analyze, apply_allowlist, parse_allowlist_text, workspace_root};

fn main() -> ExitCode {
    let root = workspace_root();
    let analysis = analyze(&root);
    if analysis.scanned == 0 {
        eprintln!(
            "xlint: no crates/*/src files found under {}",
            root.display()
        );
        return ExitCode::from(2);
    }

    let allow_text = std::fs::read_to_string(root.join("xlint.toml")).unwrap_or_default();
    let entries = match parse_allowlist_text(&allow_text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };

    let outcome = apply_allowlist(&analysis, &entries);
    println!(
        "xlint: scanned {} files, {} findings, {} allowlisted",
        analysis.scanned,
        outcome.real.len(),
        outcome.suppressed.len()
    );
    for (finding, entry) in &outcome.suppressed {
        println!(
            "  allowed: {}:{}: [{}] {} — {}",
            finding.file.display(),
            finding.line,
            finding.rule,
            finding.message,
            entry.justification
        );
    }
    for finding in &outcome.real {
        println!("{finding}");
    }
    for issue in &outcome.issues {
        eprintln!("{}", issue.render());
    }

    if !outcome.issues.is_empty() {
        ExitCode::from(2)
    } else if !outcome.real.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
