//! # webfindit-orb — a from-scratch CORBA-like ORB
//!
//! The WebFINDIT paper encapsulates every database and co-database in a
//! CORBA server object, deploys those objects across three vendor ORBs
//! (Orbix, OrbixWeb, VisiBroker for Java), and relies on IIOP for the
//! ORBs to interoperate. This crate rebuilds that substrate:
//!
//! * [`servant::Servant`] — the server-side object implementation trait
//!   (the skeleton side of IDL).
//! * [`adapter::ObjectAdapter`] — a POA-style adapter mapping opaque
//!   object keys to active servants.
//! * [`orb::Orb`] — a named ORB instance with an IIOP listener, client
//!   connection pool, request dispatch, and metrics. Several `Orb`s in
//!   one process genuinely exchange CDR-marshalled GIOP frames over
//!   loopback TCP, exactly as the paper's three ORBs did over a LAN.
//! * [`domain::OrbDomain`] — the shared name→endpoint resolver standing
//!   in for DNS, so IORs can carry the paper's hostnames
//!   (`dba.icis.qut.edu.au`) while sockets bind to loopback.
//! * [`naming::NamingService`] — a CORBA-style naming context,
//!   implemented *as a servant* so that name resolution itself travels
//!   through GIOP like any other invocation.
//! * [`metrics`] — per-ORB counters (requests, bytes, local dispatches)
//!   that the scalability experiments read.

#![warn(missing_docs)]

pub mod adapter;
pub mod channel;
pub mod chaos;
pub mod domain;
pub mod metrics;
pub mod naming;
pub mod orb;
mod reactor;
pub mod servant;

pub use adapter::ObjectAdapter;
pub use channel::{BreakerConfig, BreakerState, CallOptions, IiopChannel, RetryPolicy};
pub use chaos::{ChaosAction, ChaosEvent, ChaosHost, ChaosPlan, ChaosRegistry, ChaosTargets};
pub use domain::OrbDomain;
pub use metrics::{EndpointLatency, OrbMetrics};
pub use naming::{IorCache, NamingClient, NamingService};
pub use orb::{Orb, OrbConfig, ServerCore};
pub use servant::{Servant, ServantError};

use std::fmt;
use webfindit_wire::WireError;

/// Errors surfaced by ORB operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum OrbError {
    /// The wire layer failed (marshalling, transport, protocol).
    Wire(WireError),
    /// The remote servant raised an exception.
    RemoteException {
        /// True for system exceptions (ORB/infrastructure failures),
        /// false for user exceptions (application-declared).
        system: bool,
        /// Human-readable description carried in the reply body.
        description: String,
    },
    /// No servant is registered under the requested object key.
    UnknownObject {
        /// The key that failed to resolve.
        key: String,
    },
    /// The IOR has no usable IIOP profile.
    NoEndpoint,
    /// The IOR's hostname could not be resolved to a socket address.
    UnknownHost {
        /// Advertised host name.
        host: String,
        /// Advertised port.
        port: u16,
    },
    /// The ORB has been shut down.
    ShutDown,
    /// The call's deadline expired before a reply arrived; a GIOP
    /// CancelRequest was sent to the server on a best-effort basis.
    DeadlineExpired {
        /// The deadline the caller set.
        operation_deadline: std::time::Duration,
    },
    /// A name was not found in the naming service.
    NameNotFound {
        /// The unresolved name.
        name: String,
    },
    /// The endpoint's circuit breaker is open: recent calls failed
    /// consecutively and the cooldown has not elapsed, so the call was
    /// rejected without touching the wire. Safe to retry elsewhere.
    CircuitOpen {
        /// Advertised host of the tripped endpoint.
        host: String,
        /// Advertised port of the tripped endpoint.
        port: u16,
    },
}

impl fmt::Display for OrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbError::Wire(e) => write!(f, "wire error: {e}"),
            OrbError::RemoteException {
                system,
                description,
            } => {
                let kind = if *system { "system" } else { "user" };
                write!(f, "remote {kind} exception: {description}")
            }
            OrbError::UnknownObject { key } => write!(f, "unknown object key {key:?}"),
            OrbError::NoEndpoint => write!(f, "object reference has no IIOP profile"),
            OrbError::UnknownHost { host, port } => {
                write!(f, "cannot resolve endpoint {host}:{port}")
            }
            OrbError::ShutDown => write!(f, "ORB has been shut down"),
            OrbError::DeadlineExpired { operation_deadline } => {
                write!(f, "deadline of {operation_deadline:?} expired before reply")
            }
            OrbError::NameNotFound { name } => write!(f, "name not bound: {name}"),
            OrbError::CircuitOpen { host, port } => {
                write!(f, "circuit breaker open for endpoint {host}:{port}")
            }
        }
    }
}

impl std::error::Error for OrbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrbError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for OrbError {
    fn from(e: WireError) -> Self {
        OrbError::Wire(e)
    }
}

/// Result alias for ORB operations.
pub type OrbResult<T> = Result<T, OrbError>;
