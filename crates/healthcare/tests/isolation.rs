//! Cross-crate variant of the multi-statement isolation tests: the
//! lock-table transaction manager exercised through the full stack —
//! WebTassili-level connections driving the ISI's `begin` / `execute` /
//! `commit` / `rollback` verbs over real IIOP channels, concurrently.

use std::sync::Arc;
use webfindit::federation::Federation;
use webfindit::wire::{Ior, Value};
use webfindit::WebfinditError;
use webfindit_healthcare::build_healthcare;

fn rbh_isi(fed: &Arc<Federation>) -> Ior {
    fed.naming_client()
        .resolve("isi/Royal Brisbane Hospital")
        .unwrap()
}

fn rbh_count(fed: &Arc<Federation>, isi: &Ior) -> String {
    let v = fed
        .invoke(
            isi,
            "execute",
            &[Value::string("SELECT COUNT(*) c FROM researchprojects")],
        )
        .unwrap();
    let rows = v.field("rows").and_then(Value::as_sequence).unwrap();
    rows[0].as_sequence().unwrap()[0].to_string()
}

#[test]
fn second_connection_begin_is_rejected_over_iiop() {
    let dep = build_healthcare(1999).unwrap();
    let isi = rbh_isi(&dep.fed);

    // Connection 1 opens a transaction and stages work.
    dep.fed.invoke(&isi, "begin", &[]).unwrap();
    dep.fed
        .invoke(
            &isi,
            "execute",
            &[Value::string(
                "INSERT INTO researchprojects VALUES (8001, 'Isolation study', 'locks', 3, '1999-02-01', NULL, 1000.0)",
            )],
        )
        .unwrap();

    // Connection 2's BEGIN surfaces the engine's no-wait rejection as a
    // clean user exception, not a hang or a crash.
    let err = dep.fed.invoke(&isi, "begin", &[]).unwrap_err();
    match err {
        WebfinditError::Orb(webfindit::orb::OrbError::RemoteException {
            system,
            description,
            ..
        }) => {
            assert!(!system, "user exception, not a system one");
            assert!(
                description.contains("transaction already open"),
                "{description}"
            );
        }
        other => panic!("{other:?}"),
    }

    // Connection 1's transaction is unharmed and rolls back cleanly.
    let before = rbh_count(&dep.fed, &isi);
    dep.fed.invoke(&isi, "rollback", &[]).unwrap();
    let after = rbh_count(&dep.fed, &isi);
    // COUNT inside the open transaction saw the staged row; after the
    // rollback it is gone.
    assert_ne!(before, after, "staged row visible inside the transaction");
    dep.fed.shutdown();
}

#[test]
fn concurrent_isi_connections_commit_exactly_their_own_work() {
    let dep = build_healthcare(1999).unwrap();
    let isi = rbh_isi(&dep.fed);
    let baseline: i64 = rbh_count(&dep.fed, &isi).parse().unwrap();

    let per_thread = 10i64;
    let mut handles = Vec::new();
    for t in 0..2i64 {
        let fed = dep.fed.clone();
        let isi = isi.clone();
        handles.push(std::thread::spawn(move || {
            let mut rejected = 0u32;
            for i in 0..per_thread {
                let id = 8100 + t * per_thread + i;
                loop {
                    match fed.invoke(&isi, "begin", &[]) {
                        Ok(_) => {}
                        Err(WebfinditError::Orb(
                            webfindit::orb::OrbError::RemoteException { system: false, .. },
                        )) => {
                            // No-wait rejection: another connection's
                            // transaction is open. Retry.
                            rejected += 1;
                            std::thread::yield_now();
                            continue;
                        }
                        Err(e) => panic!("{e}"),
                    }
                    fed.invoke(
                        &isi,
                        "execute",
                        &[Value::string(format!(
                            "INSERT INTO researchprojects VALUES ({id}, 'Load {id}', 'locks', 3, '1999-02-01', NULL, 1.0)"
                        ))],
                    )
                    .unwrap();
                    fed.invoke(&isi, "commit", &[]).unwrap();
                    break;
                }
            }
            rejected
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let after: i64 = rbh_count(&dep.fed, &isi).parse().unwrap();
    assert_eq!(
        after,
        baseline + 2 * per_thread,
        "every acknowledged commit landed exactly once"
    );
    dep.fed.shutdown();
}
