//! Information-source descriptors — the advertisement format of §2.2.
//!
//! The paper's running example:
//!
//! ```text
//! Information Source Royal Brisbane Hospital {
//!   Information Type  "Research and Medical"
//!   Documentation     "http://www.medicine.uq.edu.au/RBH"
//!   Location          "dba.icis.qut.edu.au"
//!   Wrapper           "dba.icis.qut.edu.au/WebTassiliOracle"
//!   Interface         ResearchProjects, PatientHistory
//! }
//! ```

use std::fmt;

/// One exported access function, e.g. the paper's
/// `function real Funding(ResearchProjects.Title x, Predicate(x))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedFunction {
    /// Function name.
    pub name: String,
    /// Parameter descriptions (display form, e.g. `"string Patient.Name"`).
    pub params: Vec<String>,
    /// Return type (display form, e.g. `"real"`).
    pub returns: String,
    /// What the routine does.
    pub description: String,
}

/// One exported type in a source's interface, e.g. `PatientHistory`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedType {
    /// Type name.
    pub name: String,
    /// Exported attributes as `(display type, qualified name)` pairs,
    /// e.g. `("string", "Patient.Name")`.
    pub attributes: Vec<(String, String)>,
    /// Exported access functions.
    pub functions: Vec<ExportedFunction>,
    /// Textual description of the type.
    pub description: String,
}

impl ExportedType {
    /// Render in the paper's `Type X { … }` display form.
    pub fn render(&self) -> String {
        let mut out = format!("Type {} {{\n", self.name);
        for (ty, name) in &self.attributes {
            out.push_str(&format!("  attribute {ty} {name};\n"));
        }
        for f in &self.functions {
            out.push_str(&format!(
                "  function {} {}({});\n",
                f.returns,
                f.name,
                f.params.join(", ")
            ));
        }
        out.push('}');
        out
    }
}

/// A complete information-source advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InformationSource {
    /// Source (database) name, e.g. `"Royal Brisbane Hospital"`.
    pub name: String,
    /// Advertised information type, e.g. `"Research and Medical"`.
    pub information_type: String,
    /// Documentation URL (multimedia file or demo program in the paper).
    pub documentation_url: String,
    /// Host location of the database.
    pub location: String,
    /// Wrapper address (program giving access to the data).
    pub wrapper: String,
    /// Exported interface.
    pub interface: Vec<ExportedType>,
}

impl InformationSource {
    /// The exported type names (the `Interface` line of the ad).
    pub fn interface_names(&self) -> Vec<String> {
        self.interface.iter().map(|t| t.name.clone()).collect()
    }

    /// Look up an exported type by (case-insensitive) name.
    pub fn exported_type(&self, name: &str) -> Option<&ExportedType> {
        self.interface
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for InformationSource {
    /// Renders in the paper's advertisement syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Information Source {} {{", self.name)?;
        writeln!(f, "  Information Type \"{}\"", self.information_type)?;
        writeln!(f, "  Documentation \"{}\"", self.documentation_url)?;
        writeln!(f, "  Location \"{}\"", self.location)?;
        writeln!(f, "  Wrapper \"{}\"", self.wrapper)?;
        writeln!(f, "  Interface {}", self.interface_names().join(", "))?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rbh() -> InformationSource {
        InformationSource {
            name: "Royal Brisbane Hospital".into(),
            information_type: "Research and Medical".into(),
            documentation_url: "http://www.medicine.uq.edu.au/RBH".into(),
            location: "dba.icis.qut.edu.au".into(),
            wrapper: "dba.icis.qut.edu.au/WebTassiliOracle".into(),
            interface: vec![
                ExportedType {
                    name: "ResearchProjects".into(),
                    attributes: vec![
                        ("String".into(), "ResearchProjects.Title".into()),
                        ("string".into(), "ResearchProjects.keywords".into()),
                    ],
                    functions: vec![ExportedFunction {
                        name: "Funding".into(),
                        params: vec!["ResearchProjects.Title x".into(), "Predicate(x)".into()],
                        returns: "real".into(),
                        description: "returns the budget of a given research project".into(),
                    }],
                    description: "research projects".into(),
                },
                ExportedType {
                    name: "PatientHistory".into(),
                    attributes: vec![("string".into(), "Patient.Name".into())],
                    functions: vec![],
                    description: "patient histories".into(),
                },
            ],
        }
    }

    #[test]
    fn advertisement_renders_like_the_paper() {
        let text = rbh().to_string();
        assert!(text.starts_with("Information Source Royal Brisbane Hospital {"));
        assert!(text.contains("Information Type \"Research and Medical\""));
        assert!(text.contains("Wrapper \"dba.icis.qut.edu.au/WebTassiliOracle\""));
        assert!(text.contains("Interface ResearchProjects, PatientHistory"));
    }

    #[test]
    fn type_rendering() {
        let src = rbh();
        let t = src.exported_type("researchprojects").unwrap();
        let r = t.render();
        assert!(r.starts_with("Type ResearchProjects {"));
        assert!(r.contains("attribute String ResearchProjects.Title;"));
        assert!(r.contains("function real Funding(ResearchProjects.Title x, Predicate(x));"));
    }

    #[test]
    fn interface_lookup() {
        let src = rbh();
        assert_eq!(
            src.interface_names(),
            vec!["ResearchProjects", "PatientHistory"]
        );
        assert!(src.exported_type("nothing").is_none());
    }
}
