//! E10 — pipelined, index-aware query execution in the relational
//! wrapper store.
//!
//! Loads the paper's §5 `medical_students` corpus plus a two-table
//! patient/history workload at 100 000 rows per table (5 000 under
//! `--quick`), then times each query of a fixed corpus under both
//! executors:
//!
//! * **naive**   — the retained reference interpreter
//!   (`Database::query_naive`): materialize, join, filter, project
//!   vector-at-a-time, with index use only for single-table equality.
//! * **planned** — the cost-informed physical planner + pull-based
//!   pipelined executor behind `Database::execute`, with index point
//!   and range sargs, index-aware joins, and LIMIT pushdown.
//!
//! Every query's result sets are checked for equivalence between the
//! two paths before timing. p50/p95 latencies and the p50 speedup are
//! printed and written to `BENCH_query.json`; EXPERIMENTS.md records
//! them as E10. Queries tagged `"tagged": true` carry the acceptance
//! bar (≥10× planned-over-naive at full scale).

use std::time::Instant;
use webfindit_bench::{header, percentile};
use webfindit_relstore::{Column, DataType, Database, Datum, Dialect, Row, TableSchema};

struct Query {
    name: &'static str,
    sql: &'static str,
    /// Carries the ≥10× acceptance bar (indexed join / LIMIT pushdown).
    tagged: bool,
}

const QUERIES: [Query; 6] = [
    Query {
        name: "s5_students",
        sql: "SELECT name FROM medical_students WHERE course = 'Databases'",
        tagged: false,
    },
    Query {
        name: "pk_point",
        sql: "SELECT name, age FROM patient WHERE patient_id = 777",
        tagged: false,
    },
    Query {
        name: "range_scan",
        sql: "SELECT name FROM patient WHERE patient_id BETWEEN 100 AND 120",
        tagged: false,
    },
    Query {
        name: "indexed_join",
        sql: "SELECT p.name, h.diagnosis FROM patient p \
              JOIN history h ON p.patient_id = h.patient_id \
              WHERE p.patient_id = 4242",
        tagged: true,
    },
    Query {
        name: "limit_pushdown",
        sql: "SELECT name FROM patient LIMIT 10",
        tagged: true,
    },
    Query {
        name: "join_agg",
        sql: "SELECT p.gender, COUNT(*) n, AVG(h.cost) avg_cost FROM patient p \
              JOIN history h ON p.patient_id = h.patient_id \
              GROUP BY p.gender ORDER BY p.gender",
        tagged: false,
    },
];

const COURSES: [&str; 5] = [
    "Databases",
    "Networks",
    "Anatomy",
    "Pharmacology",
    "Biostatistics",
];
const DIAGNOSES: [&str; 6] = [
    "hypertension",
    "fracture",
    "influenza",
    "diabetes",
    "asthma",
    "migraine",
];

/// Build the workload database: the §5 student corpus plus `n`-row
/// patient and history tables, with secondary indexes on
/// `medical_students.course` and `history.patient_id`.
fn build_db(n: usize) -> Database {
    let mut db = Database::new("exp10", Dialect::Canonical);

    db.execute(
        "CREATE TABLE medical_students (student_id INT PRIMARY KEY, \
         name TEXT NOT NULL, course TEXT)",
    )
    .expect("create medical_students");
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO medical_students VALUES ({i}, 'student-{i}', '{}')",
            COURSES[i % COURSES.len()],
        ))
        .expect("insert student");
    }
    db.execute("CREATE INDEX ms_course ON medical_students (course)")
        .expect("index course");

    let patient = TableSchema::new(
        "patient",
        vec![
            Column::new("patient_id", DataType::Int).primary_key(),
            Column::new("name", DataType::Text),
            Column::new("gender", DataType::Text),
            Column::new("age", DataType::Int),
        ],
    );
    let rows: Vec<Row> = (0..n as i64)
        .map(|i| {
            vec![
                Datum::Int(i),
                Datum::Text(format!("patient-{i}")),
                Datum::Text(if i % 2 == 0 { "F" } else { "M" }.to_owned()),
                Datum::Int(20 + i % 60),
            ]
        })
        .collect();
    db.import_table(patient, rows).expect("import patient");

    let history = TableSchema::new(
        "history",
        vec![
            Column::new("hist_id", DataType::Int).primary_key(),
            Column::new("patient_id", DataType::Int),
            Column::new("diagnosis", DataType::Text),
            Column::new("cost", DataType::Double),
        ],
    );
    let rows: Vec<Row> = (0..n as i64)
        .map(|i| {
            // A deterministic scatter of visits over patients.
            let pid = (i * 7919) % n as i64;
            vec![
                Datum::Int(i),
                Datum::Int(pid),
                Datum::Text(DIAGNOSES[i as usize % DIAGNOSES.len()].to_owned()),
                Datum::Double(50.0 + (i % 1000) as f64),
            ]
        })
        .collect();
    db.import_table(history, rows).expect("import history");
    db.execute("CREATE INDEX hist_patient ON history (patient_id)")
        .expect("index history.patient_id");

    db
}

/// Order-insensitive canonical form of a result for the equivalence
/// check.
fn multiset(rows: &[Row]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 5_000 } else { 100_000 };
    let iterations = if quick { 5 } else { 30 };

    header(
        "E10",
        "planned pipelined executor vs naive reference interpreter",
    );
    println!("rows per table: {n}, iterations: {iterations}\n");
    let mut db = build_db(n);

    println!(
        "{:<16} | {:>12} {:>12} | {:>12} {:>12} | {:>9} | ok",
        "query", "naive p50", "naive p95", "plan p50", "plan p95", "speedup"
    );

    let mut objects = Vec::new();
    for q in &QUERIES {
        // Equivalence first: the planner must not change answers.
        let planned_rows = db
            .execute(q.sql)
            .expect(q.name)
            .rows()
            .expect("rows")
            .rows
            .clone();
        let naive_rows = db.query_naive(q.sql).expect(q.name).rows;
        let identical = multiset(&planned_rows) == multiset(&naive_rows);
        assert!(identical, "{}: planned and naive results differ", q.name);

        let mut naive_us = Vec::with_capacity(iterations);
        let mut planned_us = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let t = Instant::now();
            let _ = db.query_naive(q.sql).expect(q.name);
            naive_us.push(t.elapsed().as_secs_f64() * 1e6);

            let t = Instant::now();
            let _ = db.execute(q.sql).expect(q.name);
            planned_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
        let naive_p50 = percentile(&naive_us, 50.0);
        let naive_p95 = percentile(&naive_us, 95.0);
        let planned_p50 = percentile(&planned_us, 50.0);
        let planned_p95 = percentile(&planned_us, 95.0);
        let speedup = naive_p50 / planned_p50.max(0.001);

        println!(
            "{:<16} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>8.1}x | {}",
            q.name, naive_p50, naive_p95, planned_p50, planned_p95, speedup, identical
        );

        objects.push(format!(
            "    {{\"name\": \"{}\", \"sql\": \"{}\", \"tagged\": {}, \
             \"naive_p50_us\": {:.1}, \"naive_p95_us\": {:.1}, \
             \"planned_p50_us\": {:.1}, \"planned_p95_us\": {:.1}, \
             \"speedup_p50\": {:.2}, \"identical_results\": {}}}",
            q.name,
            q.sql.replace('"', "\\\""),
            q.tagged,
            naive_p50,
            naive_p95,
            planned_p50,
            planned_p95,
            speedup,
            identical
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"E10\",\n  \"rows\": {n},\n  \"quick\": {quick},\n  \
         \"iterations\": {iterations},\n  \"queries\": [\n{}\n  ]\n}}\n",
        objects.join(",\n")
    );
    std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
    println!("\nwrote BENCH_query.json ({} queries)", QUERIES.len());
}
