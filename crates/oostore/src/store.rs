//! The object store: classes, extents, objects, lattice queries.

use crate::model::{AttrDef, ClassDef, OValue, Oid};
use crate::{OoError, OoResult};
use std::collections::{BTreeMap, BTreeSet};

/// A stored object: its class and attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Class name (canonical case as defined).
    pub class: String,
    /// Attribute values (keys lowercase).
    pub attrs: BTreeMap<String, OValue>,
}

impl Object {
    /// Get one attribute (Null if unset).
    pub fn get(&self, name: &str) -> OValue {
        self.attrs
            .get(&name.to_ascii_lowercase())
            .cloned()
            .unwrap_or(OValue::Null)
    }
}

/// An object-oriented database instance (the ObjectStore/Ontos stand-in).
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    name: String,
    /// Lowercase class name → definition.
    classes: BTreeMap<String, ClassDef>,
    /// Lowercase class name → direct extent (own instances only).
    extents: BTreeMap<String, Vec<Oid>>,
    objects: BTreeMap<Oid, Object>,
    next_oid: u64,
}

impl ObjectStore {
    /// Create an empty store.
    pub fn new(name: impl Into<String>) -> ObjectStore {
        ObjectStore {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of defined classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    // ---- schema -------------------------------------------------------

    /// Define a class. Parents must already exist; cycles are impossible
    /// by construction but double-checked.
    pub fn define_class(&mut self, def: ClassDef) -> OoResult<()> {
        let key = def.name.to_ascii_lowercase();
        if self.classes.contains_key(&key) {
            return Err(OoError::ClassExists(def.name));
        }
        for p in &def.parents {
            let pk = p.to_ascii_lowercase();
            if pk == key {
                return Err(OoError::InheritanceCycle(def.name));
            }
            if !self.classes.contains_key(&pk) {
                return Err(OoError::NoSuchClass(p.clone()));
            }
        }
        self.extents.insert(key.clone(), Vec::new());
        self.classes.insert(key, def);
        Ok(())
    }

    /// Remove a class, its subclass closure, and all their instances.
    /// Returns the removed class names (canonical case).
    pub fn drop_class(&mut self, name: &str) -> OoResult<Vec<String>> {
        let key = name.to_ascii_lowercase();
        if !self.classes.contains_key(&key) {
            return Err(OoError::NoSuchClass(name.to_owned()));
        }
        let mut doomed = self.subclasses_transitive(&key)?;
        doomed.push(self.classes[&key].name.clone());
        for class in &doomed {
            let ck = class.to_ascii_lowercase();
            if let Some(extent) = self.extents.remove(&ck) {
                for oid in extent {
                    self.objects.remove(&oid);
                }
            }
            self.classes.remove(&ck);
        }
        // Remove dangling parent references from remaining classes.
        let doomed_keys: BTreeSet<String> = doomed.iter().map(|c| c.to_ascii_lowercase()).collect();
        for def in self.classes.values_mut() {
            def.parents
                .retain(|p| !doomed_keys.contains(&p.to_ascii_lowercase()));
        }
        Ok(doomed)
    }

    /// The class definition (case-insensitive lookup).
    pub fn class(&self, name: &str) -> OoResult<&ClassDef> {
        self.classes
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| OoError::NoSuchClass(name.to_owned()))
    }

    /// All class names, sorted.
    pub fn class_names(&self) -> Vec<String> {
        self.classes.values().map(|c| c.name.clone()).collect()
    }

    /// Direct subclasses of `name`.
    pub fn subclasses(&self, name: &str) -> OoResult<Vec<String>> {
        let key = name.to_ascii_lowercase();
        self.class(&key)?; // existence check
        Ok(self
            .classes
            .values()
            .filter(|c| c.parents.iter().any(|p| p.to_ascii_lowercase() == key))
            .map(|c| c.name.clone())
            .collect())
    }

    /// All transitive subclasses of `name` (excluding itself).
    pub fn subclasses_transitive(&self, name: &str) -> OoResult<Vec<String>> {
        let mut out = Vec::new();
        let mut frontier = vec![name.to_ascii_lowercase()];
        let mut seen = BTreeSet::new();
        self.class(name)?;
        while let Some(c) = frontier.pop() {
            for sub in self.subclasses(&c)? {
                let sk = sub.to_ascii_lowercase();
                if seen.insert(sk.clone()) {
                    out.push(sub);
                    frontier.push(sk);
                }
            }
        }
        Ok(out)
    }

    /// Direct parents of `name`.
    pub fn superclasses(&self, name: &str) -> OoResult<Vec<String>> {
        Ok(self.class(name)?.parents.clone())
    }

    /// All attributes visible on `name`, inherited ones first
    /// (C3-free: simple depth-first, duplicates by name removed).
    pub fn all_attributes(&self, name: &str) -> OoResult<Vec<AttrDef>> {
        let mut out: Vec<AttrDef> = Vec::new();
        let mut seen = BTreeSet::new();
        let mut stack = vec![name.to_ascii_lowercase()];
        let mut chain = Vec::new();
        while let Some(c) = stack.pop() {
            let def = self.class(&c)?;
            chain.push(def);
            for p in &def.parents {
                stack.push(p.to_ascii_lowercase());
            }
        }
        // Parents first so subclasses can shadow.
        for def in chain.iter().rev() {
            for a in &def.attributes {
                if seen.insert(a.name.clone()) {
                    out.push(a.clone());
                }
            }
        }
        Ok(out)
    }

    /// Whether `class` equals or transitively inherits from `ancestor`.
    pub fn is_subclass_of(&self, class: &str, ancestor: &str) -> OoResult<bool> {
        let target = ancestor.to_ascii_lowercase();
        let mut stack = vec![class.to_ascii_lowercase()];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if c == target {
                return Ok(true);
            }
            if !seen.insert(c.clone()) {
                continue;
            }
            for p in &self.class(&c)?.parents {
                stack.push(p.to_ascii_lowercase());
            }
        }
        Ok(false)
    }

    // ---- objects ------------------------------------------------------

    /// Create an object of `class` with the given attributes, validating
    /// names and types against the class (including inherited attributes).
    pub fn create(
        &mut self,
        class: &str,
        attrs: impl IntoIterator<Item = (String, OValue)>,
    ) -> OoResult<Oid> {
        let def = self.class(class)?;
        let canonical = def.name.clone();
        let key = canonical.to_ascii_lowercase();
        let visible = self.all_attributes(&key)?;
        let mut map = BTreeMap::new();
        for (name, value) in attrs {
            let lname = name.to_ascii_lowercase();
            let decl = visible.iter().find(|a| a.name == lname).ok_or_else(|| {
                OoError::NoSuchAttribute {
                    class: canonical.clone(),
                    attribute: name.clone(),
                }
            })?;
            if let Some(t) = value.otype() {
                // Int is accepted where Double is declared.
                let ok = t == decl.otype
                    || (decl.otype == crate::model::OType::Double && t == crate::model::OType::Int);
                if !ok {
                    return Err(OoError::TypeMismatch {
                        attribute: lname,
                        expected: decl.otype.to_string(),
                        found: value.to_string(),
                    });
                }
            }
            map.insert(lname, value);
        }
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        self.objects.insert(
            oid,
            Object {
                class: canonical,
                attrs: map,
            },
        );
        self.extents.get_mut(&key).expect("extent exists").push(oid);
        Ok(oid)
    }

    /// Delete an object.
    pub fn delete(&mut self, oid: Oid) -> OoResult<()> {
        let obj = self
            .objects
            .remove(&oid)
            .ok_or(OoError::NoSuchObject(oid))?;
        if let Some(extent) = self.extents.get_mut(&obj.class.to_ascii_lowercase()) {
            extent.retain(|&o| o != oid);
        }
        Ok(())
    }

    /// Borrow an object.
    pub fn object(&self, oid: Oid) -> OoResult<&Object> {
        self.objects.get(&oid).ok_or(OoError::NoSuchObject(oid))
    }

    /// Set one attribute (validated like `create`).
    pub fn set_attr(&mut self, oid: Oid, name: &str, value: OValue) -> OoResult<()> {
        let class = self.object(oid)?.class.clone();
        let visible = self.all_attributes(&class)?;
        let lname = name.to_ascii_lowercase();
        let decl =
            visible
                .iter()
                .find(|a| a.name == lname)
                .ok_or_else(|| OoError::NoSuchAttribute {
                    class: class.clone(),
                    attribute: name.to_owned(),
                })?;
        if let Some(t) = value.otype() {
            let ok = t == decl.otype
                || (decl.otype == crate::model::OType::Double && t == crate::model::OType::Int);
            if !ok {
                return Err(OoError::TypeMismatch {
                    attribute: lname,
                    expected: decl.otype.to_string(),
                    found: value.to_string(),
                });
            }
        }
        self.objects
            .get_mut(&oid)
            .expect("checked above")
            .attrs
            .insert(lname, value);
        Ok(())
    }

    /// Instances of `class`; with `include_subclasses`, the full extent
    /// closure (the default semantics of OQL `from Class`).
    pub fn instances_of(&self, class: &str, include_subclasses: bool) -> OoResult<Vec<Oid>> {
        let key = class.to_ascii_lowercase();
        self.class(&key)?;
        let mut out: Vec<Oid> = self.extents[&key].clone();
        if include_subclasses {
            for sub in self.subclasses_transitive(&key)? {
                out.extend(self.extents[&sub.to_ascii_lowercase()].iter().copied());
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OType;

    /// The co-database-like lattice from the paper: InformationType at
    /// the root, coalitions below, databases as instances.
    fn medical_lattice() -> ObjectStore {
        let mut s = ObjectStore::new("codb-RBH");
        s.define_class(
            ClassDef::root("InformationType")
                .attr("name", OType::Text)
                .attr("description", OType::Text),
        )
        .unwrap();
        s.define_class(
            ClassDef::root("Research")
                .extends("InformationType")
                .attr("domain", OType::Text),
        )
        .unwrap();
        s.define_class(ClassDef::root("MedicalResearch").extends("Research"))
            .unwrap();
        s.define_class(ClassDef::root("CancerResearch").extends("MedicalResearch"))
            .unwrap();
        s
    }

    #[test]
    fn lattice_queries() {
        let s = medical_lattice();
        assert_eq!(s.subclasses("InformationType").unwrap(), vec!["Research"]);
        assert_eq!(
            s.subclasses_transitive("information_type".to_ascii_lowercase().as_str())
                .unwrap_or_default()
                .len(),
            0,
            "underscore name is not the class"
        );
        let subs = s.subclasses_transitive("InformationType").unwrap();
        assert_eq!(subs.len(), 3);
        assert!(s
            .is_subclass_of("CancerResearch", "InformationType")
            .unwrap());
        assert!(!s.is_subclass_of("Research", "CancerResearch").unwrap());
        assert_eq!(
            s.superclasses("CancerResearch").unwrap(),
            vec!["MedicalResearch"]
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut s = ObjectStore::new("x");
        assert!(matches!(
            s.define_class(ClassDef::root("A").extends("Missing")),
            Err(OoError::NoSuchClass(_))
        ));
        s.define_class(ClassDef::root("A")).unwrap();
        assert!(matches!(
            s.define_class(ClassDef::root("A")),
            Err(OoError::ClassExists(_))
        ));
        assert!(matches!(
            s.define_class(ClassDef::root("B").extends("B")),
            Err(OoError::InheritanceCycle(_))
        ));
    }

    #[test]
    fn attributes_inherit_and_shadow() {
        let mut s = medical_lattice();
        s.define_class(
            ClassDef::root("Special")
                .extends("Research")
                .attr("description", OType::Text) // shadows root's
                .attr("extra", OType::Int),
        )
        .unwrap();
        let attrs = s.all_attributes("Special").unwrap();
        let names: Vec<&str> = attrs.iter().map(|a| a.name.as_str()).collect();
        assert!(names.contains(&"name"));
        assert!(names.contains(&"domain"));
        assert!(names.contains(&"extra"));
        assert_eq!(
            names.iter().filter(|n| **n == "description").count(),
            1,
            "shadowed attribute appears once"
        );
    }

    #[test]
    fn create_and_extent_closure() {
        let mut s = medical_lattice();
        let a = s
            .create(
                "Research",
                [("name".to_string(), OValue::from("QUT Research"))],
            )
            .unwrap();
        let b = s
            .create(
                "CancerResearch",
                [("name".to_string(), OValue::from("Qld Cancer Fund"))],
            )
            .unwrap();
        assert_eq!(s.instances_of("Research", false).unwrap(), vec![a]);
        assert_eq!(s.instances_of("Research", true).unwrap(), vec![a, b]);
        assert_eq!(s.instances_of("InformationType", true).unwrap(), vec![a, b]);
        assert_eq!(
            s.object(b).unwrap().get("name").as_text(),
            Some("Qld Cancer Fund")
        );
    }

    #[test]
    fn type_validation() {
        let mut s = medical_lattice();
        assert!(matches!(
            s.create("Research", [("name".to_string(), OValue::Int(5))]),
            Err(OoError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.create("Research", [("bogus".to_string(), OValue::Int(5))]),
            Err(OoError::NoSuchAttribute { .. })
        ));
        // Int accepted where Double declared.
        s.define_class(ClassDef::root("F").attr("x", OType::Double))
            .unwrap();
        s.create("F", [("x".to_string(), OValue::Int(3))]).unwrap();
    }

    #[test]
    fn set_attr_and_delete() {
        let mut s = medical_lattice();
        let o = s
            .create("Research", [("name".to_string(), OValue::from("X"))])
            .unwrap();
        s.set_attr(o, "description", OValue::from("about X"))
            .unwrap();
        assert_eq!(
            s.object(o).unwrap().get("description").as_text(),
            Some("about X")
        );
        assert!(s.set_attr(o, "nope", OValue::Null).is_err());
        s.delete(o).unwrap();
        assert!(matches!(s.object(o), Err(OoError::NoSuchObject(_))));
        assert!(s.instances_of("Research", false).unwrap().is_empty());
        assert!(s.delete(o).is_err());
    }

    #[test]
    fn drop_class_removes_subtree() {
        let mut s = medical_lattice();
        s.create("MedicalResearch", []).unwrap();
        s.create("CancerResearch", []).unwrap();
        let keep = s.create("Research", []).unwrap();
        let removed = s.drop_class("MedicalResearch").unwrap();
        assert_eq!(removed.len(), 2); // MedicalResearch + CancerResearch
        assert!(s.class("CancerResearch").is_err());
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.instances_of("Research", true).unwrap(), vec![keep]);
    }

    #[test]
    fn multiple_inheritance() {
        let mut s = ObjectStore::new("x");
        s.define_class(ClassDef::root("A").attr("a", OType::Int))
            .unwrap();
        s.define_class(ClassDef::root("B").attr("b", OType::Int))
            .unwrap();
        s.define_class(ClassDef::root("C").extends("A").extends("B"))
            .unwrap();
        let names: Vec<String> = s
            .all_attributes("C")
            .unwrap()
            .into_iter()
            .map(|a| a.name)
            .collect();
        assert!(names.contains(&"a".to_string()) && names.contains(&"b".to_string()));
        assert!(s.is_subclass_of("C", "A").unwrap());
        assert!(s.is_subclass_of("C", "B").unwrap());
        // C appears in both parents' subclass lists.
        assert_eq!(s.subclasses("A").unwrap(), vec!["C"]);
        assert_eq!(s.subclasses("B").unwrap(), vec!["C"]);
    }
}
