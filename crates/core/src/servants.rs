//! CORBA servants for the metadata and data layers.
//!
//! The paper encapsulates *every* database and co-database in a CORBA
//! server object. [`CoDatabaseServant`] exports a co-database's metadata
//! operations; [`IsiServant`] is the Information Source Interface — the
//! wrapper through which actual data queries reach a database over its
//! JDBC/JNI/native bridge.

use crate::value_map::{
    descriptor_to_value, ovalue_to_value, result_set_to_value, strings_to_value,
    value_to_descriptor,
};
use std::sync::Arc;
use webfindit_base::sync::RwLock;
use webfindit_codb::{CoDatabase, LinkEnd, ServiceLink};
use webfindit_connect::{CompensatingConnection, Connection, DriverManager, QueryOutput};
use webfindit_oostore::OValue;
use webfindit_orb::servant::{InvokeResult, Servant, ServantError};
use webfindit_wire::Value;

/// Interface id of co-database servants.
pub const CODB_INTERFACE_ID: &str = "IDL:webfindit/CoDatabase:1.0";
/// Interface id of information-source-interface servants.
pub const ISI_INTERFACE_ID: &str = "IDL:webfindit/InformationSource:1.0";

fn arg_str(args: &[Value], i: usize, what: &str) -> Result<String, ServantError> {
    args.get(i)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServantError::BadArguments(format!("argument {i} must be {what}")))
}

fn opt_arg_str(args: &[Value], i: usize) -> Option<String> {
    args.get(i).and_then(Value::as_str).map(str::to_owned)
}

/// Encode a service link as a wire struct.
pub fn link_to_value(l: &ServiceLink) -> Value {
    let end = |e: &LinkEnd| match e {
        LinkEnd::Coalition(n) => ("coalition", n.clone()),
        LinkEnd::Database(n) => ("database", n.clone()),
    };
    let (fk, fname) = end(&l.from);
    let (tk, tname) = end(&l.to);
    Value::record([
        ("from_kind", Value::string(fk)),
        ("from", Value::Str(fname)),
        ("to_kind", Value::string(tk)),
        ("to", Value::Str(tname)),
        ("description", Value::string(l.description.clone())),
    ])
}

/// Decode a service link from a wire struct.
pub fn value_to_link(v: &Value) -> Result<ServiceLink, ServantError> {
    let get = |name: &str| -> Result<String, ServantError> {
        v.field(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ServantError::BadArguments(format!("link missing {name}")))
    };
    let end = |kind: &str, name: String| -> Result<LinkEnd, ServantError> {
        match kind {
            "coalition" => Ok(LinkEnd::Coalition(name)),
            "database" => Ok(LinkEnd::Database(name)),
            other => Err(ServantError::BadArguments(format!(
                "unknown link end kind {other}"
            ))),
        }
    };
    Ok(ServiceLink {
        from: end(&get("from_kind")?, get("from")?)?,
        to: end(&get("to_kind")?, get("to")?)?,
        description: get("description")?,
    })
}

/// A shared stall gate: while set, the owning servant holds every
/// request for the configured number of milliseconds before serving it.
///
/// This is the chaos hook for "stall a servant" — the handle lives in
/// the deployment's [`SiteHandle`](crate::federation::SiteHandle), so a
/// chaos plan can slow a live site without restarting anything. Cloning
/// shares the gate.
#[derive(Debug, Clone, Default)]
pub struct StallGate(Arc<std::sync::atomic::AtomicU64>);

impl StallGate {
    /// A gate that starts open (no stall).
    pub fn new() -> StallGate {
        StallGate::default()
    }

    /// Hold each subsequent request for `millis` before serving it.
    pub fn stall(&self, millis: u64) {
        self.0.store(millis, std::sync::atomic::Ordering::Relaxed);
    }

    /// Lift the stall.
    pub fn clear(&self) {
        self.stall(0);
    }

    /// The currently configured hold, in milliseconds (0 = none).
    pub fn millis(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Serve-side: wait out the configured hold, if any.
    fn wait(&self) {
        let ms = self.millis();
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

/// The co-database server object.
pub struct CoDatabaseServant {
    codb: Arc<RwLock<CoDatabase>>,
    stall: StallGate,
}

impl CoDatabaseServant {
    /// Wrap a shared co-database.
    pub fn new(codb: Arc<RwLock<CoDatabase>>) -> CoDatabaseServant {
        Self::with_gate(codb, StallGate::new())
    }

    /// Wrap a shared co-database around an externally held stall gate.
    pub fn with_gate(codb: Arc<RwLock<CoDatabase>>, stall: StallGate) -> CoDatabaseServant {
        CoDatabaseServant { codb, stall }
    }

    /// The servant's stall gate (shared; chaos plans flip it live).
    pub fn stall_gate(&self) -> StallGate {
        self.stall.clone()
    }
}

fn codb_err(e: webfindit_codb::CodbError) -> ServantError {
    ServantError::Application(e.to_string())
}

impl Servant for CoDatabaseServant {
    fn interface_id(&self) -> &str {
        CODB_INTERFACE_ID
    }

    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        self.stall.wait();
        match operation {
            "owner" => Ok(Value::string(self.codb.read().owner().to_owned())),
            "version" => Ok(Value::LongLong(self.codb.read().version() as i64)),
            "find_coalitions" => {
                let topic = arg_str(args, 0, "an information type")?;
                Ok(strings_to_value(self.codb.read().find_coalitions(&topic)))
            }
            "find_links" => {
                let topic = arg_str(args, 0, "an information type")?;
                let codb = self.codb.read();
                Ok(Value::Sequence(
                    codb.find_links(&topic)
                        .into_iter()
                        .map(link_to_value)
                        .collect(),
                ))
            }
            "coalitions" => Ok(strings_to_value(self.codb.read().coalitions())),
            "subclasses" => {
                let class = arg_str(args, 0, "a class name")?;
                self.codb
                    .read()
                    .subclasses(&class)
                    .map(strings_to_value)
                    .map_err(codb_err)
            }
            "coalition_documentation" => {
                let class = arg_str(args, 0, "a class name")?;
                self.codb
                    .read()
                    .coalition_documentation(&class)
                    .map(Value::Str)
                    .map_err(codb_err)
            }
            "members" => {
                let coalition = arg_str(args, 0, "a coalition name")?;
                self.codb
                    .read()
                    .members(&coalition)
                    .map(strings_to_value)
                    .map_err(codb_err)
            }
            "memberships" => {
                let source = arg_str(args, 0, "a source name")?;
                Ok(strings_to_value(self.codb.read().memberships(&source)))
            }
            "sources" => Ok(strings_to_value(self.codb.read().sources())),
            "descriptor" => {
                let source = arg_str(args, 0, "a source name")?;
                self.codb
                    .read()
                    .descriptor(&source)
                    .map(descriptor_to_value)
                    .map_err(codb_err)
            }
            "service_links" => Ok(Value::Sequence(
                self.codb
                    .read()
                    .service_links()
                    .iter()
                    .map(link_to_value)
                    .collect(),
            )),
            // ---- management (WebTassili maintenance constructs) ----
            "create_coalition" => {
                let name = arg_str(args, 0, "a coalition name")?;
                let parent = opt_arg_str(args, 1);
                let documentation = opt_arg_str(args, 2).unwrap_or_default();
                self.codb
                    .write()
                    .create_coalition(&name, parent.as_deref(), &documentation)
                    .map(|_| Value::Void)
                    .map_err(codb_err)
            }
            "dissolve_coalition" => {
                let name = arg_str(args, 0, "a coalition name")?;
                self.codb
                    .write()
                    .dissolve_coalition(&name)
                    .map(|report| {
                        Value::record([
                            (
                                "removed_coalitions",
                                strings_to_value(report.removed_coalitions),
                            ),
                            (
                                "displaced_sources",
                                strings_to_value(report.displaced_sources),
                            ),
                            ("severed_links", Value::ULong(report.severed_links as u32)),
                        ])
                    })
                    .map_err(codb_err)
            }
            "advertise" => {
                let coalition = arg_str(args, 0, "a coalition name")?;
                let descriptor = args
                    .get(1)
                    .ok_or_else(|| ServantError::BadArguments("missing descriptor".into()))?;
                let source = value_to_descriptor(descriptor)
                    .map_err(|e| ServantError::BadArguments(e.to_string()))?;
                self.codb
                    .write()
                    .advertise(&coalition, source)
                    .map(|_| Value::Void)
                    .map_err(codb_err)
            }
            "withdraw" => {
                let coalition = arg_str(args, 0, "a coalition name")?;
                let source = arg_str(args, 1, "a source name")?;
                self.codb
                    .write()
                    .withdraw(&coalition, &source)
                    .map(|_| Value::Void)
                    .map_err(codb_err)
            }
            "add_link" => {
                let link = value_to_link(
                    args.first()
                        .ok_or_else(|| ServantError::BadArguments("missing link".into()))?,
                )?;
                self.codb
                    .write()
                    .add_service_link(link)
                    .map(|_| Value::Void)
                    .map_err(codb_err)
            }
            other => Err(ServantError::UnknownOperation(other.to_owned())),
        }
    }

    fn operations(&self) -> Vec<String> {
        [
            "owner",
            "version",
            "find_coalitions",
            "find_links",
            "coalitions",
            "subclasses",
            "coalition_documentation",
            "members",
            "memberships",
            "sources",
            "descriptor",
            "service_links",
            "create_coalition",
            "dissolve_coalition",
            "advertise",
            "withdraw",
            "add_link",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }
}

/// The Information Source Interface servant — the paper's wrapper.
///
/// Each invocation opens a connection through the driver manager (the
/// deployment decides the URL and hence the bridge), wrapped in the
/// compensating gateway so vendor feature gaps are absorbed here, at
/// the ISI, exactly where the paper places the wrapper.
pub struct IsiServant {
    manager: Arc<DriverManager>,
    url: String,
    metrics: Option<Arc<webfindit_orb::OrbMetrics>>,
    stall: StallGate,
}

impl IsiServant {
    /// Create an ISI for the data source at `url`.
    pub fn new(manager: Arc<DriverManager>, url: impl Into<String>) -> IsiServant {
        IsiServant {
            manager,
            url: url.into(),
            metrics: None,
            stall: StallGate::new(),
        }
    }

    /// Create an ISI that reports data-layer execution counters into
    /// the hosting ORB's metrics after each query.
    pub fn with_metrics(
        manager: Arc<DriverManager>,
        url: impl Into<String>,
        metrics: Arc<webfindit_orb::OrbMetrics>,
    ) -> IsiServant {
        IsiServant {
            manager,
            url: url.into(),
            metrics: Some(metrics),
            stall: StallGate::new(),
        }
    }

    /// Attach a shared stall gate (chaos hook / WAN-latency shaping in
    /// benches), mirroring the co-database servant's gate.
    pub fn with_gate(mut self, stall: StallGate) -> IsiServant {
        self.stall = stall;
        self
    }

    fn open(&self) -> Result<CompensatingConnection, ServantError> {
        let inner = self
            .manager
            .get_connection(&self.url)
            .map_err(|e| ServantError::Resource(e.to_string()))?;
        Ok(CompensatingConnection::new(inner))
    }

    fn report_data_metrics(&self, conn: &CompensatingConnection) {
        if let (Some(orb), Some(m)) = (&self.metrics, conn.last_data_metrics()) {
            orb.record_query_exec(
                m.rows_scanned,
                m.bytes_scanned,
                m.index_hits,
                m.rows_spilled,
            );
            orb.record_durability(
                m.wal_appends,
                m.pages_flushed,
                m.recovery_redo,
                m.recovery_undo,
            );
        }
    }

    /// Run one of the transaction-control verbs over a fresh
    /// connection. Transaction state lives in the underlying database
    /// instance, so the paper's stateless per-invocation connection
    /// still brackets a multi-invocation transaction correctly.
    fn tx_control(
        &self,
        f: impl FnOnce(&mut CompensatingConnection) -> webfindit_connect::ConnectResult<QueryOutput>,
    ) -> InvokeResult {
        let mut conn = self.open()?;
        let out = f(&mut conn).map_err(|e| ServantError::Application(e.to_string()))?;
        self.report_data_metrics(&conn);
        Ok(output_to_value(out))
    }
}

fn output_to_value(out: QueryOutput) -> Value {
    match out {
        QueryOutput::Rows(rs) => result_set_to_value(&rs),
        QueryOutput::Count(n) => Value::record([("count", Value::ULong(n as u32))]),
        QueryOutput::Done => Value::Void,
        QueryOutput::Objects { columns, rows } => Value::record([
            (
                "columns",
                Value::Sequence(columns.into_iter().map(Value::Str).collect()),
            ),
            (
                "rows",
                Value::Sequence(
                    rows.into_iter()
                        .map(|(oid, vals)| {
                            let mut cells = vec![Value::ULong(oid.0 as u32)];
                            cells.extend(vals.iter().map(ovalue_to_value));
                            Value::Sequence(cells)
                        })
                        .collect(),
                ),
            ),
            ("object_rows", Value::Bool(true)),
        ]),
        QueryOutput::Value(v) => ovalue_to_value(&v),
    }
}

fn value_to_ovalue(v: &Value) -> Result<OValue, ServantError> {
    Ok(match v {
        Value::Null | Value::Void => OValue::Null,
        Value::LongLong(i) => OValue::Int(*i),
        Value::Long(i) => OValue::Int(*i as i64),
        Value::Double(d) => OValue::Double(*d),
        Value::Float(d) => OValue::Double(*d as f64),
        Value::Str(s) => OValue::Text(s.clone()),
        Value::Bool(b) => OValue::Bool(*b),
        Value::Sequence(items) => OValue::List(
            items
                .iter()
                .map(value_to_ovalue)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        other => {
            return Err(ServantError::BadArguments(format!(
                "cannot convert {other} to an object value"
            )))
        }
    })
}

impl Servant for IsiServant {
    fn interface_id(&self) -> &str {
        ISI_INTERFACE_ID
    }

    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        self.stall.wait();
        match operation {
            "execute" => {
                let text = arg_str(args, 0, "a query string")?;
                // Optional second argument: a server-side row cap. The
                // federated executor pushes LIMIT down this way because
                // not every vendor dialect can fold a row limit into
                // the shipped text (mSQL has none) — truncating at the
                // ISI keeps the cap effective without widening the wire.
                let max_rows = match args.get(1) {
                    None | Some(Value::Null) => None,
                    Some(Value::ULong(n)) => Some(*n as usize),
                    Some(other) => {
                        return Err(ServantError::BadArguments(format!(
                            "max_rows must be an unsigned long, got {other}"
                        )))
                    }
                };
                let mut conn = self.open()?;
                let mut out = conn
                    .execute(&text)
                    .map_err(|e| ServantError::Application(e.to_string()))?;
                if let Some(n) = max_rows {
                    out.truncate(n);
                }
                self.report_data_metrics(&conn);
                Ok(output_to_value(out))
            }
            "invoke_function" => {
                let method = arg_str(args, 0, "a Class.method name")?;
                let mut ovals = Vec::new();
                for a in &args[1..] {
                    ovals.push(value_to_ovalue(a)?);
                }
                let mut conn = self.open()?;
                let out = conn
                    .invoke(&method, &ovals)
                    .map_err(|e| ServantError::Application(e.to_string()))?;
                Ok(output_to_value(out))
            }
            "interface_of" => {
                let conn = self.open()?;
                let md = conn
                    .metadata()
                    .map_err(|e| ServantError::Resource(e.to_string()))?;
                Ok(Value::record([
                    ("product", Value::Str(md.product)),
                    ("instance", Value::Str(md.instance)),
                    (
                        "tables",
                        Value::Sequence(
                            md.tables
                                .iter()
                                .map(|t| Value::string(t.to_create_sql()))
                                .collect(),
                        ),
                    ),
                    (
                        "classes",
                        Value::Sequence(md.classes.into_iter().map(Value::Str).collect()),
                    ),
                ]))
            }
            "bridge" => {
                let conn = self.open()?;
                Ok(Value::string(conn.bridge().to_string()))
            }
            "begin" => self.tx_control(|c| c.begin()),
            "commit" => self.tx_control(|c| c.commit()),
            "rollback" => self.tx_control(|c| c.rollback()),
            other => Err(ServantError::UnknownOperation(other.to_owned())),
        }
    }

    fn operations(&self) -> Vec<String> {
        [
            "execute",
            "invoke_function",
            "interface_of",
            "bridge",
            "begin",
            "commit",
            "rollback",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webfindit_codb::InformationSource;
    use webfindit_connect::manager::standard_manager;
    use webfindit_connect::DataSourceRegistry;
    use webfindit_relstore::{Database, Dialect};

    fn codb_servant() -> CoDatabaseServant {
        let mut codb = CoDatabase::new("RBH");
        codb.create_coalition("Research", None, "medical research")
            .unwrap();
        codb.advertise(
            "Research",
            InformationSource {
                name: "Royal Brisbane Hospital".into(),
                information_type: "Research and Medical".into(),
                documentation_url: "http://docs/RBH".into(),
                location: "dba.icis.qut.edu.au".into(),
                wrapper: "jdbc:oracle://dba.icis.qut.edu.au/RBH".into(),
                interface: Vec::new(),
            },
        )
        .unwrap();
        CoDatabaseServant::new(Arc::new(RwLock::new(codb)))
    }

    #[test]
    fn metadata_operations() {
        let s = codb_servant();
        let coalitions = s
            .invoke("find_coalitions", &[Value::string("medical research")])
            .unwrap();
        assert_eq!(coalitions, Value::Sequence(vec![Value::string("Research")]));
        let members = s.invoke("members", &[Value::string("Research")]).unwrap();
        assert_eq!(
            members,
            Value::Sequence(vec![Value::string("Royal Brisbane Hospital")])
        );
        let d = s
            .invoke("descriptor", &[Value::string("Royal Brisbane Hospital")])
            .unwrap();
        assert_eq!(
            d.field("location").and_then(Value::as_str),
            Some("dba.icis.qut.edu.au")
        );
        assert!(s.invoke("members", &[Value::string("Ghost")]).is_err());
        assert!(s.invoke("members", &[]).is_err());
        assert!(s.invoke("nonsense", &[]).is_err());
    }

    #[test]
    fn descriptive_operations() {
        let s = codb_servant();
        let owner = s.invoke("owner", &[]).unwrap();
        assert_eq!(owner.as_str(), Some("RBH"));
        let doc = s
            .invoke("coalition_documentation", &[Value::string("Research")])
            .unwrap();
        assert_eq!(doc.as_str(), Some("medical research"));
        let memberships = s
            .invoke("memberships", &[Value::string("Royal Brisbane Hospital")])
            .unwrap();
        assert_eq!(
            memberships,
            Value::Sequence(vec![Value::string("Research")])
        );
        let sources = s.invoke("sources", &[]).unwrap();
        assert_eq!(
            sources,
            Value::Sequence(vec![Value::string("Royal Brisbane Hospital")])
        );
    }

    #[test]
    fn isi_invokes_object_methods_through_the_bridge() {
        use webfindit_oostore::method::MethodTable;
        use webfindit_oostore::model::{ClassDef, OType, OValue};
        use webfindit_oostore::ObjectStore;

        let registry = DataSourceRegistry::new();
        let mut store = ObjectStore::new("PrinceCharles");
        store
            .define_class(ClassDef::root("Treatment").attr("name", OType::Text))
            .unwrap();
        store
            .create(
                "Treatment",
                [("name".to_string(), OValue::from("dialysis"))],
            )
            .unwrap();
        let mut mt = MethodTable::new();
        mt.register("Treatment", "count_all", |s, _r, _a| {
            Ok(OValue::Int(
                s.instances_of("Treatment", true).unwrap().len() as i64,
            ))
        });
        registry.register_object("ontos", "PrinceCharles", store, mt);
        let manager = Arc::new(standard_manager(registry));

        let isi = IsiServant::new(manager, "jni:ontos://dba.icis.qut.edu.au/PrinceCharles");
        let out = isi
            .invoke("invoke_function", &[Value::string("Treatment.count_all")])
            .unwrap();
        assert_eq!(out, Value::LongLong(1));

        // A bogus Class.method surfaces as an application exception.
        assert!(isi
            .invoke("invoke_function", &[Value::string("Treatment.nope")])
            .is_err());
    }

    #[test]
    fn management_operations() {
        let s = codb_servant();
        s.invoke(
            "create_coalition",
            &[
                Value::string("MedicalResearch"),
                Value::string("Research"),
                Value::string("medical research sub-area"),
            ],
        )
        .unwrap();
        let subs = s
            .invoke("subclasses", &[Value::string("Research")])
            .unwrap();
        assert_eq!(
            subs,
            Value::Sequence(vec![Value::string("MedicalResearch")])
        );
        let link = ServiceLink {
            from: LinkEnd::Coalition("Research".into()),
            to: LinkEnd::Database("ATO".into()),
            description: "tax data for research grants".into(),
        };
        s.invoke("add_link", &[link_to_value(&link)]).unwrap();
        let links = s.invoke("service_links", &[]).unwrap();
        assert_eq!(links.as_sequence().unwrap().len(), 1);
        let back = value_to_link(&links.as_sequence().unwrap()[0]).unwrap();
        assert_eq!(back, link);

        let report = s
            .invoke("dissolve_coalition", &[Value::string("MedicalResearch")])
            .unwrap();
        assert_eq!(report.field("severed_links"), Some(&Value::ULong(0)));
    }

    #[test]
    fn isi_executes_sql_through_the_bridge() {
        let registry = DataSourceRegistry::new();
        let mut db = Database::new("RBH", Dialect::Oracle);
        db.execute("CREATE TABLE medical_students (student_id INT PRIMARY KEY, name TEXT)")
            .unwrap();
        db.execute("INSERT INTO medical_students VALUES (1, 'J. Chen'), (2, 'A. Patel')")
            .unwrap();
        registry.register_relational("oracle", "RBH", db);
        let manager = Arc::new(standard_manager(registry));

        let isi = IsiServant::new(manager, "jdbc:oracle://dba.icis.qut.edu.au/RBH");
        let out = isi
            .invoke(
                "execute",
                &[Value::string("select * from medical_students")],
            )
            .unwrap();
        let rows = out.field("rows").and_then(Value::as_sequence).unwrap();
        assert_eq!(rows.len(), 2);

        let bridge = isi.invoke("bridge", &[]).unwrap();
        assert_eq!(bridge.as_str(), Some("JDBC"));

        let iface = isi.invoke("interface_of", &[]).unwrap();
        assert_eq!(
            iface.field("product").and_then(Value::as_str),
            Some("Oracle")
        );

        // Errors surface as application exceptions, not panics.
        assert!(isi
            .invoke("execute", &[Value::string("garbage !")])
            .is_err());
    }

    #[test]
    fn isi_brackets_transactions_on_a_durable_source() {
        use std::sync::Arc;
        use webfindit_relstore::file_mgr::{SimVfs, Vfs};

        let registry = DataSourceRegistry::new();
        let vfs = SimVfs::new();
        let db =
            Database::open_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, "RBH", Dialect::Oracle).unwrap();
        registry.register_relational("oracle", "RBH", db);
        let manager = Arc::new(standard_manager(Arc::clone(&registry)));
        let orb_metrics = Arc::new(webfindit_orb::OrbMetrics::default());
        let isi = IsiServant::with_metrics(
            manager,
            "jdbc:oracle://dba.icis.qut.edu.au/RBH",
            Arc::clone(&orb_metrics),
        );
        assert!(isi.operations().contains(&"commit".to_string()));

        isi.invoke(
            "execute",
            &[Value::string(
                "CREATE TABLE beds (bed_id INT PRIMARY KEY, location TEXT)",
            )],
        )
        .unwrap();
        // Committed over ISI: survives the site crash.
        isi.invoke("begin", &[]).unwrap();
        isi.invoke(
            "execute",
            &[Value::string("INSERT INTO beds VALUES (1, 'ward A')")],
        )
        .unwrap();
        isi.invoke("commit", &[]).unwrap();
        // Rolled back over ISI: never visible.
        isi.invoke("begin", &[]).unwrap();
        isi.invoke(
            "execute",
            &[Value::string("INSERT INTO beds VALUES (2, 'ward B')")],
        )
        .unwrap();
        isi.invoke("rollback", &[]).unwrap();
        assert!(
            orb_metrics.snapshot().data_wal_appends > 0,
            "durability work must reach the ORB metrics"
        );

        assert!(registry.crash_relational("oracle", "RBH"));
        vfs.power_loss(3);
        registry.restart_relational("oracle", "RBH").unwrap();
        let out = isi
            .invoke("execute", &[Value::string("SELECT bed_id FROM beds")])
            .unwrap();
        let rows = out.field("rows").and_then(Value::as_sequence).unwrap();
        assert_eq!(rows.len(), 1, "only the committed insert survives");
    }
}
