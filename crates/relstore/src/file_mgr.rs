//! Page-granular file management: the virtual file system and the
//! checksummed page file manager.
//!
//! Durable state lives in named byte files behind the [`Vfs`] trait so
//! the same storage stack runs against the real disk ([`DiskVfs`]) and
//! against the crash-point harness's power-loss simulator ([`SimVfs`]).
//! [`PageFileMgr`] reads and writes fixed-size pages whose header
//! carries an FNV-1a checksum of the payload — a torn or partial page
//! write is detected on read instead of surfacing as garbage rows.

use crate::{RelError, RelResult};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;
use webfindit_base::rng::StdRng;
use webfindit_base::sync::{detect, Mutex};

/// Fixed page size of every data file.
pub const PAGE_SIZE: usize = 4096;

/// Page header: 8-byte FNV-1a checksum + 4-byte payload length.
const PAGE_HDR: usize = 12;

/// Usable payload bytes per page.
pub const PAGE_CAPACITY: usize = PAGE_SIZE - PAGE_HDR;

/// FNV-1a 64-bit hash — the same dependency-free digest the chaos
/// transcripts use, reused here as the page and WAL record checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A named-file byte store: the only interface the storage stack uses
/// to touch durable bytes.
///
/// Writes become durable only at [`Vfs::sync`]; a power loss may keep
/// any prefix of the unsynced writes (and may tear the last one). The
/// disk implementation maps `sync` to `fsync`; the simulator models
/// the loss explicitly.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read up to `buf.len()` bytes at `offset`, returning how many
    /// were available.
    fn read_at(&self, file: &str, offset: u64, buf: &mut [u8]) -> RelResult<usize>;
    /// Write `data` at `offset`, extending the file as needed.
    fn write_at(&self, file: &str, offset: u64, data: &[u8]) -> RelResult<()>;
    /// Current length of `file` (0 when it does not exist).
    fn len(&self, file: &str) -> RelResult<u64>;
    /// Make every prior write to `file` durable.
    fn sync(&self, file: &str) -> RelResult<()>;
    /// Truncate `file` to `len` bytes.
    fn truncate(&self, file: &str, len: u64) -> RelResult<()>;
}

fn io_err(op: &str, file: &str, e: std::io::Error) -> RelError {
    RelError::Storage(format!("{op} {file}: {e}"))
}

/// The real-disk VFS: every named file is a file under one directory.
#[derive(Debug)]
pub struct DiskVfs {
    dir: PathBuf,
    // One cached handle per file; the guard is held across single
    // read/write/fsync calls only, serializing I/O per VFS.
    handles: Mutex<HashMap<String, File>>,
}

impl DiskVfs {
    /// Open (creating if needed) a disk VFS rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> RelResult<DiskVfs> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err("create_dir", &dir.display().to_string(), e))?;
        Ok(DiskVfs {
            dir,
            handles: Mutex::new_labeled(HashMap::new(), "relstore.diskvfs.handles")
                .allow_hold_across_blocking(
                    "per-file handle cache serializes page and WAL I/O; held for one syscall",
                ),
        })
    }

    fn ensure_open<'a>(
        &self,
        handles: &'a mut HashMap<String, File>,
        file: &str,
    ) -> RelResult<&'a mut File> {
        if !handles.contains_key(file) {
            let path = self.dir.join(file);
            let h = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .map_err(|e| io_err("open", file, e))?;
            handles.insert(file.to_owned(), h);
        }
        Ok(handles.get_mut(file).expect("handle just inserted"))
    }

    fn with_file<R>(
        &self,
        file: &str,
        f: impl FnOnce(&mut File) -> std::io::Result<R>,
    ) -> RelResult<R> {
        let mut handles = self.handles.lock();
        let h = self.ensure_open(&mut handles, file)?;
        f(h).map_err(|e| io_err("io", file, e))
    }
}

impl Vfs for DiskVfs {
    fn read_at(&self, file: &str, offset: u64, buf: &mut [u8]) -> RelResult<usize> {
        self.with_file(file, |h| {
            h.seek(SeekFrom::Start(offset))?;
            let mut read = 0;
            while read < buf.len() {
                let n = h.read(&mut buf[read..])?;
                if n == 0 {
                    break;
                }
                read += n;
            }
            Ok(read)
        })
    }

    fn write_at(&self, file: &str, offset: u64, data: &[u8]) -> RelResult<()> {
        self.with_file(file, |h| {
            h.seek(SeekFrom::Start(offset))?;
            h.write_all(data)
        })
    }

    fn len(&self, file: &str) -> RelResult<u64> {
        match std::fs::metadata(self.dir.join(file)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(io_err("metadata", file, e)),
        }
    }

    fn sync(&self, file: &str) -> RelResult<()> {
        // fsync can block for as long as the device needs, and the
        // handle-cache guard is deliberately held across it: the cache
        // serializes all I/O on a file, so a concurrent write may not
        // reorder past the flush. Both detectors know: the lock carries
        // allow_hold_across_blocking, the static hold is in xlint.toml,
        // and blocking_region makes the runtime detector check every
        // *other* tracked lock a caller might be holding here.
        let mut handles = self.handles.lock();
        let h = self.ensure_open(&mut handles, file)?;
        detect::blocking_region("relstore.diskvfs.fsync", || h.sync_all())
            .map_err(|e| io_err("sync", file, e))
    }

    fn truncate(&self, file: &str, len: u64) -> RelResult<()> {
        self.with_file(file, |h| h.set_len(len))
    }
}

/// One pending (unsynced) mutation in the simulated VFS.
#[derive(Debug, Clone)]
enum PendingOp {
    Write { offset: u64, data: Vec<u8> },
    Truncate { len: u64 },
}

#[derive(Debug, Default, Clone)]
struct SimFile {
    /// Bytes as of the last sync — what a power loss is guaranteed to keep.
    durable: Vec<u8>,
    /// Bytes as the process currently sees them (all writes applied).
    current: Vec<u8>,
    /// Mutations since the last sync, in order, for partial-loss replay.
    pending: Vec<PendingOp>,
}

fn apply_op(bytes: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write { offset, data } => {
            let end = *offset as usize + data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[*offset as usize..end].copy_from_slice(data);
        }
        PendingOp::Truncate { len } => {
            let len = *len as usize;
            if bytes.len() > len {
                bytes.truncate(len);
            } else {
                bytes.resize(len, 0);
            }
        }
    }
}

/// The crash-harness VFS: an in-memory byte store with an explicit
/// power-loss model.
///
/// Writes land in `current` immediately but only reach `durable` at
/// [`Vfs::sync`]. [`SimVfs::power_loss`] replays a seeded-random
/// prefix of the unsynced mutations onto the durable image — possibly
/// tearing the last surviving write in half — which is exactly the
/// contract a real disk gives a crashing process. Recovery must cope
/// with every prefix.
#[derive(Debug, Default)]
pub struct SimVfs {
    files: Mutex<HashMap<String, SimFile>>,
}

impl SimVfs {
    /// Create an empty simulated VFS.
    pub fn new() -> Arc<SimVfs> {
        Arc::new(SimVfs {
            files: Mutex::new_labeled(HashMap::new(), "relstore.simvfs.files"),
        })
    }

    /// Simulate a power loss: for every file, keep a seeded-random
    /// prefix of the unsynced mutations (the last kept write may be
    /// torn mid-way), discard the rest, and make the survivors the new
    /// durable image.
    pub fn power_loss(&self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut files = self.files.lock();
        let mut names: Vec<String> = files.keys().cloned().collect();
        names.sort();
        for name in names {
            let f = files.get_mut(&name).expect("file listed");
            if !f.pending.is_empty() {
                let keep = rng.gen_range(0..=f.pending.len());
                let mut bytes = std::mem::take(&mut f.durable);
                for (i, op) in f.pending.iter().take(keep).enumerate() {
                    let last_kept = i + 1 == keep && keep < f.pending.len();
                    match op {
                        PendingOp::Write { offset, data }
                            if last_kept && data.len() > 1 && rng.gen_bool(0.5) =>
                        {
                            // Torn write: only a prefix of the final
                            // surviving write reached the platter.
                            let cut = rng.gen_range(1..data.len());
                            apply_op(
                                &mut bytes,
                                &PendingOp::Write {
                                    offset: *offset,
                                    data: data[..cut].to_vec(),
                                },
                            );
                        }
                        op => apply_op(&mut bytes, op),
                    }
                }
                f.durable = bytes;
            }
            f.current = f.durable.clone();
            f.pending.clear();
        }
    }

    /// Total unsynced mutations across all files (test observability).
    pub fn pending_ops(&self) -> usize {
        self.files.lock().values().map(|f| f.pending.len()).sum()
    }

    /// Overwrite raw durable bytes of `file` (test corruption helper).
    pub fn corrupt(&self, file: &str, offset: usize, bytes: &[u8]) {
        let mut files = self.files.lock();
        let f = files.entry(file.to_owned()).or_default();
        apply_op(
            &mut f.durable,
            &PendingOp::Write {
                offset: offset as u64,
                data: bytes.to_vec(),
            },
        );
        f.current = f.durable.clone();
        f.pending.clear();
    }
}

impl Vfs for SimVfs {
    fn read_at(&self, file: &str, offset: u64, buf: &mut [u8]) -> RelResult<usize> {
        let files = self.files.lock();
        let Some(f) = files.get(file) else {
            return Ok(0);
        };
        let start = (offset as usize).min(f.current.len());
        let n = buf.len().min(f.current.len() - start);
        buf[..n].copy_from_slice(&f.current[start..start + n]);
        Ok(n)
    }

    fn write_at(&self, file: &str, offset: u64, data: &[u8]) -> RelResult<()> {
        let mut files = self.files.lock();
        let f = files.entry(file.to_owned()).or_default();
        let op = PendingOp::Write {
            offset,
            data: data.to_vec(),
        };
        apply_op(&mut f.current, &op);
        f.pending.push(op);
        Ok(())
    }

    fn len(&self, file: &str) -> RelResult<u64> {
        Ok(self
            .files
            .lock()
            .get(file)
            .map(|f| f.current.len() as u64)
            .unwrap_or(0))
    }

    fn sync(&self, file: &str) -> RelResult<()> {
        let mut files = self.files.lock();
        if let Some(f) = files.get_mut(file) {
            f.durable = f.current.clone();
            f.pending.clear();
        }
        Ok(())
    }

    fn truncate(&self, file: &str, len: u64) -> RelResult<()> {
        let mut files = self.files.lock();
        let f = files.entry(file.to_owned()).or_default();
        let op = PendingOp::Truncate { len };
        apply_op(&mut f.current, &op);
        f.pending.push(op);
        Ok(())
    }
}

/// Checksummed fixed-size page I/O over one VFS file.
#[derive(Debug, Clone)]
pub struct PageFileMgr {
    vfs: Arc<dyn Vfs>,
    file: String,
}

impl PageFileMgr {
    /// Manage `file` on `vfs` as an array of [`PAGE_SIZE`] pages.
    pub fn new(vfs: Arc<dyn Vfs>, file: impl Into<String>) -> PageFileMgr {
        PageFileMgr {
            vfs,
            file: file.into(),
        }
    }

    /// The managed file name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Number of (possibly partial) pages currently in the file.
    pub fn page_count(&self) -> RelResult<u64> {
        Ok(self.vfs.len(&self.file)?.div_ceil(PAGE_SIZE as u64))
    }

    /// Read page `no`, verifying its checksum. `Ok(None)` means the
    /// page is absent, short, or torn — corruption the caller can
    /// recover from, as opposed to an I/O error.
    pub fn read_page(&self, no: u64) -> RelResult<Option<Vec<u8>>> {
        let mut raw = vec![0u8; PAGE_SIZE];
        let n = self
            .vfs
            .read_at(&self.file, no * PAGE_SIZE as u64, &mut raw)?;
        if n < PAGE_HDR {
            return Ok(None);
        }
        let sum = u64::from_le_bytes(raw[0..8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes")) as usize;
        if len > PAGE_CAPACITY || PAGE_HDR + len > n {
            return Ok(None);
        }
        let payload = &raw[PAGE_HDR..PAGE_HDR + len];
        if fnv1a64(payload) != sum {
            return Ok(None);
        }
        Ok(Some(payload.to_vec()))
    }

    /// Write `payload` (≤ [`PAGE_CAPACITY`] bytes) as page `no` with a
    /// fresh checksum header. Durable only after [`PageFileMgr::sync`].
    pub fn write_page(&self, no: u64, payload: &[u8]) -> RelResult<()> {
        if payload.len() > PAGE_CAPACITY {
            return Err(RelError::Storage(format!(
                "page payload {} exceeds capacity {}",
                payload.len(),
                PAGE_CAPACITY
            )));
        }
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[0..8].copy_from_slice(&fnv1a64(payload).to_le_bytes());
        raw[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        raw[PAGE_HDR..PAGE_HDR + payload.len()].copy_from_slice(payload);
        self.vfs.write_at(&self.file, no * PAGE_SIZE as u64, &raw)
    }

    /// Make every written page durable.
    pub fn sync(&self) -> RelResult<()> {
        self.vfs.sync(&self.file)
    }

    /// Drop all pages (start the file over).
    pub fn clear(&self) -> RelResult<()> {
        self.vfs.truncate(&self.file, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_roundtrip_and_corruption_detection() {
        let vfs = SimVfs::new();
        let mgr = PageFileMgr::new(vfs.clone() as Arc<dyn Vfs>, "snap.0");
        mgr.write_page(0, b"hello pages").unwrap();
        mgr.write_page(1, &[7u8; PAGE_CAPACITY]).unwrap();
        mgr.sync().unwrap();
        assert_eq!(mgr.page_count().unwrap(), 2);
        assert_eq!(mgr.read_page(0).unwrap().unwrap(), b"hello pages");
        assert_eq!(mgr.read_page(1).unwrap().unwrap().len(), PAGE_CAPACITY);
        assert!(mgr.read_page(2).unwrap().is_none());
        // Flip a payload byte: checksum must catch it.
        vfs.corrupt("snap.0", PAGE_SIZE + 100, &[0xff]);
        assert!(mgr.read_page(1).unwrap().is_none());
        assert!(mgr.read_page(0).unwrap().is_some());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mgr = PageFileMgr::new(SimVfs::new() as Arc<dyn Vfs>, "f");
        assert!(matches!(
            mgr.write_page(0, &vec![0u8; PAGE_CAPACITY + 1]),
            Err(RelError::Storage(_))
        ));
    }

    #[test]
    fn sim_power_loss_drops_unsynced_suffix() {
        let vfs = SimVfs::new();
        vfs.write_at("wal", 0, b"aaaa").unwrap();
        vfs.sync("wal").unwrap();
        vfs.write_at("wal", 4, b"bbbb").unwrap();
        vfs.write_at("wal", 8, b"cccc").unwrap();
        assert_eq!(vfs.pending_ops(), 2);
        vfs.power_loss(0); // keep nothing, everything, or a torn prefix
        let kept = vfs.len("wal").unwrap();
        assert!((4..=12).contains(&kept), "kept {kept}");
        let mut buf = vec![0u8; 4];
        vfs.read_at("wal", 0, &mut buf).unwrap();
        assert_eq!(&buf, b"aaaa", "synced bytes always survive");
        assert_eq!(vfs.pending_ops(), 0);
    }

    #[test]
    fn sim_power_loss_is_seeded_and_deterministic() {
        let observe = |seed: u64| {
            let vfs = SimVfs::new();
            for i in 0..8u64 {
                vfs.write_at("f", i * 4, &[i as u8; 4]).unwrap();
            }
            vfs.power_loss(seed);
            let mut buf = vec![0u8; 32];
            let n = vfs.read_at("f", 0, &mut buf).unwrap();
            buf.truncate(n);
            buf
        };
        assert_eq!(observe(7), observe(7));
        // Across many seeds, both extremes occur.
        let lens: Vec<usize> = (0..32).map(|s| observe(s).len()).collect();
        assert!(lens.contains(&0), "some loss drops everything");
        assert!(lens.contains(&32), "some loss keeps everything");
    }

    #[test]
    fn disk_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wf_diskvfs_{}", std::process::id()));
        let vfs = DiskVfs::new(&dir).unwrap();
        vfs.write_at("meta", 0, b"0123456789").unwrap();
        vfs.sync("meta").unwrap();
        assert_eq!(vfs.len("meta").unwrap(), 10);
        let mut buf = vec![0u8; 4];
        assert_eq!(vfs.read_at("meta", 2, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"2345");
        vfs.truncate("meta", 3).unwrap();
        assert_eq!(vfs.len("meta").unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
