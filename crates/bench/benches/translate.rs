//! E5 (latency view) — WebTassili parsing and translation costs: the
//! full text → AST → SQL pipeline for the paper's Funding() example, a
//! large compound predicate, and SQL parsing/execution on the engine
//! side of the wrapper.

use webfindit_base::bench::Criterion;
use webfindit_base::{criterion_group, criterion_main};
use webfindit_relstore::{Database, Dialect};
use webfindit_tassili::{parse, translate_invoke_to_sql};

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("webtassili");

    let funding = "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
                   (ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;";
    group.bench_function("parse_funding_example", |b| {
        b.iter(|| parse(funding).unwrap());
    });

    let parsed = parse(funding).unwrap();
    group.bench_function("translate_funding_to_sql", |b| {
        b.iter(|| translate_invoke_to_sql(&parsed).unwrap());
    });

    let compound = "Invoke T.F((T.a > 1 And T.b < 2) Or (T.c = 'x' And Not (T.d Like 'y%')), \
                    (T.e >= 10 And T.f <= 20)) On Instance D;";
    group.bench_function("parse_and_translate_compound", |b| {
        b.iter(|| {
            let stmt = parse(compound).unwrap();
            translate_invoke_to_sql(&stmt).unwrap()
        });
    });

    group.finish();

    // The wrapper's other half: executing the translated SQL.
    let mut db = Database::new("RBH", Dialect::Oracle);
    db.execute(
        "CREATE TABLE researchprojects (project_id INT PRIMARY KEY, title TEXT, funding DOUBLE)",
    )
    .unwrap();
    for i in 0..500 {
        db.execute(&format!(
            "INSERT INTO researchprojects VALUES ({i}, 'project {i}', {})",
            (i * 997) % 400_000
        ))
        .unwrap();
    }
    db.execute("INSERT INTO researchprojects VALUES (500, 'AIDS and drugs', 250000)")
        .unwrap();
    db.execute("CREATE INDEX rp_title ON researchprojects (title)")
        .unwrap();

    let mut group = c.benchmark_group("wrapper_sql");
    group.bench_function("execute_translated_funding_query", |b| {
        b.iter(|| {
            db.execute("SELECT a.funding FROM researchprojects a WHERE a.title = 'AIDS and drugs'")
                .unwrap()
        });
    });
    group.bench_function("execute_scan_aggregate", |b| {
        b.iter(|| {
            db.execute("SELECT COUNT(*), AVG(funding) FROM researchprojects WHERE funding > 100000")
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
