//! Table schemas and the catalog metadata model.

use crate::types::DataType;
use crate::{RelError, RelResult};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lowercase; SQL identifiers are
    /// case-insensitive in this engine).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULLs are rejected.
    pub not_null: bool,
    /// Whether this column is (part of) the primary key.
    pub primary_key: bool,
}

impl Column {
    /// Create a nullable, non-key column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into().to_ascii_lowercase(),
            data_type,
            not_null: false,
            primary_key: false,
        }
    }

    /// Mark as primary key (implies NOT NULL).
    pub fn primary_key(mut self) -> Column {
        self.primary_key = true;
        self.not_null = true;
        self
    }

    /// Mark as NOT NULL.
    pub fn not_null(mut self) -> Column {
        self.not_null = true;
        self
    }
}

/// A table schema: ordered columns plus constraint metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercase).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Create a schema; column and table names are lowercased.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> TableSchema {
        TableSchema {
            name: name.into().to_ascii_lowercase(),
            columns,
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Look up a column, erroring with the column name if missing.
    pub fn column(&self, name: &str) -> RelResult<(usize, &Column)> {
        self.column_index(name)
            .map(|i| (i, &self.columns[i]))
            .ok_or_else(|| RelError::NoSuchColumn(format!("{}.{}", self.name, name)))
    }

    /// Positions of primary-key columns, in declaration order.
    pub fn primary_key_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect()
    }

    /// Position of the primary-key column when the key is exactly one
    /// column — the only key shape the planner can turn into sargs.
    pub fn single_primary_key(&self) -> Option<usize> {
        match self.primary_key_indices().as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Render as a `CREATE TABLE` statement (canonical engine dialect).
    pub fn to_create_sql(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                let mut s = format!("{} {}", c.name, c.data_type);
                if c.primary_key {
                    s.push_str(" PRIMARY KEY");
                } else if c.not_null {
                    s.push_str(" NOT NULL");
                }
                s
            })
            .collect();
        format!("CREATE TABLE {} ({})", self.name, cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient_schema() -> TableSchema {
        TableSchema::new(
            "Patient",
            vec![
                Column::new("patient_id", DataType::Int).primary_key(),
                Column::new("Name", DataType::Text).not_null(),
                Column::new("date_of_birth", DataType::Date),
                Column::new("gender", DataType::Text),
                Column::new("address", DataType::Text),
            ],
        )
    }

    #[test]
    fn names_are_lowercased() {
        let s = patient_schema();
        assert_eq!(s.name, "patient");
        assert_eq!(s.columns[1].name, "name");
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column_index("Patient_Id"), Some(0));
    }

    #[test]
    fn primary_key_implies_not_null() {
        let s = patient_schema();
        assert!(s.columns[0].not_null);
        assert_eq!(s.primary_key_indices(), vec![0]);
    }

    #[test]
    fn missing_column_error_names_the_table() {
        let s = patient_schema();
        match s.column("missing") {
            Err(RelError::NoSuchColumn(msg)) => assert_eq!(msg, "patient.missing"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn create_sql_rendering() {
        let s = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("v", DataType::Text).not_null(),
                Column::new("w", DataType::Double),
            ],
        );
        assert_eq!(
            s.to_create_sql(),
            "CREATE TABLE t (id INT PRIMARY KEY, v TEXT NOT NULL, w DOUBLE)"
        );
    }
}
