//! Cross-crate integration: results obtained through the *full stack*
//! (WebTassili → processor → ORB/IIOP → ISI → engine) must agree with
//! ground truth read directly from the engines, and the three discovery
//! organizations must agree on answerability over the healthcare world.

use std::time::{Duration, Instant};
use webfindit::baselines::{CentralIndex, FlatBroadcast};
use webfindit::discovery::DiscoveryEngine;
use webfindit::orb::chaos::{ChaosAction, ChaosPlan};
use webfindit::orb::BreakerState;
use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit_healthcare::schemas::{build_database, BuiltSource};
use webfindit_healthcare::{build_healthcare, build_healthcare_durable, databases};
use webfindit_relstore::Datum;

/// Ground truth for a COUNT(*) on a relational site, read from a
/// freshly built engine with the same seed (generation is
/// deterministic, so this is exactly what the deployed instance holds).
fn ground_truth_count(site: &str, table: &str, seed: u64) -> i64 {
    let info = databases().into_iter().find(|d| d.name == site).unwrap();
    match build_database(&info, seed) {
        BuiltSource::Relational(db, _) => db.table(table).unwrap().len() as i64,
        BuiltSource::Object(..) => panic!("{site} is not relational"),
    }
}

#[test]
fn stack_results_match_engine_ground_truth() {
    let seed = 1999;
    let dep = build_healthcare(seed).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    for (site, table) in [
        ("Royal Brisbane Hospital", "patient"),
        ("Royal Brisbane Hospital", "medical_students"),
        ("Medicare", "claims"),
        ("MBF", "policies"),
    ] {
        let expected = ground_truth_count(site, table, seed);
        let resp = processor
            .submit(
                &mut session,
                &format!("Submit Native 'SELECT COUNT(*) FROM {table}' To Instance {site};"),
                None,
            )
            .unwrap();
        match resp {
            Response::Table(rs) => {
                assert_eq!(
                    rs.rows,
                    vec![vec![Datum::Int(expected)]],
                    "{site}.{table} count through the stack"
                );
            }
            other => panic!("{other:?}"),
        }
    }
    dep.fed.shutdown();
}

#[test]
fn the_three_organizations_agree_on_answerability() {
    let dep = build_healthcare(1999).unwrap();
    let engine = DiscoveryEngine::new(dep.fed.clone());
    let flat = FlatBroadcast::new(dep.fed.clone());
    let central = CentralIndex::build(dep.fed.clone()).unwrap();

    for topic in [
        "Medical Research",
        "Medical Insurance",
        "Superannuation",
        "cancer",
        "completely unknown subject xyzzy",
    ] {
        let bc = flat.find(topic).unwrap();
        let cx = central.find(topic).unwrap();
        // Broadcast and central see the whole world identically.
        assert_eq!(bc.found(), cx.found(), "broadcast vs central on {topic:?}");
        // WebFINDIT from QUT must find everything the world contains
        // that is reachable through its relationships; on the healthcare
        // topology everything is connected, so answerability matches.
        let wf = engine.find("QUT Research", topic).unwrap();
        assert_eq!(
            wf.found(),
            bc.found(),
            "webfindit vs broadcast on {topic:?}"
        );
    }
    dep.fed.shutdown();
}

#[test]
fn invoke_and_native_paths_agree() {
    // The access-function path (WebTassili Invoke → translated SQL) and
    // the native path (user-typed SQL) must return identical data.
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    let via_invoke = processor
        .submit(
            &mut session,
            "Invoke ResearchProjects.Funding((ResearchProjects.Title = 'AIDS and drugs')) \
             On Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    let via_native = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT a.funding FROM researchprojects a \
             WHERE a.title = ''AIDS and drugs''' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    match (via_invoke, via_native) {
        (Response::Table(a), Response::Table(b)) => assert_eq!(a.rows, b.rows),
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

/// Kill one ORB's sites mid-session and prove discovery degrades
/// instead of dying: it still completes promptly, still returns leads
/// from the surviving subtree, and names every site of the lost
/// Research-coalition wing in `degraded`. After the scripted restart
/// (and the breaker's half-open probe) the federation is whole again.
#[test]
fn killing_one_orb_yields_partial_discovery_naming_the_lost_sites() {
    let dep = build_healthcare(1999).unwrap();
    let engine = DiscoveryEngine::new(dep.fed.clone());

    // "Medical Insurance" seen from QUT Research crosses the federation:
    // the level-1 frontier is the rest of the Research coalition, two of
    // whose members (RMIT Medical Research, Queensland Cancer Fund) live
    // on the Orbix ORB; the answer itself lies further out, reachable
    // only through the surviving Royal Brisbane Hospital branch.
    let healthy = engine.find("QUT Research", "Medical Insurance").unwrap();
    assert!(healthy.found() && healthy.complete(), "{healthy:?}");

    // Killing any Orbix-hosted site takes down that whole ORB — all
    // four ObjectStore sites go dark at once. The plan restarts it at
    // step 2, so the schedule itself returns the world to health.
    let mut plan = ChaosPlan::new(2026);
    plan.push(1, ChaosAction::KillSite("RMIT Medical Research".into()))
        .push(2, ChaosAction::RestartSite("RMIT Medical Research".into()));

    let fed = dep.fed.clone();
    let engine_ref = &engine;
    plan.run(&*fed, |step| match step {
        1 => {
            assert_eq!(fed.downed_orbs(), vec!["Orbix".to_owned()]);
            let started = Instant::now();
            let out = engine_ref
                .find("QUT Research", "Medical Insurance")
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "degraded discovery must not hang: took {:?}",
                started.elapsed()
            );
            // Partial, not empty: the surviving subtree still answers.
            assert!(out.found(), "surviving sites must still produce leads");
            assert!(!out.complete(), "the dead wing must be reported");
            let lost = out.degraded_sites();
            for site in ["RMIT Medical Research", "Queensland Cancer Fund"] {
                assert!(lost.contains(&site), "{site} missing from {lost:?}");
            }
            // No lead may claim to come from a dead site.
            for lead in &out.leads {
                let via = match lead {
                    webfindit::Lead::Coalition { via_site, .. } => via_site,
                    webfindit::Lead::Link { via_site, .. } => via_site,
                };
                assert!(!lost.contains(&via.as_str()), "lead via dead site {via}");
            }
        }
        2 => {
            assert!(fed.downed_orbs().is_empty());
            // Give the client's breaker its cooldown, then query: the
            // half-open probe hits the restarted Orbix and closes it.
            std::thread::sleep(Duration::from_millis(60));
            let out = engine_ref
                .find("QUT Research", "Medical Insurance")
                .unwrap();
            assert!(out.found(), "{out:?}");
            assert!(out.complete(), "restarted sites answer again: {out:?}");
            assert_eq!(
                fed.client_orb().breaker_state("orbix.qut.edu.au", 9000),
                Some(BreakerState::Closed),
                "probe against the restarted ORB closes the breaker"
            );
        }
        _ => unreachable!("plan has two steps"),
    });

    // Determinism: the same scripted schedule fingerprints identically.
    let mut replay = ChaosPlan::new(2026);
    replay
        .push(1, ChaosAction::KillSite("RMIT Medical Research".into()))
        .push(2, ChaosAction::RestartSite("RMIT Medical Research".into()));
    assert_eq!(plan.digest(), replay.digest());

    dep.fed.shutdown();
}

/// The durability contract over the full 14-site deployment: a scripted
/// [`ChaosPlan`] kills the ORB hosting a *durable* Royal Brisbane
/// Hospital mid-transaction and restarts it. The kill loses the site's
/// volatile state (a machine crash, not a graceful stop); the restart
/// runs WAL recovery. Rows from a committed transaction must be visible
/// through the full stack afterwards; rows from the transaction that
/// was in flight at the moment of the crash must not.
#[test]
fn chaos_kill_restart_of_a_durable_site_keeps_committed_rows_only() {
    let dep = build_healthcare_durable(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    let rbh = dep.fed.site("Royal Brisbane Hospital").unwrap();
    let parts = webfindit_connect::parse_url(&rbh.url).unwrap();
    let db = dep
        .fed
        .registry()
        .relational(parts.vendor, parts.instance)
        .unwrap();
    {
        let mut guard = db.lock();
        assert!(guard.is_durable(), "durable deployment attaches storage");
        // One transaction commits (its WAL records are fsynced before
        // COMMIT returns)...
        guard.begin().unwrap();
        guard
            .execute("INSERT INTO doctors VALUES (9001, 'MBBS', 'registrar')")
            .unwrap();
        guard.commit().unwrap();
        // ...and a second is still open when the machine dies.
        guard.begin().unwrap();
        guard
            .execute("INSERT INTO doctors VALUES (9002, 'MD', 'phantom')")
            .unwrap();
    }

    let mut plan = ChaosPlan::new(2026);
    plan.push(1, ChaosAction::KillSite("Royal Brisbane Hospital".into()))
        .push(
            2,
            ChaosAction::RestartSite("Royal Brisbane Hospital".into()),
        );
    let fed = dep.fed.clone();
    plan.run(&*fed, |step| match step {
        1 => {
            assert!(
                db.lock().is_crashed(),
                "killing the hosting ORB crashes the durable instance"
            );
        }
        2 => {
            assert!(!db.lock().is_crashed(), "restart runs recovery");
        }
        _ => unreachable!("plan has two steps"),
    });

    // Through the full stack (WebTassili → ORB → ISI → engine), the
    // recovered site serves exactly the committed row.
    std::thread::sleep(Duration::from_millis(60));
    let resp = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT employee_id FROM doctors WHERE employee_id > 9000' \
             To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    match resp {
        Response::Table(rs) => assert_eq!(
            rs.rows,
            vec![vec![Datum::Int(9001)]],
            "committed row survives; the in-flight row is rolled back"
        ),
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

/// Cross-crate companion to `crates/orb/tests/lock_order.rs`: several
/// threads run full discovery sweeps — frontier expansion, co-database
/// invokes over IIOP, and the shared [`webfindit::CodbAnswerCache`] —
/// while a seeded chaos schedule injects link latency on one ORB's
/// endpoint. Under `deadlock-detect` the whole interleaving must
/// produce zero lock-order or hold-across-blocking reports; without the
/// feature the same interleaving still runs and the drain is trivially
/// empty.
#[test]
fn concurrent_discovery_under_chaos_has_no_detector_violations() {
    use webfindit_base::sync::detect;

    let _ = detect::take_violations();
    let dep = build_healthcare(1999).unwrap();
    let engine = DiscoveryEngine::new(dep.fed.clone());

    // Latency-only faults: calls still succeed, so discovery stays
    // complete while every lock in the path is held under contention.
    let mut plan = ChaosPlan::new(0x5EED);
    plan.push(
        0,
        ChaosAction::EndpointFault {
            host: "orbix.qut.edu.au".into(),
            port: 9000,
            fault: webfindit::wire::transport::Fault::DelayMs(1),
        },
    )
    .push(
        1,
        ChaosAction::ClearEndpoint {
            host: "orbix.qut.edu.au".into(),
            port: 9000,
        },
    );

    let topics = [
        "Medical Research",
        "Medical Insurance",
        "Superannuation",
        "cancer",
    ];
    std::thread::scope(|s| {
        for t in 0..4usize {
            let engine = &engine;
            s.spawn(move || {
                for i in 0..6 {
                    let topic = topics[(t + i) % topics.len()];
                    let out = engine.find("QUT Research", topic).unwrap();
                    assert!(out.found(), "{topic:?} must stay answerable: {out:?}");
                    if i % 3 == t % 3 {
                        // Race cold misses against warm hits.
                        engine.codb_cache().clear();
                    }
                }
            });
        }
        let registry = dep.fed.chaos_registry();
        for step in 0..=plan.last_step() {
            for event in plan.events_at(step) {
                match &event.action {
                    ChaosAction::EndpointFault { host, port, fault } => {
                        registry.set_fault(host, *port, *fault)
                    }
                    ChaosAction::ClearEndpoint { host, port } => registry.clear_fault(host, *port),
                    other => panic!("plan contains unexpected action {other:?}"),
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    let violations = detect::take_violations();
    assert!(
        violations.is_empty(),
        "detector reported violations:\n{violations:#?}"
    );

    // The rendered trace carries the verdict for the experiment logs.
    let mut trace = webfindit::Trace::new();
    trace.analysis_event(
        "post-discovery concurrency check",
        dep.fed.client_orb().metrics(),
    );
    let rendered = trace.render();
    assert!(rendered.contains("lock-order cycles 0"), "{rendered}");
    assert!(rendered.contains("blocking violations 0"), "{rendered}");
    dep.fed.shutdown();
}

#[test]
fn orb_metrics_account_for_every_layer() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    let snap = |name: &str| dep.fed.orb(name).unwrap().metrics().snapshot();
    let visi_before = snap("VisiBroker");

    // One data query to an Oracle site (hosted on VisiBroker): exactly
    // one GIOP request served there (the ISI execute), plus the naming
    // lookup on the bootstrap ORB which we don't count here.
    processor
        .submit(
            &mut session,
            "Submit Native 'SELECT COUNT(*) FROM doctors' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    let visi_after = snap("VisiBroker");
    let d = visi_after.since(&visi_before);
    assert_eq!(d.requests_served, 1, "exactly the ISI execute");
    assert!(d.bytes_received > 12 && d.bytes_sent > 12);
    dep.fed.shutdown();
}
