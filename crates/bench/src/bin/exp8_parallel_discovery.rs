//! E8 — parallel wave-fanout discovery with co-database metadata
//! caching, over the 14-site healthcare deployment.
//!
//! For every (start site, topic) pair the serial engine classifies the
//! BFS depth at which the topic resolves; pairs are then bucketed by
//! depth and each bucket is timed under four engine configurations:
//!
//! * **serial / cold**  — `max_workers = 1`, caches cleared before
//!   every find (the pre-caching baseline),
//! * **serial / warm**  — `max_workers = 1`, caches primed,
//! * **parallel / cold** — `max_workers = 8`, caches cleared,
//! * **parallel / warm** — `max_workers = 8`, caches primed.
//!
//! Every parallel outcome is checked lead-for-lead against the serial
//! one (the determinism contract). Results (p50/p95 latency per depth
//! and the parallel+warm vs serial+cold speedup) are printed and
//! written to `BENCH_discovery.json`; EXPERIMENTS.md records them as
//! E8. `--quick` shrinks the iteration count for the CI smoke job.

use std::time::Instant;
use webfindit::discovery::DiscoveryEngine;
use webfindit::Federation;
use webfindit_bench::{header, percentile};
use webfindit_healthcare::build_healthcare;

struct Pair {
    start: String,
    topic: String,
}

struct Timing {
    p50_us: f64,
    p95_us: f64,
}

fn clear_caches(fed: &Federation, engine: &DiscoveryEngine) {
    fed.ior_cache().clear();
    engine.codb_cache().clear();
}

/// Time `iterations` finds of every pair under one configuration,
/// returning per-find latencies in microseconds.
fn run_config(
    fed: &Federation,
    engine: &DiscoveryEngine,
    pairs: &[Pair],
    iterations: usize,
    cold: bool,
) -> Vec<f64> {
    if !cold {
        // Prime both caches once; primed answers stay valid because
        // nothing mutates the co-databases during the measurement.
        clear_caches(fed, engine);
        for pair in pairs {
            engine.find(&pair.start, &pair.topic).expect("prime find");
        }
    }
    let mut samples = Vec::with_capacity(iterations * pairs.len());
    for _ in 0..iterations {
        for pair in pairs {
            if cold {
                clear_caches(fed, engine);
            }
            let started = Instant::now();
            let out = engine.find(&pair.start, &pair.topic).expect("timed find");
            samples.push(started.elapsed().as_micros() as f64);
            assert!(out.found(), "{} / {}", pair.start, pair.topic);
        }
    }
    samples
}

fn timing(samples: &[f64]) -> Timing {
    Timing {
        p50_us: percentile(samples, 50.0),
        p95_us: percentile(samples, 95.0),
    }
}

fn json_timing(name: &str, t: &Timing) -> String {
    format!(
        "\"{name}\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}}}",
        t.p50_us, t.p95_us
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iterations = if quick { 5 } else { 40 };
    header(
        "Experiment E8",
        "Parallel wave-fanout discovery with co-database metadata caching (healthcare, 14 sites)",
    );

    let dep = build_healthcare(1999).expect("healthcare deployment");
    let fed = dep.fed.clone();

    let mut serial = DiscoveryEngine::new(fed.clone());
    serial.max_workers = 1;
    let mut parallel = DiscoveryEngine::new(fed.clone());
    parallel.max_workers = 8;

    // Classify every (start, topic) pair by the depth the serial engine
    // resolves it at; keep up to 4 pairs per depth.
    let sites = fed.site_names();
    let mut topics: Vec<String> = sites
        .iter()
        .map(|s| fed.site(s).unwrap().descriptor.information_type.clone())
        .collect();
    topics.sort();
    topics.dedup();
    let starts: Vec<&String> = if quick {
        sites.iter().take(4).collect()
    } else {
        sites.iter().collect()
    };
    let mut by_depth: Vec<(usize, Vec<Pair>)> = Vec::new();
    for start in starts {
        for topic in &topics {
            clear_caches(&fed, &serial);
            let out = serial.find(start, topic).expect("classification find");
            let Some(depth) = out.stats.found_at_level else {
                continue;
            };
            if depth == 0 {
                continue; // local lookups never touch the network
            }
            let bucket = match by_depth.iter_mut().find(|(d, _)| *d == depth) {
                Some((_, b)) => b,
                None => {
                    by_depth.push((depth, Vec::new()));
                    &mut by_depth.last_mut().unwrap().1
                }
            };
            if bucket.len() < 4 {
                bucket.push(Pair {
                    start: start.clone(),
                    topic: topic.clone(),
                });
            }
        }
    }
    by_depth.sort_by_key(|(d, _)| *d);

    println!(
        "\n{:>5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "depth",
        "pairs",
        "ser-cold50",
        "ser-cold95",
        "ser-warm50",
        "ser-warm95",
        "par-cold50",
        "par-cold95",
        "par-warm50",
        "par-warm95",
        "speedup"
    );
    println!("{}", "-".repeat(126));

    let mut depth_objects = Vec::new();
    for (depth, pairs) in &by_depth {
        // Determinism check first: identical leads/degraded per pair.
        let mut identical = true;
        for pair in pairs {
            let s = serial.find(&pair.start, &pair.topic).unwrap();
            let p = parallel.find(&pair.start, &pair.topic).unwrap();
            identical &= s.leads == p.leads && s.degraded == p.degraded;
        }
        assert!(identical, "parallel output diverged at depth {depth}");

        let serial_cold = timing(&run_config(&fed, &serial, pairs, iterations, true));
        let serial_warm = timing(&run_config(&fed, &serial, pairs, iterations, false));
        let parallel_cold = timing(&run_config(&fed, &parallel, pairs, iterations, true));
        let parallel_warm = timing(&run_config(&fed, &parallel, pairs, iterations, false));
        let speedup = if parallel_warm.p50_us > 0.0 {
            serial_cold.p50_us / parallel_warm.p50_us
        } else {
            f64::INFINITY
        };

        println!(
            "{:>5} {:>5} | {:>10.0} {:>10.0} | {:>10.0} {:>10.0} | {:>10.0} {:>10.0} | {:>10.0} {:>10.0} | {:>7.2}x",
            depth,
            pairs.len(),
            serial_cold.p50_us,
            serial_cold.p95_us,
            serial_warm.p50_us,
            serial_warm.p95_us,
            parallel_cold.p50_us,
            parallel_cold.p95_us,
            parallel_warm.p50_us,
            parallel_warm.p95_us,
            speedup
        );

        depth_objects.push(format!(
            "    {{\"depth\": {depth}, \"pairs\": {}, {}, {}, {}, {}, \
             \"speedup_parallel_warm_vs_serial_cold\": {:.2}, \"identical_outcomes\": true}}",
            pairs.len(),
            json_timing("serial_cold", &serial_cold),
            json_timing("serial_warm", &serial_warm),
            json_timing("parallel_cold", &parallel_cold),
            json_timing("parallel_warm", &parallel_warm),
            speedup
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"E8\",\n  \"topology\": \"healthcare-14\",\n  \
         \"quick\": {quick},\n  \"iterations\": {iterations},\n  \"max_workers\": 8,\n  \
         \"depths\": [\n{}\n  ]\n}}\n",
        depth_objects.join(",\n")
    );
    std::fs::write("BENCH_discovery.json", &json).expect("write BENCH_discovery.json");
    println!(
        "\nwrote BENCH_discovery.json ({} depth buckets)",
        by_depth.len()
    );

    fed.shutdown();
}
