//! A pinning buffer pool over one page file.
//!
//! The pool owns a fixed set of [`PAGE_SIZE`](crate::file_mgr::PAGE_SIZE)
//! frames. Callers pin a page to work on it (reads fault it in from the
//! [`PageFileMgr`]) and unpin when done; dirty frames are written back
//! either when a clock-sweep eviction needs the frame or when the
//! storage layer flushes at a checkpoint barrier. Pinned frames are
//! never evicted; a pool where every frame is pinned reports
//! exhaustion instead of silently growing.

use crate::file_mgr::PageFileMgr;
use crate::{RelError, RelResult};
use std::collections::HashMap;

/// A frame index returned by [`BufferPool::pin`]; valid until the
/// matching [`BufferPool::unpin`].
pub type FrameId = usize;

#[derive(Debug)]
struct Frame {
    page_no: u64,
    payload: Vec<u8>,
    dirty: bool,
    pins: u32,
    /// Clock-sweep reference bit: set on pin, cleared as the hand passes.
    referenced: bool,
}

/// Cumulative pool counters (read by the storage stats).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Pins satisfied from a resident frame.
    pub hits: u64,
    /// Pins that faulted the page in from the file.
    pub misses: u64,
    /// Frames reclaimed by the clock sweep.
    pub evictions: u64,
    /// Pages written back to the file (evictions + flushes).
    pub pages_flushed: u64,
}

/// A pinning buffer pool over one [`PageFileMgr`].
#[derive(Debug)]
pub struct BufferPool {
    mgr: PageFileMgr,
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    capacity: usize,
    hand: usize,
    stats: BufferStats,
}

impl BufferPool {
    /// A pool of `capacity` frames over `mgr`.
    pub fn new(mgr: PageFileMgr, capacity: usize) -> BufferPool {
        BufferPool {
            mgr,
            frames: Vec::new(),
            map: HashMap::new(),
            capacity: capacity.max(1),
            hand: 0,
            stats: BufferStats::default(),
        }
    }

    /// The underlying page file manager.
    pub fn mgr(&self) -> &PageFileMgr {
        &self.mgr
    }

    /// Cumulative counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    fn free_frame(&mut self) -> RelResult<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_no: 0,
                payload: Vec::new(),
                dirty: false,
                pins: 0,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Clock sweep: skip pinned frames, clear reference bits, evict
        // the first unpinned unreferenced frame. Two full sweeps with
        // no victim means every frame is pinned.
        for _ in 0..2 * self.frames.len() {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[i];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            if f.dirty {
                self.mgr.write_page(f.page_no, &f.payload)?;
                self.stats.pages_flushed += 1;
            }
            self.map.remove(&self.frames[i].page_no);
            self.stats.evictions += 1;
            return Ok(i);
        }
        Err(RelError::Storage(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.capacity
        )))
    }

    /// Pin page `no`, faulting it in if absent. Errors with
    /// [`RelError::Corrupt`] when the on-file page fails its checksum.
    pub fn pin(&mut self, no: u64) -> RelResult<FrameId> {
        if let Some(&i) = self.map.get(&no) {
            self.stats.hits += 1;
            let f = &mut self.frames[i];
            f.pins += 1;
            f.referenced = true;
            return Ok(i);
        }
        self.stats.misses += 1;
        let payload = self.mgr.read_page(no)?.ok_or_else(|| {
            RelError::Corrupt(format!(
                "page {no} of {} is missing or fails its checksum",
                self.mgr.file()
            ))
        })?;
        let i = self.free_frame()?;
        self.frames[i] = Frame {
            page_no: no,
            payload,
            dirty: false,
            pins: 1,
            referenced: true,
        };
        self.map.insert(no, i);
        Ok(i)
    }

    /// Pin page `no` as a fresh dirty page with `payload`, without
    /// reading the file (page writers).
    pub fn pin_new(&mut self, no: u64, payload: Vec<u8>) -> RelResult<FrameId> {
        if let Some(&i) = self.map.get(&no) {
            self.stats.hits += 1;
            let f = &mut self.frames[i];
            f.payload = payload;
            f.dirty = true;
            f.pins += 1;
            f.referenced = true;
            return Ok(i);
        }
        self.stats.misses += 1;
        let i = self.free_frame()?;
        self.frames[i] = Frame {
            page_no: no,
            payload,
            dirty: true,
            pins: 1,
            referenced: true,
        };
        self.map.insert(no, i);
        Ok(i)
    }

    /// Borrow a pinned frame's payload.
    pub fn payload(&self, frame: FrameId) -> &[u8] {
        &self.frames[frame].payload
    }

    /// Replace a pinned frame's payload, marking it dirty.
    pub fn set_payload(&mut self, frame: FrameId, payload: Vec<u8>) {
        let f = &mut self.frames[frame];
        f.payload = payload;
        f.dirty = true;
    }

    /// Release one pin on `frame`.
    pub fn unpin(&mut self, frame: FrameId) {
        let f = &mut self.frames[frame];
        debug_assert!(f.pins > 0, "unpin without a pin");
        f.pins = f.pins.saturating_sub(1);
    }

    /// Page numbers of the currently dirty frames, sorted.
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| f.page_no)
            .collect();
        out.sort_unstable();
        out
    }

    /// Write one dirty page back to the file (leaving it resident and
    /// clean). No-op for clean or absent pages.
    pub fn flush_page(&mut self, no: u64) -> RelResult<bool> {
        let Some(&i) = self.map.get(&no) else {
            return Ok(false);
        };
        if !self.frames[i].dirty {
            return Ok(false);
        }
        self.mgr.write_page(no, &self.frames[i].payload)?;
        self.frames[i].dirty = false;
        self.stats.pages_flushed += 1;
        Ok(true)
    }

    /// Drop every frame (e.g. after the file was rewritten underneath).
    pub fn invalidate(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_mgr::{SimVfs, Vfs};
    use std::sync::Arc;

    fn pool(capacity: usize) -> (Arc<SimVfs>, BufferPool) {
        let vfs = SimVfs::new();
        let mgr = PageFileMgr::new(vfs.clone() as Arc<dyn Vfs>, "data");
        (vfs, BufferPool::new(mgr, capacity))
    }

    #[test]
    fn pin_faults_in_and_hits_thereafter() {
        let (_vfs, mut pool) = pool(4);
        pool.mgr().write_page(0, b"page zero").unwrap();
        let f = pool.pin(0).unwrap();
        assert_eq!(pool.payload(f), b"page zero");
        pool.unpin(f);
        let f2 = pool.pin(0).unwrap();
        pool.unpin(f2);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
    }

    #[test]
    fn eviction_writes_back_dirty_victims() {
        let (_vfs, mut pool) = pool(2);
        for i in 0..4u64 {
            let f = pool.pin_new(i, vec![i as u8; 8]).unwrap();
            pool.unpin(f);
        }
        let s = pool.stats();
        assert!(s.evictions >= 2, "small pool must evict: {s:?}");
        assert!(s.pages_flushed >= 2, "dirty victims written: {s:?}");
        // Evicted pages fault back in with their written contents.
        let f = pool.pin(0).unwrap();
        assert_eq!(pool.payload(f), &[0u8; 8]);
        pool.unpin(f);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (_vfs, mut pool) = pool(2);
        let a = pool.pin_new(0, vec![1]).unwrap();
        let b = pool.pin_new(1, vec![2]).unwrap();
        // Both frames pinned: a third pin must report exhaustion.
        assert!(matches!(
            pool.pin_new(2, vec![3]),
            Err(RelError::Storage(_))
        ));
        pool.unpin(a);
        pool.unpin(b);
        let c = pool.pin_new(2, vec![3]).unwrap();
        pool.unpin(c);
    }

    #[test]
    fn corrupt_page_is_a_corrupt_error() {
        let (vfs, mut pool) = pool(2);
        pool.mgr().write_page(0, b"valid").unwrap();
        vfs.corrupt("data", 20, &[0xee]);
        assert!(matches!(pool.pin(0), Err(RelError::Corrupt(_))));
    }

    #[test]
    fn flush_page_and_dirty_tracking() {
        let (_vfs, mut pool) = pool(4);
        let f = pool.pin_new(3, b"dirty".to_vec()).unwrap();
        pool.unpin(f);
        assert_eq!(pool.dirty_pages(), vec![3]);
        assert!(pool.flush_page(3).unwrap());
        assert!(!pool.flush_page(3).unwrap(), "second flush is a no-op");
        assert!(pool.dirty_pages().is_empty());
        assert_eq!(pool.mgr().read_page(3).unwrap().unwrap(), b"dirty");
    }
}
