//! A minimal lock-table transaction manager.
//!
//! relstore databases are single-threaded behind the connect layer's
//! `Arc<Mutex<Database>>`, so the lock table's job is not concurrency
//! control between threads — it is conflict *accounting* between the
//! logical transactions that interleave through one session (and a
//! guard rail for any future multi-session engine). Locks are
//! table-granular and exclusive; a transaction touching a table locked
//! by another live transaction gets [`RelError::LockConflict`]
//! immediately (no-wait policy — the simplest deadlock-free choice).

use crate::{RelError, RelResult};
use std::collections::HashMap;

/// A transaction id, monotonically assigned by [`TxManager::begin`].
pub type TxId = u64;

/// Allocates transaction ids and tracks table-granular exclusive locks.
#[derive(Debug)]
pub struct TxManager {
    next: TxId,
    /// table name (lowercase) -> holder.
    locks: HashMap<String, TxId>,
}

impl TxManager {
    /// A manager whose first transaction id will be `first`.
    pub fn new(first: TxId) -> TxManager {
        TxManager {
            next: first.max(1),
            locks: HashMap::new(),
        }
    }

    /// The id the next [`TxManager::begin`] will hand out.
    pub fn next_tx(&self) -> TxId {
        self.next
    }

    /// Start a transaction.
    pub fn begin(&mut self) -> TxId {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Take (or re-take) the exclusive lock on `table` for `tx`.
    /// No-wait: a conflicting holder is an immediate error.
    pub fn lock(&mut self, tx: TxId, table: &str) -> RelResult<()> {
        match self.locks.get(table) {
            Some(&holder) if holder != tx => Err(RelError::LockConflict(format!(
                "table '{table}' is locked by transaction {holder} (wanted by {tx})"
            ))),
            _ => {
                self.locks.insert(table.to_string(), tx);
                Ok(())
            }
        }
    }

    /// Drop every lock `tx` holds (commit or rollback).
    pub fn release(&mut self, tx: TxId) {
        self.locks.retain(|_, holder| *holder != tx);
    }

    /// Number of tables currently locked (test hook).
    pub fn locked_tables(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_and_resumable() {
        let mut txm = TxManager::new(7);
        assert_eq!(txm.begin(), 7);
        assert_eq!(txm.begin(), 8);
        assert_eq!(txm.next_tx(), 9);
        // Zero start is bumped so tx id 0 never exists.
        assert_eq!(TxManager::new(0).next_tx(), 1);
    }

    #[test]
    fn exclusive_locks_conflict_and_release() {
        let mut txm = TxManager::new(1);
        let a = txm.begin();
        let b = txm.begin();
        txm.lock(a, "beds").unwrap();
        txm.lock(a, "beds").unwrap(); // re-entrant for the holder
        assert!(matches!(
            txm.lock(b, "beds"),
            Err(RelError::LockConflict(_))
        ));
        txm.lock(b, "wards").unwrap();
        assert_eq!(txm.locked_tables(), 2);
        txm.release(a);
        txm.lock(b, "beds").unwrap();
        txm.release(b);
        assert_eq!(txm.locked_tables(), 0);
    }
}
