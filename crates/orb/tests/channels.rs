//! Multiplexed-channel tests against a *scripted* raw-GIOP peer.
//!
//! A real ORB always replies in dispatch order, so it cannot exercise
//! the demultiplexer's correlation logic. These tests stand up a bare
//! `TcpListener` that buffers every incoming Request and then replies
//! in a seed-shuffled order, proving each parked caller receives
//! exactly its own reply — and that an expired deadline really puts a
//! GIOP CancelRequest on the wire.

use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;
use webfindit_base::prop;
use webfindit_base::rng::StdRng;
use webfindit_base::sync::Mutex;
use webfindit_orb::{CallOptions, Orb, OrbConfig, OrbDomain, OrbError, RetryPolicy};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{self, GiopMessage};
use webfindit_wire::transport::{FramedTcp, Transport};
use webfindit_wire::{Ior, Value};

/// A decoded Request observed by the scripted peer, tagged with the
/// connection it arrived on so the reply goes back the same way.
struct SeenRequest {
    conn: usize,
    request_id: u32,
    args: Vec<Value>,
}

/// Accept connections and forward every decoded GIOP message (tagged
/// with its connection index) to `tx`; replies are sent through the
/// returned per-connection writers.
fn scripted_peer(
    listener: TcpListener,
    tx: mpsc::Sender<(usize, GiopMessage)>,
) -> Arc<Mutex<Vec<FramedTcp>>> {
    let writers: Arc<Mutex<Vec<FramedTcp>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_writers = Arc::clone(&writers);
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = FramedTcp::new(stream);
            let writer = reader.try_clone().expect("clone scripted stream");
            let conn = {
                let mut w = accept_writers.lock();
                w.push(writer);
                w.len() - 1
            };
            let tx = tx.clone();
            thread::spawn(move || {
                while let Ok(frame) = reader.recv_frame() {
                    let msg = GiopMessage::decode_frame(&frame).expect("scripted peer decodes");
                    if tx.send((conn, msg)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    writers
}

/// A client ORB pointed at the scripted peer's address under a fake
/// IIOP endpoint name.
fn client_for(addr: std::net::SocketAddr) -> (Arc<Orb>, Ior) {
    let domain = OrbDomain::new();
    let client = Orb::start(
        OrbConfig::new("C", "client.example", 1, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .expect("client orb starts");
    domain.register_endpoint("scripted.example", 4242, addr);
    let ior = Ior::new_iiop(
        "IDL:test/Scripted:1.0",
        "scripted.example",
        4242,
        b"scripted".to_vec(),
    );
    (client, ior)
}

/// Property: N concurrent callers multiplexed over one endpoint each
/// receive exactly their own reply, no matter how the peer reorders
/// replies across and within connections.
#[test]
fn prop_concurrent_callers_survive_reply_reordering() {
    prop::cases(6, |rng| {
        let callers = rng.gen_range(2..9usize);
        let shuffle_seed = rng.next_u64();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted peer");
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        let writers = scripted_peer(listener, tx);

        // The replier is also the barrier: nobody gets an answer until
        // every caller's request is buffered, so all are in flight at
        // once; then replies go out in a seed-shuffled order.
        let replier = thread::spawn(move || {
            let mut pending: Vec<SeenRequest> = Vec::new();
            while pending.len() < callers {
                let (conn, msg) = rx.recv().expect("peer reader alive");
                match msg {
                    GiopMessage::Request { header, args } => pending.push(SeenRequest {
                        conn,
                        request_id: header.request_id,
                        args,
                    }),
                    other => panic!("unexpected message kind {:?}", other.kind()),
                }
            }
            StdRng::seed_from_u64(shuffle_seed).shuffle(&mut pending);
            for req in pending {
                let body = req.args.into_iter().next().unwrap_or(Value::Null);
                let frame = giop::reply_ok(req.request_id, body)
                    .encode(ByteOrder::BigEndian)
                    .expect("reply encodes");
                writers.lock()[req.conn]
                    .send_frame(&frame)
                    .expect("reply sends");
            }
        });

        let (client, ior) = client_for(addr);
        let handles: Vec<_> = (0..callers)
            .map(|i| {
                let client = Arc::clone(&client);
                let ior = ior.clone();
                thread::spawn(move || {
                    let payload = format!("payload-{i}");
                    let got = client
                        .invoke(&ior, "echo", &[Value::string(payload.clone())])
                        .expect("echo call completes");
                    assert_eq!(got.as_str(), Some(payload.as_str()));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread");
        }
        replier.join().expect("replier thread");

        let snap = client.metrics().snapshot();
        assert_eq!(snap.requests_sent, callers as u64);
        assert_eq!(snap.in_flight, 0, "all callers unparked");
        client.shutdown();
    });
}

/// An expired deadline must surface `DeadlineExpired` to the caller
/// *and* put a GIOP CancelRequest for the same request id on the wire.
#[test]
fn deadline_expiry_sends_cancel_request() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted peer");
    let addr = listener.local_addr().unwrap();
    let (tx, rx) = mpsc::channel();
    let _writers = scripted_peer(listener, tx);
    let (client, ior) = client_for(addr);

    let options = CallOptions {
        deadline: Some(Duration::from_millis(80)),
        retry: RetryPolicy::never(),
    };
    match client.invoke_with(&ior, "stall", &[], &options) {
        Err(OrbError::DeadlineExpired { operation_deadline }) => {
            assert_eq!(operation_deadline, Duration::from_millis(80));
        }
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }

    // The scripted peer never replies, so the wire traffic must be the
    // Request followed by its CancelRequest.
    let (_, first) = rx.recv().expect("request observed");
    let stalled_id = match first {
        GiopMessage::Request { header, .. } => header.request_id,
        other => panic!("expected Request first, got {:?}", other.kind()),
    };
    let (_, second) = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("cancel observed");
    match second {
        GiopMessage::CancelRequest { request_id } => assert_eq!(request_id, stalled_id),
        other => panic!("expected CancelRequest, got {:?}", other.kind()),
    }
    assert_eq!(client.metrics().snapshot().timeouts, 1);
    client.shutdown();
}
