//! Opt-in lock-order and hold-across-blocking detector.
//!
//! Compiled in by the `deadlock-detect` feature; without it every entry
//! point here is a zero-cost stub so callers (and tests) can link
//! unconditionally. The detector is deliberately built on raw
//! `std::sync` primitives — it must never recurse into the wrappers it
//! instruments.
//!
//! Model: each [`crate::sync::Mutex`]/[`crate::sync::RwLock`] gets a
//! process-unique id on first acquisition plus a site label (explicit
//! via `new_labeled`, else the first acquisition's `file:line`). Each
//! thread keeps a stack of held lock ids; each blocking acquisition
//! records acquired-before edges `held → new` in a global graph and is
//! rejected (reported, not blocked) if the reverse path already exists
//! — the classic ABBA inversion. [`blocking_region`] brackets
//! operations that can block indefinitely on the network (socket
//! send/recv, connect, reply waits); holding a non-exempt lock when
//! entering one, or acquiring a lock inside one, is reported.
//!
//! Reports are deduplicated globally by site pair / site+region, pushed
//! to a process-wide list that tests drain via [`take_violations`], and
//! tallied in [`counters`] for export through `OrbMetrics`.

/// Classification of a detector report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two locks are acquired in inconsistent order on different code
    /// paths — a potential ABBA deadlock.
    LockOrderCycle,
    /// A non-exempt lock was held while entering a blocking region.
    HoldAcrossBlocking,
    /// A lock was acquired while inside a blocking region.
    AcquireInBlocking,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::LockOrderCycle => "lock-order-cycle",
            ViolationKind::HoldAcrossBlocking => "hold-across-blocking",
            ViolationKind::AcquireInBlocking => "acquire-in-blocking",
        };
        f.write_str(s)
    }
}

/// One deduplicated detector report.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// One-line human-readable description naming the sites involved.
    pub message: String,
    /// Supporting context: thread name, the labels of every lock held
    /// at the time, and a captured backtrace.
    pub detail: String,
}

/// Monotonic totals of reports since process start (not reset by
/// [`take_violations`]); exported through `OrbMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Count of [`ViolationKind::LockOrderCycle`] reports.
    pub lock_order_cycles: u64,
    /// Count of hold-across / acquire-in blocking-region reports.
    pub blocking_violations: u64,
}

/// Whether the detector was compiled into this build.
pub const fn enabled() -> bool {
    cfg!(feature = "deadlock-detect")
}

#[cfg(feature = "deadlock-detect")]
mod imp {
    use super::{Counters, Violation, ViolationKind};
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// How an acquisition can wait.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum AcquireKind {
        /// May block indefinitely — participates in cycle and
        /// blocking-region checks.
        Blocking,
        /// `try_lock` — fails fast, so it can never close a deadlock
        /// cycle; registered as held but not checked.
        Try,
    }

    /// Per-lock detector state embedded in each wrapper. All fields are
    /// const-initializable so `Mutex::new` stays `const fn`.
    pub struct LockMeta {
        id: AtomicU64,
        label: OnceLock<&'static str>,
        exempt: OnceLock<&'static str>,
    }

    struct LockInfo {
        label: String,
        exempt: Option<&'static str>,
    }

    struct State {
        registry: Mutex<HashMap<u64, LockInfo>>,
        /// Acquired-before graph: `held → newly acquired`.
        edges: Mutex<HashMap<u64, HashSet<u64>>>,
        reported: Mutex<HashSet<String>>,
        violations: Mutex<Vec<Violation>>,
        cycles: AtomicU64,
        blocking: AtomicU64,
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static STATE: OnceLock<State> = OnceLock::new();

    fn state() -> &'static State {
        STATE.get_or_init(|| State {
            registry: Mutex::new(HashMap::new()),
            edges: Mutex::new(HashMap::new()),
            reported: Mutex::new(HashSet::new()),
            violations: Mutex::new(Vec::new()),
            cycles: AtomicU64::new(0),
            blocking: AtomicU64::new(0),
        })
    }

    thread_local! {
        /// Lock ids currently held by this thread, in acquisition order.
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        /// Blocking-region sites this thread is currently inside.
        static REGION: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    impl Default for LockMeta {
        fn default() -> Self {
            Self::new()
        }
    }

    impl LockMeta {
        /// Fresh, unregistered per-lock state (const so `Mutex::new`
        /// stays a `const fn`).
        pub const fn new() -> Self {
            LockMeta {
                id: AtomicU64::new(0),
                label: OnceLock::new(),
                exempt: OnceLock::new(),
            }
        }

        /// Record a curated site label for this lock (first call wins).
        pub fn set_label(&self, label: &'static str) {
            let _ = self.label.set(label);
            // Re-registering under the curated name if the lock was
            // already acquired under its first-site name.
            let id = self.id.load(Ordering::Relaxed);
            if id != 0 {
                if let Ok(mut reg) = state().registry.lock() {
                    if let Some(info) = reg.get_mut(&id) {
                        info.label = label.to_string();
                    }
                }
            }
        }

        /// Exempt this lock from blocking-region rules with a
        /// justification (first call wins).
        pub fn set_exempt(&self, justification: &'static str) {
            let _ = self.exempt.set(justification);
            let id = self.id.load(Ordering::Relaxed);
            if id != 0 {
                if let Ok(mut reg) = state().registry.lock() {
                    if let Some(info) = reg.get_mut(&id) {
                        info.exempt = Some(justification);
                    }
                }
            }
        }

        /// Register this lock (first time) and run the pre-acquisition
        /// checks; returns the lock's process-unique id.
        #[track_caller]
        pub fn pre_acquire(&self, kind: AcquireKind) -> u64 {
            let loc = Location::caller();
            let id = self.ensure_registered(loc);
            if kind == AcquireKind::Blocking {
                check_acquire_in_region(id);
                check_and_record_order(id);
            }
            id
        }

        fn ensure_registered(&self, loc: &Location<'_>) -> u64 {
            let existing = self.id.load(Ordering::Acquire);
            if existing != 0 {
                return existing;
            }
            let candidate = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            match self
                .id
                .compare_exchange(0, candidate, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    let label = match self.label.get() {
                        Some(l) => (*l).to_string(),
                        None => format!("{}:{}", loc.file(), loc.line()),
                    };
                    let exempt = self.exempt.get().copied();
                    if let Ok(mut reg) = state().registry.lock() {
                        reg.insert(candidate, LockInfo { label, exempt });
                    }
                    candidate
                }
                Err(winner) => winner,
            }
        }
    }

    fn label_of(id: u64) -> String {
        state()
            .registry
            .lock()
            .ok()
            .and_then(|reg| reg.get(&id).map(|i| i.label.clone()))
            .unwrap_or_else(|| format!("lock#{id}"))
    }

    fn is_exempt(id: u64) -> bool {
        state()
            .registry
            .lock()
            .ok()
            .and_then(|reg| reg.get(&id).map(|i| i.exempt.is_some()))
            .unwrap_or(false)
    }

    fn held_labels(held: &[u64]) -> String {
        if held.is_empty() {
            return "none".to_string();
        }
        held.iter()
            .map(|&h| label_of(h))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    fn report(kind: ViolationKind, dedup_key: String, message: String, held: &[u64]) {
        let st = state();
        {
            let mut seen = match st.reported.lock() {
                Ok(s) => s,
                Err(e) => e.into_inner(),
            };
            if !seen.insert(dedup_key) {
                return;
            }
        }
        match kind {
            ViolationKind::LockOrderCycle => st.cycles.fetch_add(1, Ordering::Relaxed),
            _ => st.blocking.fetch_add(1, Ordering::Relaxed),
        };
        let thread = std::thread::current();
        let detail = format!(
            "thread={} held=[{}]\nbacktrace:\n{}",
            thread.name().unwrap_or("<unnamed>"),
            held_labels(held),
            std::backtrace::Backtrace::force_capture()
        );
        let violation = Violation {
            kind,
            message,
            detail,
        };
        let mut v = match st.violations.lock() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        };
        v.push(violation);
    }

    /// Flag acquiring a lock while inside a blocking region.
    fn check_acquire_in_region(id: u64) {
        let region = REGION
            .try_with(|r| r.borrow().last().copied())
            .ok()
            .flatten();
        let Some(site) = region else { return };
        if is_exempt(id) {
            return;
        }
        let held = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        report(
            ViolationKind::AcquireInBlocking,
            format!("acq-in-region:{}@{}", label_of(id), site),
            format!(
                "lock `{}` acquired inside blocking region `{}`",
                label_of(id),
                site
            ),
            &held,
        );
    }

    /// Record `held → id` edges and flag any pre-existing reverse path
    /// (an inconsistent acquisition order between the two sites).
    fn check_and_record_order(id: u64) {
        let held = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        if held.is_empty() {
            return;
        }
        let st = state();
        let mut edges = match st.edges.lock() {
            Ok(e) => e,
            Err(e) => e.into_inner(),
        };
        for &h in &held {
            if h == id {
                continue; // re-entrant same-lock id (rwlock read twice)
            }
            if path_exists(&edges, id, h) {
                let (a, b) = (label_of(id), label_of(h));
                drop(edges);
                report(
                    ViolationKind::LockOrderCycle,
                    format!("cycle:{a}<->{b}"),
                    format!(
                        "inconsistent lock order: `{b}` then `{a}` here, but `{a}` then `{b}` elsewhere"
                    ),
                    &held,
                );
                edges = match st.edges.lock() {
                    Ok(e) => e,
                    Err(e) => e.into_inner(),
                };
            }
            edges.entry(h).or_default().insert(id);
        }
    }

    /// Depth-first reachability `from → … → to` in the acquired-before
    /// graph.
    fn path_exists(edges: &HashMap<u64, HashSet<u64>>, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Mark `id` as held by the current thread.
    pub fn post_acquire(id: u64) {
        let _ = HELD.try_with(|h| h.borrow_mut().push(id));
    }

    /// Remove the most recent hold of `id` (guards may be dropped out
    /// of acquisition order).
    pub fn on_release(id: u64) {
        let _ = HELD.try_with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&x| x == id) {
                h.remove(pos);
            }
        });
    }

    /// Enter a blocking region for the duration of `f`.
    pub fn blocking_region<R>(site: &'static str, f: impl FnOnce() -> R) -> R {
        let held = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        for &id in &held {
            if is_exempt(id) {
                continue;
            }
            report(
                ViolationKind::HoldAcrossBlocking,
                format!("hold-across:{}@{}", label_of(id), site),
                format!(
                    "lock `{}` held while entering blocking region `{}`",
                    label_of(id),
                    site
                ),
                &held,
            );
        }
        let entered = REGION.try_with(|r| r.borrow_mut().push(site)).is_ok();
        struct Pop(bool);
        impl Drop for Pop {
            fn drop(&mut self) {
                if self.0 {
                    let _ = REGION.try_with(|r| {
                        r.borrow_mut().pop();
                    });
                }
            }
        }
        let _pop = Pop(entered);
        f()
    }

    /// Drain all accumulated violations.
    pub fn take_violations() -> Vec<Violation> {
        let mut v = match state().violations.lock() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        };
        std::mem::take(&mut *v)
    }

    /// Monotonic report totals.
    pub fn counters() -> Counters {
        let st = state();
        Counters {
            lock_order_cycles: st.cycles.load(Ordering::Relaxed),
            blocking_violations: st.blocking.load(Ordering::Relaxed),
        }
    }

    /// Every registered lock that declared a hold-across-blocking
    /// exemption, as `(label, justification)` pairs.
    pub fn exemptions() -> Vec<(String, String)> {
        let reg = match state().registry.lock() {
            Ok(r) => r,
            Err(e) => e.into_inner(),
        };
        let mut out: Vec<(String, String)> = reg
            .values()
            .filter_map(|i| i.exempt.map(|j| (i.label.clone(), j.to_string())))
            .collect();
        out.sort();
        out
    }
}

#[cfg(feature = "deadlock-detect")]
pub use imp::{
    blocking_region, counters, exemptions, on_release, post_acquire, take_violations, AcquireKind,
    LockMeta,
};

#[cfg(not(feature = "deadlock-detect"))]
mod stub {
    use super::{Counters, Violation};

    /// Enter a blocking region for the duration of `f` (no-op without
    /// the `deadlock-detect` feature).
    #[inline(always)]
    pub fn blocking_region<R>(_site: &'static str, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Drain all accumulated violations (always empty without the
    /// `deadlock-detect` feature).
    #[inline(always)]
    pub fn take_violations() -> Vec<Violation> {
        Vec::new()
    }

    /// Monotonic report totals (always zero without the feature).
    #[inline(always)]
    pub fn counters() -> Counters {
        Counters::default()
    }

    /// Declared exemptions (always empty without the feature).
    #[inline(always)]
    pub fn exemptions() -> Vec<(String, String)> {
        Vec::new()
    }
}

#[cfg(not(feature = "deadlock-detect"))]
pub use stub::{blocking_region, counters, exemptions, take_violations};
