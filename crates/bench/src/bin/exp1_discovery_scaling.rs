//! E1 — discovery cost vs. federation size: WebFINDIT's incremental
//! coalition/service-link routing against flat broadcast and a
//! centralized global index.
//!
//! Workload: for each federation size N, sample query pairs
//! (start site, target topic) with geometrically distributed semantic
//! distance (most queries are near the asker's own interests — the
//! paper's premise that "databases are developed with a specific
//! purpose" and users start from a related database). Report mean
//! round-trips per query, mean sites visited, and the one-off
//! registration cost each organization pays.

use webfindit::baselines::{CentralIndex, FlatBroadcast};
use webfindit::discovery::DiscoveryEngine;
use webfindit::synth::{build, SynthConfig, SynthFederation};
use webfindit_base::rng::StdRng;
use webfindit_bench::{header, mean};

fn geometric_distance(rng: &mut StdRng, max: usize) -> usize {
    // P(d) ∝ 0.5^d, truncated.
    let mut d = 0;
    while d < max && rng.gen_bool(0.5) {
        d += 1;
    }
    d
}

fn main() {
    header(
        "Experiment E1",
        "Discovery cost vs federation size (WebFINDIT vs broadcast vs central index)",
    );
    println!(
        "\n{:>5} {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>14}",
        "N",
        "coals",
        "WF rt/query",
        "WF visited",
        "BC rt/query",
        "BC visited",
        "CX rt/query",
        "CX build-cost"
    );
    println!("{}", "-".repeat(110));

    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let synth = build(&SynthConfig {
            databases: n,
            coalition_size: 4,
            orbs: 4,
            extra_links: n / 16,
            ring_links: true,
            seed: 1999,
        })
        .expect("synthetic federation");
        let engine = DiscoveryEngine::new(synth.fed.clone());
        let flat = FlatBroadcast::new(synth.fed.clone());
        let central = CentralIndex::build(synth.fed.clone()).expect("central index");

        let mut rng = StdRng::seed_from_u64(7 + n as u64);
        let queries = 30;
        let (mut wf_rt, mut wf_vis, mut bc_rt, mut bc_vis, mut cx_rt) =
            (vec![], vec![], vec![], vec![], vec![]);
        for _ in 0..queries {
            let start_coalition = rng.gen_range(0..synth.coalition_count());
            let dist = geometric_distance(&mut rng, synth.coalition_count() - 1);
            let target = (start_coalition + dist) % synth.coalition_count();
            let start = synth.member_of(start_coalition).to_owned();
            let topic = SynthFederation::topic(target);

            let wf = engine.find(&start, &topic).expect("wf");
            assert!(wf.found(), "WebFINDIT must find {topic} from {start}");
            wf_rt.push(wf.stats.total_round_trips() as f64);
            wf_vis.push(wf.stats.sites_visited as f64);

            let bc = flat.find(&topic).expect("bc");
            assert!(bc.found());
            bc_rt.push(bc.stats.total_round_trips() as f64);
            bc_vis.push(bc.stats.sites_visited as f64);

            let cx = central.find(&topic).expect("cx");
            assert!(cx.found());
            cx_rt.push(cx.stats.total_round_trips() as f64);
        }
        println!(
            "{:>5} {:>6} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>12.1} {:>14}",
            n,
            synth.coalition_count(),
            mean(&wf_rt),
            mean(&wf_vis),
            mean(&bc_rt),
            mean(&bc_vis),
            mean(&cx_rt),
            central.registration_calls,
        );
        synth.fed.shutdown();
    }

    println!(
        "\nReading: WebFINDIT round-trips track semantic distance, not N;\n\
         broadcast scales linearly with N every query; the central index is\n\
         O(1) per query but its build/maintenance cost scales with total\n\
         advertisements and funnels through one site."
    );
}
