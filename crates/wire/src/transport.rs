//! Framed byte transports for GIOP.
//!
//! GIOP is transport-agnostic; IIOP is its mapping to TCP. WebFINDIT's
//! three ORBs talk IIOP over real sockets, so this module provides:
//!
//! * [`FramedTcp`] — GIOP framing over a `TcpStream` (the genuine IIOP
//!   path used by the multi-ORB integration tests and benches);
//! * [`PipeTransport`] — an in-process duplex pipe with identical framing
//!   semantics, for fast deterministic tests and single-process
//!   deployments;
//! * [`FaultyTransport`] — a wrapper that injects truncation and
//!   corruption faults, used by the failure-injection tests.
//!
//! All transports move whole frames: a 12-byte GIOP header followed by
//! exactly `body_size` bytes.

use crate::bufpool::FrameBuf;
use crate::giop::{GiopHeader, GiopMessage};
use crate::{WireError, WireResult};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;
use webfindit_base::sync::{detect, Mutex};

/// A bidirectional, message-framed byte channel.
pub trait Transport: Send {
    /// Send one complete GIOP frame.
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()>;

    /// Receive one complete GIOP frame (header + body).
    fn recv_frame(&mut self) -> WireResult<Vec<u8>>;

    /// Encode and send a message in one step.
    fn send_message(&mut self, msg: &GiopMessage, order: crate::cdr::ByteOrder) -> WireResult<()> {
        let frame = msg.encode(order)?;
        self.send_frame(&frame)
    }

    /// Receive and decode a message in one step.
    fn recv_message(&mut self) -> WireResult<GiopMessage> {
        let frame = self.recv_frame()?;
        GiopMessage::decode_frame(&frame)
    }
}

/// Kinds of injected transport faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// Deliver frames untouched.
    #[default]
    None,
    /// Cut each outgoing frame to at most this many bytes.
    Truncate(usize),
    /// Overwrite the GIOP magic of outgoing frames.
    CorruptMagic,
    /// Flip the declared body size to a huge value.
    InflateSize,
    /// Drop outgoing frames entirely (the receiver sees `Closed` when the
    /// wrapper is later dropped, or blocks — callers pair this with
    /// timeouts).
    DropFrames,
    /// Hold every frame for this many milliseconds before letting it
    /// through (both directions) — simulated link latency.
    DelayMs(u64),
    /// Let this many frames through, then drop every later one (each
    /// direction counts its own frames). Simulates a link that silently
    /// starts losing traffic mid-conversation.
    DropAfter(u64),
    /// Sever the connection in the middle of the next frame: the send
    /// path writes only half the frame before closing, so the peer sees
    /// a genuine mid-frame connection loss; the receive path reports
    /// `Closed` without delivering.
    CloseMidFrame,
}

/// An [`Arc`]-shared, mutable fault setting.
///
/// The slot is shared between a transport and the chaos controller (and
/// between the reader/writer clones of one TCP connection), so a test
/// can flip the active fault on a *live* connection while traffic is in
/// flight. Cloning shares the underlying slot.
#[derive(Debug, Clone, Default)]
pub struct FaultSlot(Arc<Mutex<Fault>>);

impl FaultSlot {
    /// A slot pre-loaded with `fault`.
    pub fn new(fault: Fault) -> Self {
        FaultSlot(Arc::new(Mutex::new_labeled(fault, "wire::FaultSlot")))
    }

    /// Replace the active fault.
    pub fn set(&self, fault: Fault) {
        *self.0.lock() = fault;
    }

    /// Back to faultless delivery.
    pub fn clear(&self) {
        self.set(Fault::None);
    }

    /// The currently active fault.
    pub fn get(&self) -> Fault {
        *self.0.lock()
    }
}

/// What the fault logic decided to do with an outgoing frame.
enum SendPlan {
    /// Send these bytes.
    Send(Vec<u8>),
    /// Pretend success without sending anything.
    Swallow,
    /// Send these (partial) bytes, then sever the connection.
    SendPartThenClose(Vec<u8>),
}

/// What the fault logic decided to do with a received frame.
enum RecvPlan {
    /// Hand the frame to the caller.
    Deliver(Vec<u8>),
    /// Silently discard it and wait for the next one.
    Discard,
    /// Sever the connection instead of delivering.
    Close,
}

/// Per-transport fault bookkeeping around a shared [`FaultSlot`].
///
/// The slot is shared; the frame counters and the severed flag are per
/// transport instance, so the writer and reader halves of one TCP
/// connection count their own directions.
#[derive(Debug, Default)]
struct FaultState {
    slot: FaultSlot,
    sent: u64,
    received: u64,
    severed: bool,
}

impl FaultState {
    fn plan_send(&mut self, frame: &[u8]) -> WireResult<SendPlan> {
        if self.severed {
            return Err(WireError::Closed);
        }
        Ok(match self.slot.get() {
            Fault::None => SendPlan::Send(frame.to_vec()),
            Fault::Truncate(n) => SendPlan::Send(frame[..frame.len().min(n)].to_vec()),
            Fault::CorruptMagic => {
                let mut f = frame.to_vec();
                if f.len() >= 4 {
                    f[..4].copy_from_slice(b"POIG");
                }
                SendPlan::Send(f)
            }
            Fault::InflateSize => {
                let mut f = frame.to_vec();
                if f.len() >= 12 {
                    // Body size field at offset 8; write an absurd size in
                    // the frame's own byte order (bit 0 of flags octet).
                    let huge = (crate::MAX_MESSAGE_SIZE + 17).to_be_bytes();
                    let huge_le = (crate::MAX_MESSAGE_SIZE + 17).to_le_bytes();
                    if f[6] & 1 == 0 {
                        f[8..12].copy_from_slice(&huge);
                    } else {
                        f[8..12].copy_from_slice(&huge_le);
                    }
                }
                SendPlan::Send(f)
            }
            Fault::DropFrames => SendPlan::Swallow,
            Fault::DelayMs(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                SendPlan::Send(frame.to_vec())
            }
            Fault::DropAfter(n) => {
                self.sent += 1;
                if self.sent <= n {
                    SendPlan::Send(frame.to_vec())
                } else {
                    SendPlan::Swallow
                }
            }
            Fault::CloseMidFrame => {
                self.severed = true;
                SendPlan::SendPartThenClose(frame[..frame.len() / 2].to_vec())
            }
        })
    }

    fn plan_recv(&mut self, frame: Vec<u8>) -> WireResult<RecvPlan> {
        if self.severed {
            return Err(WireError::Closed);
        }
        Ok(match self.slot.get() {
            Fault::DelayMs(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                RecvPlan::Deliver(frame)
            }
            Fault::DropAfter(n) => {
                self.received += 1;
                if self.received <= n {
                    RecvPlan::Deliver(frame)
                } else {
                    RecvPlan::Discard
                }
            }
            Fault::CloseMidFrame => {
                self.severed = true;
                RecvPlan::Close
            }
            _ => RecvPlan::Deliver(frame),
        })
    }
}

/// GIOP framing over a TCP stream — the literal IIOP of the paper.
#[derive(Debug)]
pub struct FramedTcp {
    stream: TcpStream,
    fault: FaultState,
}

impl FramedTcp {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        FramedTcp {
            stream,
            fault: FaultState::default(),
        }
    }

    /// Connect to `host:port` with a bounded timeout so a dead endpoint
    /// fails fast instead of hanging a discovery traversal.
    pub fn connect(host: &str, port: u16) -> WireResult<Self> {
        let addr = format!("{host}:{port}");
        let stream =
            detect::blocking_region("wire::FramedTcp::connect", || TcpStream::connect(&addr))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(FramedTcp::new(stream))
    }

    /// Clone the underlying stream (TCP streams are duplicable handles).
    /// The fault slot is shared with the clone; frame counters are not,
    /// so each direction of a split connection counts its own traffic.
    pub fn try_clone(&self) -> WireResult<Self> {
        Ok(FramedTcp {
            stream: self.stream.try_clone()?,
            fault: FaultState {
                slot: self.fault.slot.clone(),
                ..FaultState::default()
            },
        })
    }

    /// Set or clear the read timeout on the underlying stream.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> WireResult<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sever both directions of the underlying stream, unblocking any
    /// thread parked in `recv_frame` on a clone of this transport.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// The fault slot governing this connection (shared with clones).
    pub fn fault_slot(&self) -> FaultSlot {
        self.fault.slot.clone()
    }

    /// Replace the fault slot, wiring this connection to an externally
    /// controlled slot — the chaos hook: a [`crate::transport::FaultSlot`]
    /// held by a chaos controller lets faults be flipped on the live
    /// connection at any time.
    pub fn install_fault_slot(&mut self, slot: FaultSlot) {
        self.fault.slot = slot;
    }
}

impl Transport for FramedTcp {
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()> {
        match self.fault.plan_send(frame)? {
            SendPlan::Send(bytes) => {
                let stream = &mut self.stream;
                detect::blocking_region("wire::FramedTcp::send_frame", || {
                    stream.write_all(&bytes)
                })?;
                Ok(())
            }
            SendPlan::Swallow => Ok(()),
            SendPlan::SendPartThenClose(bytes) => {
                let stream = &mut self.stream;
                let _ = detect::blocking_region("wire::FramedTcp::send_frame", || {
                    stream.write_all(&bytes)
                });
                self.shutdown();
                Err(WireError::Closed)
            }
        }
    }

    fn recv_frame(&mut self) -> WireResult<Vec<u8>> {
        loop {
            if self.fault.severed {
                return Err(WireError::Closed);
            }
            let mut hdr = [0u8; 12];
            let stream = &mut self.stream;
            if let Err(e) = detect::blocking_region("wire::FramedTcp::recv_frame", || {
                stream.read_exact(&mut hdr)
            }) {
                return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    WireError::Closed
                } else {
                    WireError::Io(e)
                });
            }
            let header = GiopHeader::from_bytes(&hdr)?;
            let mut body = vec![0u8; header.body_size as usize];
            detect::blocking_region("wire::FramedTcp::recv_frame", || {
                stream.read_exact(&mut body)
            })?;
            let mut frame = Vec::with_capacity(12 + body.len());
            frame.extend_from_slice(&hdr);
            frame.extend_from_slice(&body);
            match self.fault.plan_recv(frame)? {
                RecvPlan::Deliver(f) => return Ok(f),
                RecvPlan::Discard => continue,
                RecvPlan::Close => {
                    self.shutdown();
                    return Err(WireError::Closed);
                }
            }
        }
    }
}

/// How many bytes `NbFramed` reads per `read` call while draining a
/// readable socket.
const NB_READ_CHUNK: usize = 64 * 1024;

/// What one readiness-driven read pass produced.
#[derive(Debug, Default)]
pub struct NbRead {
    /// Complete frames extracted from the stream, oldest first.
    pub frames: Vec<Vec<u8>>,
    /// The peer closed its write side (frames may still be present).
    pub closed: bool,
}

/// Nonblocking, incrementally-parsed GIOP framing for the reactor core.
///
/// Unlike [`FramedTcp`], which parks a thread in `read_exact` until a
/// whole frame arrives, `NbFramed` is driven by readiness: each
/// [`NbFramed::on_readable`] drains whatever bytes the socket has into
/// an accumulation buffer and extracts every complete frame; partial
/// frames simply wait for the next readiness event. Writes mirror that:
/// frames are queued whole, and [`NbFramed::on_writable`] pushes queued
/// bytes until the socket would block, tracking a byte count the
/// reactor uses for per-connection backpressure.
///
/// Chaos wire faults are a client-side concern (they are installed on
/// dialed connections); this server-side path stays fault-free.
#[derive(Debug)]
pub struct NbFramed {
    stream: TcpStream,
    /// Received-but-unparsed bytes; complete frames are drained off the
    /// front, a trailing partial frame stays for the next pass.
    recv: Vec<u8>,
    /// Outgoing frames not yet (fully) written.
    send_q: VecDeque<FrameBuf>,
    /// How many bytes of the queue's front frame are already written.
    send_off: usize,
    /// Total unwritten bytes across the queue.
    queued: usize,
}

impl NbFramed {
    /// Wrap a connected stream, switching it to nonblocking mode.
    pub fn new(stream: TcpStream) -> WireResult<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(NbFramed {
            stream,
            recv: Vec::new(),
            send_q: VecDeque::new(),
            send_off: 0,
            queued: 0,
        })
    }

    /// The underlying stream (for fd registration and severing).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Drain readable bytes and extract complete frames. Call when the
    /// socket polls readable. A header that fails validation (bad
    /// magic, oversized body) is a protocol error that desynchronizes
    /// the stream — the caller must drop the connection.
    pub fn on_readable(&mut self) -> WireResult<NbRead> {
        let mut out = NbRead::default();
        loop {
            let old = self.recv.len();
            self.recv.resize(old + NB_READ_CHUNK, 0);
            match self.stream.read(&mut self.recv[old..]) {
                Ok(0) => {
                    self.recv.truncate(old);
                    out.closed = true;
                    break;
                }
                Ok(n) => {
                    self.recv.truncate(old + n);
                    if n < NB_READ_CHUNK {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.recv.truncate(old);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.recv.truncate(old);
                }
                Err(e) => {
                    self.recv.truncate(old);
                    return Err(WireError::Io(e));
                }
            }
        }
        let mut off = 0;
        while self.recv.len() - off >= 12 {
            let mut hdr = [0u8; 12];
            hdr.copy_from_slice(&self.recv[off..off + 12]);
            let header = GiopHeader::from_bytes(&hdr)?;
            let total = 12 + header.body_size as usize;
            if self.recv.len() - off < total {
                break;
            }
            out.frames.push(self.recv[off..off + total].to_vec());
            off += total;
        }
        self.recv.drain(..off);
        Ok(out)
    }

    /// Queue one whole frame for writing. The caller checks
    /// [`NbFramed::queued_bytes`] against its high-water mark; the queue
    /// itself never refuses a frame (replies to already-admitted
    /// requests must not be dropped).
    pub fn enqueue(&mut self, frame: impl Into<FrameBuf>) {
        let frame = frame.into();
        self.queued += frame.len();
        self.send_q.push_back(frame);
    }

    /// Write queued bytes until the queue empties or the socket would
    /// block. Call when the socket polls writable (or right after
    /// enqueueing, to attempt an eager flush).
    pub fn on_writable(&mut self) -> WireResult<()> {
        while let Some(front) = self.send_q.front() {
            let bytes = &front[self.send_off..];
            match self.stream.write(bytes) {
                Ok(n) => {
                    self.send_off += n;
                    self.queued -= n;
                    if self.send_off == front.len() {
                        self.send_q.pop_front();
                        self.send_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Ok(())
    }

    /// True while unwritten frames are queued.
    pub fn wants_write(&self) -> bool {
        !self.send_q.is_empty()
    }

    /// Unwritten bytes currently queued — the backpressure signal.
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Sever both directions of the stream.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// One endpoint of an in-process duplex pipe.
///
/// Created in pairs by [`duplex`]; whatever one side sends the other
/// receives, whole frames at a time. Dropping either end closes the pipe.
#[derive(Debug)]
pub struct PipeTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Create a connected pair of in-process transports.
pub fn duplex() -> (PipeTransport, PipeTransport) {
    let (atx, brx) = channel();
    let (btx, arx) = channel();
    (
        PipeTransport { tx: atx, rx: arx },
        PipeTransport { tx: btx, rx: brx },
    )
}

impl Transport for PipeTransport {
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()> {
        self.tx.send(frame.to_vec()).map_err(|_| WireError::Closed)
    }

    fn recv_frame(&mut self) -> WireResult<Vec<u8>> {
        detect::blocking_region("wire::PipeTransport::recv_frame", || self.rx.recv())
            .map_err(|_| WireError::Closed)
    }
}

/// A transport wrapper that injects faults on both paths.
///
/// Used by failure-injection tests to prove the decoder and the ORB's
/// error handling survive hostile or broken peers. The active fault
/// lives in an [`Arc`]-shared [`FaultSlot`], so a test can keep a handle
/// (via [`FaultyTransport::slot`]) and flip faults while the transport
/// is live on another thread.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    fault: FaultState,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, applying `fault` to every frame.
    pub fn new(inner: T, fault: Fault) -> Self {
        Self::with_slot(inner, FaultSlot::new(fault))
    }

    /// Wrap `inner` around an externally shared fault slot.
    pub fn with_slot(inner: T, slot: FaultSlot) -> Self {
        FaultyTransport {
            inner,
            fault: FaultState {
                slot,
                ..FaultState::default()
            },
        }
    }

    /// Change the active fault (also visible through shared slots).
    pub fn set_fault(&mut self, fault: Fault) {
        self.fault.slot.set(fault);
    }

    /// A shared handle to the active fault, for live flipping.
    pub fn slot(&self) -> FaultSlot {
        self.fault.slot.clone()
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()> {
        match self.fault.plan_send(frame)? {
            SendPlan::Send(bytes) => self.inner.send_frame(&bytes),
            SendPlan::Swallow => Ok(()),
            SendPlan::SendPartThenClose(bytes) => {
                let _ = self.inner.send_frame(&bytes);
                Err(WireError::Closed)
            }
        }
    }

    fn recv_frame(&mut self) -> WireResult<Vec<u8>> {
        loop {
            // A severed transport must fail before blocking on the
            // inner receive — the pipe variant has no socket to close,
            // so waiting for bytes that cannot arrive would hang.
            if self.fault.severed {
                return Err(WireError::Closed);
            }
            let frame = self.inner.recv_frame()?;
            match self.fault.plan_recv(frame)? {
                RecvPlan::Deliver(f) => return Ok(f),
                RecvPlan::Discard => continue,
                RecvPlan::Close => return Err(WireError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr::ByteOrder;
    use crate::giop::{reply_ok, request};
    use crate::value::Value;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = duplex();
        let msg = request(1, b"k".to_vec(), "ping", vec![]);
        a.send_message(&msg, ByteOrder::BigEndian).unwrap();
        assert_eq!(b.recv_message().unwrap(), msg);

        let rep = reply_ok(1, Value::string("pong"));
        b.send_message(&rep, ByteOrder::LittleEndian).unwrap();
        assert_eq!(a.recv_message().unwrap(), rep);
    }

    #[test]
    fn pipe_close_detected() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(matches!(a.send_frame(&[0u8; 12]), Err(WireError::Closed)));
        assert!(matches!(a.recv_frame(), Err(WireError::Closed)));
    }

    #[test]
    fn tcp_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::new(stream);
            let msg = t.recv_message().unwrap();
            match msg {
                GiopMessage::Request { header, .. } => {
                    t.send_message(
                        &reply_ok(header.request_id, Value::string("over tcp")),
                        ByteOrder::LittleEndian,
                    )
                    .unwrap();
                }
                other => panic!("expected request, got {other:?}"),
            }
        });

        let mut client = FramedTcp::connect("127.0.0.1", addr.port()).unwrap();
        client
            .send_message(
                &request(42, b"obj".to_vec(), "echo", vec![Value::Long(5)]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        match client.recv_message().unwrap() {
            GiopMessage::Reply {
                request_id, body, ..
            } => {
                assert_eq!(request_id, 42);
                assert_eq!(body.as_str(), Some("over tcp"));
            }
            other => panic!("expected reply, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn corrupt_magic_detected_by_receiver() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::CorruptMagic);
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        assert!(matches!(b.recv_message(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn truncated_frame_detected_by_receiver() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::Truncate(15));
        faulty
            .send_message(
                &request(1, b"key".to_vec(), "operation", vec![Value::Long(9)]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        // The pipe delivers a 15-byte frame whose header declares a larger
        // body; decode must fail, not panic.
        assert!(b.recv_message().is_err());
    }

    #[test]
    fn inflated_size_rejected() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::InflateSize);
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        assert!(matches!(b.recv_message(), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn delay_fault_holds_frames() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::DelayMs(20));
        let started = std::time::Instant::now();
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        assert!(started.elapsed() >= Duration::from_millis(20));
        assert!(b.recv_message().is_ok());
    }

    #[test]
    fn drop_after_passes_then_loses_on_send() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::DropAfter(2));
        for id in 0..4 {
            faulty
                .send_message(
                    &request(id, b"k".to_vec(), "op", vec![]),
                    ByteOrder::BigEndian,
                )
                .unwrap();
        }
        // Only the first two frames arrive; the pipe then closes.
        assert!(b.recv_message().is_ok());
        assert!(b.recv_message().is_ok());
        drop(faulty);
        assert!(matches!(b.recv_frame(), Err(WireError::Closed)));
    }

    #[test]
    fn drop_after_discards_on_receive_path() {
        let (mut a, b) = duplex();
        let mut faulty = FaultyTransport::new(b, Fault::DropAfter(1));
        for id in 0..3 {
            a.send_message(
                &request(id, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        }
        // First frame delivered; the rest are swallowed, so the close of
        // the sender surfaces next.
        assert!(faulty.recv_message().is_ok());
        drop(a);
        assert!(matches!(faulty.recv_frame(), Err(WireError::Closed)));
    }

    #[test]
    fn close_mid_frame_truncates_then_closes() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::CloseMidFrame);
        let send = faulty.send_message(
            &request(1, b"key".to_vec(), "operation", vec![Value::Long(7)]),
            ByteOrder::BigEndian,
        );
        assert!(matches!(send, Err(WireError::Closed)));
        // The peer got half a frame: decodable never, panicking never.
        assert!(b.recv_message().is_err());
        // The faulty side is severed for good.
        assert!(matches!(
            faulty.send_frame(&[0u8; 12]),
            Err(WireError::Closed)
        ));
        assert!(matches!(faulty.recv_frame(), Err(WireError::Closed)));
    }

    #[test]
    fn close_mid_frame_on_receive_path_reports_closed() {
        let (mut a, b) = duplex();
        let mut faulty = FaultyTransport::new(b, Fault::CloseMidFrame);
        a.send_message(
            &request(1, b"k".to_vec(), "op", vec![]),
            ByteOrder::BigEndian,
        )
        .unwrap();
        assert!(matches!(faulty.recv_frame(), Err(WireError::Closed)));
    }

    #[test]
    fn shared_slot_flips_faults_on_a_live_transport() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::None);
        let slot = faulty.slot();
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        assert!(b.recv_message().is_ok());
        // Flip the fault through the shared handle — no &mut needed.
        slot.set(Fault::DropFrames);
        faulty
            .send_message(
                &request(2, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        slot.clear();
        faulty
            .send_message(
                &request(3, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        // Frame 2 was dropped; frame 3 arrives right behind frame 1.
        match b.recv_message().unwrap() {
            GiopMessage::Request { header, .. } => assert_eq!(header.request_id, 3),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn framed_tcp_honors_installed_fault_slot() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::new(stream);
            let mut got = Vec::new();
            while let Ok(GiopMessage::Request { header, .. }) = t.recv_message() {
                got.push(header.request_id);
            }
            got
        });
        let mut client = FramedTcp::connect("127.0.0.1", addr.port()).unwrap();
        let slot = FaultSlot::default();
        client.install_fault_slot(slot.clone());
        for id in 0..2 {
            client
                .send_message(
                    &request(id, b"k".to_vec(), "op", vec![]),
                    ByteOrder::BigEndian,
                )
                .unwrap();
        }
        slot.set(Fault::DropFrames);
        client
            .send_message(
                &request(2, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        client.shutdown();
        assert_eq!(server.join().unwrap(), vec![0, 1]);
    }

    fn nb_pair() -> (NbFramed, FramedTcp) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (NbFramed::new(accepted).unwrap(), FramedTcp::new(peer))
    }

    /// Poll `f` until it returns Some, for nonblocking tests.
    fn wait_for<T>(mut f: impl FnMut() -> Option<T>) -> T {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(v) = f() {
                return v;
            }
            assert!(std::time::Instant::now() < deadline, "timed out waiting");
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn nb_framed_parses_split_and_coalesced_frames() {
        let (mut nb, peer) = nb_pair();
        let f1 = request(1, b"k".to_vec(), "op", vec![Value::Long(1)])
            .encode(ByteOrder::BigEndian)
            .unwrap();
        let f2 = request(2, b"k".to_vec(), "op", vec![])
            .encode(ByteOrder::LittleEndian)
            .unwrap();

        // Deliver both frames in one burst, split mid-header of the
        // second: the parser must return frame 1, hold the tail.
        let mut raw = peer.stream.try_clone().unwrap();
        let burst: Vec<u8> = f1.iter().chain(f2.iter()).copied().collect();
        let cut = f1.len() + 5;
        raw.write_all(&burst[..cut]).unwrap();
        let got = wait_for(|| {
            let r = nb.on_readable().unwrap();
            assert!(!r.closed);
            if r.frames.is_empty() {
                None
            } else {
                Some(r.frames)
            }
        });
        assert_eq!(got, vec![f1]);

        raw.write_all(&burst[cut..]).unwrap();
        let got = wait_for(|| {
            let r = nb.on_readable().unwrap();
            if r.frames.is_empty() {
                None
            } else {
                Some(r.frames)
            }
        });
        assert_eq!(got, vec![f2]);
    }

    #[test]
    fn nb_framed_reports_peer_close() {
        let (mut nb, peer) = nb_pair();
        drop(peer);
        let closed = wait_for(|| {
            let r = nb.on_readable().unwrap();
            r.closed.then_some(true)
        });
        assert!(closed);
    }

    #[test]
    fn nb_framed_write_queue_drains_under_backpressure() {
        let (mut nb, mut peer) = nb_pair();
        // A reply large enough to overflow any sane socket buffer, so
        // flushes leave queued bytes behind until the peer drains.
        let big = reply_ok(1, Value::string("y".repeat(8 << 20)));
        let frame = big.encode(ByteOrder::BigEndian).unwrap();
        nb.enqueue(frame.clone());
        assert_eq!(nb.queued_bytes(), frame.len());
        nb.on_writable().unwrap();

        // Reader drains on another thread while we keep flushing.
        let reader = thread::spawn(move || peer.recv_frame().unwrap());
        while nb.wants_write() {
            nb.on_writable().unwrap();
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(nb.queued_bytes(), 0);
        assert_eq!(reader.join().unwrap(), frame);
    }

    #[test]
    fn nb_framed_rejects_bad_magic() {
        let (mut nb, peer) = nb_pair();
        let mut raw = peer.stream.try_clone().unwrap();
        raw.write_all(b"POIGxxxxxxxxxxxx").unwrap();
        let err = wait_for(|| match nb.on_readable() {
            Ok(r) => {
                assert!(r.frames.is_empty());
                None
            }
            Err(e) => Some(e),
        });
        assert!(matches!(err, WireError::BadMagic(_)));
    }

    #[test]
    fn dropped_frames_never_arrive() {
        let (a, b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::DropFrames);
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        drop(faulty); // closes the pipe
        let mut b = b;
        assert!(matches!(b.recv_frame(), Err(WireError::Closed)));
    }
}
