//! Statement-level SQL AST.

use crate::expr::Expr;
use crate::schema::TableSchema;

/// A table reference in FROM, with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name (lowercase).
    pub name: String,
    /// Alias (lowercase), if written.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in expressions: alias if
    /// present, else the table name.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Join flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `JOIN … ON …` (also `INNER JOIN`).
    Inner,
    /// `LEFT [OUTER] JOIN … ON …`: unmatched left rows padded with NULLs.
    Left,
    /// Comma-separated FROM items: Cartesian product, filtered by WHERE.
    Cross,
}

/// One join step after the first FROM table.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// How to join.
    pub kind: JoinKind,
    /// The table being joined in.
    pub table: TableRef,
    /// The ON condition (`None` only for `Cross`).
    pub on: Option<Expr>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// An expression with optional output alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if written.
        alias: Option<String>,
    },
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// True for `DESC`.
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// First FROM table.
    pub from: TableRef,
    /// Subsequent joins (including comma cross-joins).
    pub joins: Vec<Join>,
    /// WHERE clause.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING clause.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(TableSchema),
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Target table.
        name: String,
        /// Suppress the missing-table error.
        if_exists: bool,
    },
    /// `CREATE INDEX name ON table (column)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO t [(cols)] VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if written.
        columns: Option<Vec<String>>,
        /// One expression row per VALUES tuple.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e, … [WHERE …]`.
    Update {
        /// Target table.
        table: String,
        /// `(column, value-expression)` pairs.
        assignments: Vec<(String, Expr)>,
        /// WHERE clause.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// WHERE clause.
        filter: Option<Expr>,
    },
    /// A query.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …`: describe the plan instead of executing.
    Explain(Box<SelectStmt>),
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}
